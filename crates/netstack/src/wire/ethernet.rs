//! Ethernet II framing.

use crate::error::{Error, Result};

/// Length of an Ethernet II header (dst + src + ethertype).
pub const ETHERNET_HEADER_LEN: usize = 14;

/// A 48-bit MAC address.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct EthernetAddr(pub [u8; 6]);

impl EthernetAddr {
    /// The broadcast address `ff:ff:ff:ff:ff:ff`.
    pub const BROADCAST: EthernetAddr = EthernetAddr([0xff; 6]);

    /// Whether this is the broadcast address.
    pub fn is_broadcast(&self) -> bool {
        *self == Self::BROADCAST
    }

    /// Whether the multicast (group) bit is set.
    pub fn is_multicast(&self) -> bool {
        self.0[0] & 0x01 != 0
    }

    /// Whether this is a unicast address (not multicast, not all-zero).
    pub fn is_unicast(&self) -> bool {
        !self.is_multicast() && self.0 != [0; 6]
    }
}

impl std::fmt::Display for EthernetAddr {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        let b = &self.0;
        write!(
            f,
            "{:02x}:{:02x}:{:02x}:{:02x}:{:02x}:{:02x}",
            b[0], b[1], b[2], b[3], b[4], b[5]
        )
    }
}

/// The ethertype field values the stack understands.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum EtherType {
    Ipv4,
    Arp,
    /// Anything else, carried verbatim.
    Unknown(u16),
}

impl From<u16> for EtherType {
    fn from(v: u16) -> Self {
        match v {
            0x0800 => EtherType::Ipv4,
            0x0806 => EtherType::Arp,
            other => EtherType::Unknown(other),
        }
    }
}

impl From<EtherType> for u16 {
    fn from(t: EtherType) -> u16 {
        match t {
            EtherType::Ipv4 => 0x0800,
            EtherType::Arp => 0x0806,
            EtherType::Unknown(v) => v,
        }
    }
}

/// A parsed Ethernet II header.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct EthernetRepr {
    pub dst: EthernetAddr,
    pub src: EthernetAddr,
    pub ethertype: EtherType,
}

impl EthernetRepr {
    /// Parses a frame, returning the header and the payload offset.
    pub fn parse(frame: &[u8]) -> Result<(EthernetRepr, usize)> {
        if frame.len() < ETHERNET_HEADER_LEN {
            return Err(Error::Truncated);
        }
        let mut dst = [0u8; 6];
        let mut src = [0u8; 6];
        // analyze::allow(panic-path, reason = "parse length-checks the buffer before fixed-offset reads; emit writes into a vec sized exactly header+payload")
        dst.copy_from_slice(&frame[0..6]);
        // analyze::allow(panic-path, reason = "parse length-checks the buffer before fixed-offset reads; emit writes into a vec sized exactly header+payload")
        src.copy_from_slice(&frame[6..12]);
        // analyze::allow(panic-path, reason = "parse length-checks the buffer before fixed-offset reads; emit writes into a vec sized exactly header+payload")
        let ethertype = u16::from_be_bytes([frame[12], frame[13]]).into();
        Ok((
            EthernetRepr {
                dst: EthernetAddr(dst),
                src: EthernetAddr(src),
                ethertype,
            },
            ETHERNET_HEADER_LEN,
        ))
    }

    /// Writes the header into `buf` (must be at least
    /// [`ETHERNET_HEADER_LEN`] bytes).
    pub fn emit(&self, buf: &mut [u8]) {
        // analyze::allow(panic-path, reason = "parse length-checks the buffer before fixed-offset reads; emit writes into a vec sized exactly header+payload")
        buf[0..6].copy_from_slice(&self.dst.0);
        // analyze::allow(panic-path, reason = "parse length-checks the buffer before fixed-offset reads; emit writes into a vec sized exactly header+payload")
        buf[6..12].copy_from_slice(&self.src.0);
        // analyze::allow(panic-path, reason = "parse length-checks the buffer before fixed-offset reads; emit writes into a vec sized exactly header+payload")
        buf[12..14].copy_from_slice(&u16::from(self.ethertype).to_be_bytes());
    }

    /// Builds a complete frame around `payload`.
    pub fn frame(&self, payload: &[u8]) -> Vec<u8> {
        let mut out = vec![0u8; ETHERNET_HEADER_LEN + payload.len()];
        self.emit(&mut out);
        // analyze::allow(panic-path, reason = "parse length-checks the buffer before fixed-offset reads; emit writes into a vec sized exactly header+payload")
        out[ETHERNET_HEADER_LEN..].copy_from_slice(payload);
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn round_trip() {
        let r = EthernetRepr {
            dst: EthernetAddr([1, 2, 3, 4, 5, 6]),
            src: EthernetAddr([7, 8, 9, 10, 11, 12]),
            ethertype: EtherType::Ipv4,
        };
        let frame = r.frame(b"hello");
        let (parsed, off) = EthernetRepr::parse(&frame).unwrap();
        assert_eq!(parsed, r);
        assert_eq!(&frame[off..], b"hello");
    }

    #[test]
    fn truncated() {
        assert_eq!(EthernetRepr::parse(&[0u8; 13]), Err(Error::Truncated));
    }

    #[test]
    fn ethertype_mapping() {
        assert_eq!(EtherType::from(0x0800), EtherType::Ipv4);
        assert_eq!(EtherType::from(0x0806), EtherType::Arp);
        assert_eq!(EtherType::from(0x1234), EtherType::Unknown(0x1234));
        assert_eq!(u16::from(EtherType::Arp), 0x0806);
    }

    #[test]
    fn address_predicates() {
        assert!(EthernetAddr::BROADCAST.is_broadcast());
        assert!(EthernetAddr::BROADCAST.is_multicast());
        assert!(EthernetAddr([2, 0, 0, 0, 0, 1]).is_unicast());
        assert!(EthernetAddr([1, 0, 0, 0, 0, 0]).is_multicast());
        assert!(!EthernetAddr([0; 6]).is_unicast());
    }

    #[test]
    fn display_format() {
        assert_eq!(
            EthernetAddr([0x02, 0, 0, 0xab, 0xcd, 0xef]).to_string(),
            "02:00:00:ab:cd:ef"
        );
    }
}
