//! Wire formats: parsing and emission of protocol headers.
//!
//! Each protocol has a `Repr` struct (a parsed, validated representation)
//! with `parse` and `emit` functions. Parsing never panics on arbitrary
//! input — malformed packets return [`crate::Error`] — and
//! `parse(emit(x)) == x` is property-tested for every header type.

pub mod arp;
pub mod ethernet;
pub mod icmp;
pub mod ipv4;
pub mod tcp;
pub mod udp;

pub use arp::{ArpOp, ArpRepr};
pub use ethernet::{EtherType, EthernetAddr, EthernetRepr, ETHERNET_HEADER_LEN};
pub use icmp::{IcmpRepr, IcmpType};
pub use ipv4::{Ipv4Addr, Ipv4Repr, Protocol, IPV4_HEADER_LEN};
pub use tcp::{SeqNumber, TcpFlags, TcpRepr, TCP_HEADER_LEN};
pub use udp::{UdpRepr, UDP_HEADER_LEN};
