//! ARP for IPv4 over Ethernet (RFC 826).

use crate::error::{Error, Result};
use crate::wire::ethernet::EthernetAddr;
use crate::wire::ipv4::Ipv4Addr;

/// Length of an Ethernet/IPv4 ARP packet.
pub const ARP_PACKET_LEN: usize = 28;

/// ARP operation.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum ArpOp {
    Request,
    Reply,
}

/// A parsed ARP packet (Ethernet hardware, IPv4 protocol only).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct ArpRepr {
    pub op: ArpOp,
    pub sender_hw: EthernetAddr,
    pub sender_ip: Ipv4Addr,
    pub target_hw: EthernetAddr,
    pub target_ip: Ipv4Addr,
}

impl ArpRepr {
    /// Parses and validates an ARP packet.
    pub fn parse(buf: &[u8]) -> Result<ArpRepr> {
        if buf.len() < ARP_PACKET_LEN {
            return Err(Error::Truncated);
        }
        // analyze::allow(panic-path, reason = "parse length-checks the buffer before fixed-offset reads; emit writes into a vec sized exactly header+payload")
        let htype = u16::from_be_bytes([buf[0], buf[1]]);
        // analyze::allow(panic-path, reason = "parse length-checks the buffer before fixed-offset reads; emit writes into a vec sized exactly header+payload")
        let ptype = u16::from_be_bytes([buf[2], buf[3]]);
        // analyze::allow(panic-path, reason = "parse length-checks the buffer before fixed-offset reads; emit writes into a vec sized exactly header+payload")
        if htype != 1 || ptype != 0x0800 || buf[4] != 6 || buf[5] != 4 {
            return Err(Error::Malformed);
        }
        // analyze::allow(panic-path, reason = "parse length-checks the buffer before fixed-offset reads; emit writes into a vec sized exactly header+payload")
        let op = match u16::from_be_bytes([buf[6], buf[7]]) {
            1 => ArpOp::Request,
            2 => ArpOp::Reply,
            _ => return Err(Error::Malformed),
        };
        let mut sender_hw = [0u8; 6];
        let mut target_hw = [0u8; 6];
        // analyze::allow(panic-path, reason = "parse length-checks the buffer before fixed-offset reads; emit writes into a vec sized exactly header+payload")
        sender_hw.copy_from_slice(&buf[8..14]);
        // analyze::allow(panic-path, reason = "parse length-checks the buffer before fixed-offset reads; emit writes into a vec sized exactly header+payload")
        target_hw.copy_from_slice(&buf[18..24]);
        Ok(ArpRepr {
            op,
            sender_hw: EthernetAddr(sender_hw),
            // analyze::allow(panic-path, reason = "parse length-checks the buffer before fixed-offset reads; emit writes into a vec sized exactly header+payload")
            sender_ip: Ipv4Addr([buf[14], buf[15], buf[16], buf[17]]),
            target_hw: EthernetAddr(target_hw),
            // analyze::allow(panic-path, reason = "parse length-checks the buffer before fixed-offset reads; emit writes into a vec sized exactly header+payload")
            target_ip: Ipv4Addr([buf[24], buf[25], buf[26], buf[27]]),
        })
    }

    /// Serializes the packet.
    pub fn packet(&self) -> Vec<u8> {
        let mut out = vec![0u8; ARP_PACKET_LEN];
        // analyze::allow(panic-path, reason = "parse length-checks the buffer before fixed-offset reads; emit writes into a vec sized exactly header+payload")
        out[0..2].copy_from_slice(&1u16.to_be_bytes()); // Ethernet
        // analyze::allow(panic-path, reason = "parse length-checks the buffer before fixed-offset reads; emit writes into a vec sized exactly header+payload")
        out[2..4].copy_from_slice(&0x0800u16.to_be_bytes()); // IPv4
        // analyze::allow(panic-path, reason = "parse length-checks the buffer before fixed-offset reads; emit writes into a vec sized exactly header+payload")
        out[4] = 6;
        // analyze::allow(panic-path, reason = "parse length-checks the buffer before fixed-offset reads; emit writes into a vec sized exactly header+payload")
        out[5] = 4;
        let op: u16 = match self.op {
            ArpOp::Request => 1,
            ArpOp::Reply => 2,
        };
        // analyze::allow(panic-path, reason = "parse length-checks the buffer before fixed-offset reads; emit writes into a vec sized exactly header+payload")
        out[6..8].copy_from_slice(&op.to_be_bytes());
        // analyze::allow(panic-path, reason = "parse length-checks the buffer before fixed-offset reads; emit writes into a vec sized exactly header+payload")
        out[8..14].copy_from_slice(&self.sender_hw.0);
        // analyze::allow(panic-path, reason = "parse length-checks the buffer before fixed-offset reads; emit writes into a vec sized exactly header+payload")
        out[14..18].copy_from_slice(&self.sender_ip.0);
        // analyze::allow(panic-path, reason = "parse length-checks the buffer before fixed-offset reads; emit writes into a vec sized exactly header+payload")
        out[18..24].copy_from_slice(&self.target_hw.0);
        // analyze::allow(panic-path, reason = "parse length-checks the buffer before fixed-offset reads; emit writes into a vec sized exactly header+payload")
        out[24..28].copy_from_slice(&self.target_ip.0);
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample(op: ArpOp) -> ArpRepr {
        ArpRepr {
            op,
            sender_hw: EthernetAddr([2, 0, 0, 0, 0, 1]),
            sender_ip: Ipv4Addr::new(192, 168, 69, 1),
            target_hw: EthernetAddr([0, 0, 0, 0, 0, 0]),
            target_ip: Ipv4Addr::new(192, 168, 69, 100),
        }
    }

    #[test]
    fn round_trip_request_and_reply() {
        for op in [ArpOp::Request, ArpOp::Reply] {
            let r = sample(op);
            assert_eq!(ArpRepr::parse(&r.packet()).unwrap(), r);
        }
    }

    #[test]
    fn bad_hardware_type_rejected() {
        let mut pkt = sample(ArpOp::Request).packet();
        pkt[0] = 9;
        assert_eq!(ArpRepr::parse(&pkt), Err(Error::Malformed));
    }

    #[test]
    fn bad_op_rejected() {
        let mut pkt = sample(ArpOp::Request).packet();
        pkt[7] = 7;
        assert_eq!(ArpRepr::parse(&pkt), Err(Error::Malformed));
    }

    #[test]
    fn truncated_rejected() {
        let pkt = sample(ArpOp::Request).packet();
        assert_eq!(ArpRepr::parse(&pkt[..27]), Err(Error::Truncated));
    }
}
