//! UDP (RFC 768).

use crate::checksum;
use crate::error::{Error, Result};
use crate::wire::ipv4::Ipv4Addr;

/// Length of a UDP header.
pub const UDP_HEADER_LEN: usize = 8;

/// A parsed UDP datagram header.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct UdpRepr {
    pub src_port: u16,
    pub dst_port: u16,
}

impl UdpRepr {
    /// Parses a datagram and validates its checksum against the IPv4
    /// pseudo-header; returns the header and payload offset.
    ///
    /// An all-zero checksum field means "no checksum" (legal in UDP/IPv4)
    /// and is accepted.
    pub fn parse(buf: &[u8], src: Ipv4Addr, dst: Ipv4Addr) -> Result<(UdpRepr, usize)> {
        if buf.len() < UDP_HEADER_LEN {
            return Err(Error::Truncated);
        }
        // analyze::allow(panic-path, reason = "parse length-checks the buffer before fixed-offset reads; emit writes into a vec sized exactly header+payload")
        let length = u16::from_be_bytes([buf[4], buf[5]]) as usize;
        if length < UDP_HEADER_LEN || length > buf.len() {
            return Err(Error::Truncated);
        }
        // analyze::allow(panic-path, reason = "parse length-checks the buffer before fixed-offset reads; emit writes into a vec sized exactly header+payload")
        let cksum = u16::from_be_bytes([buf[6], buf[7]]);
        if cksum != 0
            // analyze::allow(panic-path, reason = "parse length-checks the buffer before fixed-offset reads; emit writes into a vec sized exactly header+payload")
            && checksum::pseudo_header_v4(src.0, dst.0, 17, &buf[..length]) != 0
        {
            return Err(Error::Checksum);
        }
        Ok((
            UdpRepr {
                // analyze::allow(panic-path, reason = "parse length-checks the buffer before fixed-offset reads; emit writes into a vec sized exactly header+payload")
                src_port: u16::from_be_bytes([buf[0], buf[1]]),
                // analyze::allow(panic-path, reason = "parse length-checks the buffer before fixed-offset reads; emit writes into a vec sized exactly header+payload")
                dst_port: u16::from_be_bytes([buf[2], buf[3]]),
            },
            UDP_HEADER_LEN,
        ))
    }

    /// Serializes a datagram with a correct checksum.
    pub fn packet(&self, src: Ipv4Addr, dst: Ipv4Addr, payload: &[u8]) -> Vec<u8> {
        let len = UDP_HEADER_LEN + payload.len();
        let mut out = vec![0u8; len];
        // analyze::allow(panic-path, reason = "parse length-checks the buffer before fixed-offset reads; emit writes into a vec sized exactly header+payload")
        out[0..2].copy_from_slice(&self.src_port.to_be_bytes());
        // analyze::allow(panic-path, reason = "parse length-checks the buffer before fixed-offset reads; emit writes into a vec sized exactly header+payload")
        out[2..4].copy_from_slice(&self.dst_port.to_be_bytes());
        // analyze::allow(panic-path, reason = "parse length-checks the buffer before fixed-offset reads; emit writes into a vec sized exactly header+payload")
        out[4..6].copy_from_slice(&(len as u16).to_be_bytes());
        // analyze::allow(panic-path, reason = "parse length-checks the buffer before fixed-offset reads; emit writes into a vec sized exactly header+payload")
        out[UDP_HEADER_LEN..].copy_from_slice(payload);
        let mut ck = checksum::pseudo_header_v4(src.0, dst.0, 17, &out);
        if ck == 0 {
            // A computed zero is transmitted as all-ones (RFC 768).
            ck = 0xffff;
        }
        // analyze::allow(panic-path, reason = "parse length-checks the buffer before fixed-offset reads; emit writes into a vec sized exactly header+payload")
        out[6..8].copy_from_slice(&ck.to_be_bytes());
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    const A: Ipv4Addr = Ipv4Addr([10, 0, 0, 1]);
    const B: Ipv4Addr = Ipv4Addr([10, 0, 0, 2]);

    #[test]
    fn round_trip() {
        let r = UdpRepr {
            src_port: 4000,
            dst_port: 53,
        };
        let pkt = r.packet(A, B, b"query");
        let (parsed, off) = UdpRepr::parse(&pkt, A, B).unwrap();
        assert_eq!(parsed, r);
        assert_eq!(&pkt[off..], b"query");
    }

    #[test]
    fn checksum_covers_pseudo_header() {
        let r = UdpRepr {
            src_port: 1,
            dst_port: 2,
        };
        let pkt = r.packet(A, B, b"data");
        // Same packet claimed to be from a different source must fail.
        assert_eq!(
            UdpRepr::parse(&pkt, Ipv4Addr([10, 0, 0, 9]), B),
            Err(Error::Checksum)
        );
    }

    #[test]
    fn zero_checksum_accepted() {
        let r = UdpRepr {
            src_port: 1,
            dst_port: 2,
        };
        let mut pkt = r.packet(A, B, b"data");
        pkt[6] = 0;
        pkt[7] = 0;
        assert!(UdpRepr::parse(&pkt, A, B).is_ok());
    }

    #[test]
    fn truncated_rejected() {
        assert_eq!(UdpRepr::parse(&[0u8; 7], A, B), Err(Error::Truncated));
        // Declared length longer than the buffer.
        let r = UdpRepr {
            src_port: 1,
            dst_port: 2,
        };
        let mut pkt = r.packet(A, B, b"data");
        pkt[4..6].copy_from_slice(&100u16.to_be_bytes());
        assert_eq!(UdpRepr::parse(&pkt, A, B), Err(Error::Truncated));
    }
}
