//! TCP segments (RFC 793), with MSS option support and wrapping
//! sequence-number arithmetic.

use crate::checksum;
use crate::error::{Error, Result};
use crate::wire::ipv4::Ipv4Addr;

/// Length of a TCP header without options.
pub const TCP_HEADER_LEN: usize = 20;

/// A 32-bit TCP sequence number with wrapping comparison semantics.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Default)]
pub struct SeqNumber(pub u32);

impl SeqNumber {
    /// `self + n`, wrapping. Deliberately not `impl Add`: mixed
    /// `SeqNumber + u32` operands read worse than explicit calls in
    /// sequence-space arithmetic.
    #[allow(clippy::should_implement_trait)]
    pub fn add(self, n: u32) -> SeqNumber {
        SeqNumber(self.0.wrapping_add(n))
    }

    /// Signed distance from `other` to `self`, wrapping.
    pub fn diff(self, other: SeqNumber) -> i32 {
        self.0.wrapping_sub(other.0) as i32
    }

    /// `self < other` in sequence space.
    pub fn lt(self, other: SeqNumber) -> bool {
        self.diff(other) < 0
    }

    /// `self <= other` in sequence space.
    pub fn le(self, other: SeqNumber) -> bool {
        self.diff(other) <= 0
    }

    /// `self > other` in sequence space.
    pub fn gt(self, other: SeqNumber) -> bool {
        self.diff(other) > 0
    }

    /// `self >= other` in sequence space.
    pub fn ge(self, other: SeqNumber) -> bool {
        self.diff(other) >= 0
    }
}

/// TCP header flags.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct TcpFlags {
    pub fin: bool,
    pub syn: bool,
    pub rst: bool,
    pub psh: bool,
    pub ack: bool,
    pub urg: bool,
}

impl TcpFlags {
    /// Just SYN.
    pub const SYN: TcpFlags = TcpFlags {
        syn: true,
        fin: false,
        rst: false,
        psh: false,
        ack: false,
        urg: false,
    };

    /// Just ACK.
    pub const ACK: TcpFlags = TcpFlags {
        ack: true,
        fin: false,
        rst: false,
        psh: false,
        syn: false,
        urg: false,
    };

    /// SYN|ACK.
    pub const SYN_ACK: TcpFlags = TcpFlags {
        syn: true,
        ack: true,
        fin: false,
        rst: false,
        psh: false,
        urg: false,
    };

    /// FIN|ACK.
    pub const FIN_ACK: TcpFlags = TcpFlags {
        fin: true,
        ack: true,
        syn: false,
        rst: false,
        psh: false,
        urg: false,
    };

    /// RST|ACK.
    pub const RST_ACK: TcpFlags = TcpFlags {
        rst: true,
        ack: true,
        syn: false,
        fin: false,
        psh: false,
        urg: false,
    };

    fn to_byte(self) -> u8 {
        (self.fin as u8)
            | (self.syn as u8) << 1
            | (self.rst as u8) << 2
            | (self.psh as u8) << 3
            | (self.ack as u8) << 4
            | (self.urg as u8) << 5
    }

    fn from_byte(b: u8) -> TcpFlags {
        TcpFlags {
            fin: b & 0x01 != 0,
            syn: b & 0x02 != 0,
            rst: b & 0x04 != 0,
            psh: b & 0x08 != 0,
            ack: b & 0x10 != 0,
            urg: b & 0x20 != 0,
        }
    }

    /// True when only ACK (and possibly PSH) is set — the precondition
    /// for TCP's header-prediction fast path.
    pub fn is_pure_ack_or_data(self) -> bool {
        self.ack && !self.syn && !self.fin && !self.rst && !self.urg
    }
}

/// A parsed TCP segment header.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct TcpRepr {
    pub src_port: u16,
    pub dst_port: u16,
    pub seq: SeqNumber,
    pub ack: SeqNumber,
    pub flags: TcpFlags,
    pub window: u16,
    /// MSS option value, present only on SYN segments that carry it.
    pub mss: Option<u16>,
}

impl TcpRepr {
    /// Parses a segment and validates its checksum against the IPv4
    /// pseudo-header; returns the header and payload offset.
    pub fn parse(buf: &[u8], src: Ipv4Addr, dst: Ipv4Addr) -> Result<(TcpRepr, usize)> {
        if buf.len() < TCP_HEADER_LEN {
            return Err(Error::Truncated);
        }
        // analyze::allow(panic-path, reason = "parse length-checks the buffer before fixed-offset reads; emit writes into a vec sized exactly header+payload")
        let data_off = ((buf[12] >> 4) as usize) * 4;
        if data_off < TCP_HEADER_LEN || data_off > buf.len() {
            return Err(Error::Malformed);
        }
        if checksum::pseudo_header_v4(src.0, dst.0, 6, buf) != 0 {
            return Err(Error::Checksum);
        }
        // Parse options (only MSS is interpreted; others are skipped).
        let mut mss = None;
        // analyze::allow(panic-path, reason = "parse length-checks the buffer before fixed-offset reads; emit writes into a vec sized exactly header+payload")
        let mut opts = &buf[TCP_HEADER_LEN..data_off];
        while !opts.is_empty() {
            // analyze::allow(panic-path, reason = "parse length-checks the buffer before fixed-offset reads; emit writes into a vec sized exactly header+payload")
            match opts[0] {
                0 => break,                  // end of options
                // analyze::allow(panic-path, reason = "parse length-checks the buffer before fixed-offset reads; emit writes into a vec sized exactly header+payload")
                1 => opts = &opts[1..],      // NOP
                2 => {
                    // analyze::allow(panic-path, reason = "parse length-checks the buffer before fixed-offset reads; emit writes into a vec sized exactly header+payload")
                    if opts.len() < 4 || opts[1] != 4 {
                        return Err(Error::Malformed);
                    }
                    // analyze::allow(panic-path, reason = "parse length-checks the buffer before fixed-offset reads; emit writes into a vec sized exactly header+payload")
                    mss = Some(u16::from_be_bytes([opts[2], opts[3]]));
                    // analyze::allow(panic-path, reason = "parse length-checks the buffer before fixed-offset reads; emit writes into a vec sized exactly header+payload")
                    opts = &opts[4..];
                }
                _ => {
                    // analyze::allow(panic-path, reason = "parse length-checks the buffer before fixed-offset reads; emit writes into a vec sized exactly header+payload")
                    if opts.len() < 2 || opts[1] < 2 || opts[1] as usize > opts.len() {
                        return Err(Error::Malformed);
                    }
                    // analyze::allow(panic-path, reason = "parse length-checks the buffer before fixed-offset reads; emit writes into a vec sized exactly header+payload")
                    opts = &opts[opts[1] as usize..];
                }
            }
        }
        Ok((
            TcpRepr {
                // analyze::allow(panic-path, reason = "parse length-checks the buffer before fixed-offset reads; emit writes into a vec sized exactly header+payload")
                src_port: u16::from_be_bytes([buf[0], buf[1]]),
                // analyze::allow(panic-path, reason = "parse length-checks the buffer before fixed-offset reads; emit writes into a vec sized exactly header+payload")
                dst_port: u16::from_be_bytes([buf[2], buf[3]]),
                // analyze::allow(panic-path, reason = "parse length-checks the buffer before fixed-offset reads; emit writes into a vec sized exactly header+payload")
                seq: SeqNumber(u32::from_be_bytes([buf[4], buf[5], buf[6], buf[7]])),
                // analyze::allow(panic-path, reason = "parse length-checks the buffer before fixed-offset reads; emit writes into a vec sized exactly header+payload")
                ack: SeqNumber(u32::from_be_bytes([buf[8], buf[9], buf[10], buf[11]])),
                // analyze::allow(panic-path, reason = "parse length-checks the buffer before fixed-offset reads; emit writes into a vec sized exactly header+payload")
                flags: TcpFlags::from_byte(buf[13]),
                // analyze::allow(panic-path, reason = "parse length-checks the buffer before fixed-offset reads; emit writes into a vec sized exactly header+payload")
                window: u16::from_be_bytes([buf[14], buf[15]]),
                mss,
            },
            data_off,
        ))
    }

    /// Header length including options.
    pub fn header_len(&self) -> usize {
        TCP_HEADER_LEN + if self.mss.is_some() { 4 } else { 0 }
    }

    /// Serializes the segment (header + options + payload) with a correct
    /// checksum.
    pub fn segment(&self, src: Ipv4Addr, dst: Ipv4Addr, payload: &[u8]) -> Vec<u8> {
        let hlen = self.header_len();
        let mut out = vec![0u8; hlen + payload.len()];
        // analyze::allow(panic-path, reason = "parse length-checks the buffer before fixed-offset reads; emit writes into a vec sized exactly header+payload")
        out[0..2].copy_from_slice(&self.src_port.to_be_bytes());
        // analyze::allow(panic-path, reason = "parse length-checks the buffer before fixed-offset reads; emit writes into a vec sized exactly header+payload")
        out[2..4].copy_from_slice(&self.dst_port.to_be_bytes());
        // analyze::allow(panic-path, reason = "parse length-checks the buffer before fixed-offset reads; emit writes into a vec sized exactly header+payload")
        out[4..8].copy_from_slice(&self.seq.0.to_be_bytes());
        // analyze::allow(panic-path, reason = "parse length-checks the buffer before fixed-offset reads; emit writes into a vec sized exactly header+payload")
        out[8..12].copy_from_slice(&self.ack.0.to_be_bytes());
        // analyze::allow(panic-path, reason = "parse length-checks the buffer before fixed-offset reads; emit writes into a vec sized exactly header+payload")
        out[12] = ((hlen / 4) as u8) << 4;
        // analyze::allow(panic-path, reason = "parse length-checks the buffer before fixed-offset reads; emit writes into a vec sized exactly header+payload")
        out[13] = self.flags.to_byte();
        // analyze::allow(panic-path, reason = "parse length-checks the buffer before fixed-offset reads; emit writes into a vec sized exactly header+payload")
        out[14..16].copy_from_slice(&self.window.to_be_bytes());
        if let Some(mss) = self.mss {
            // analyze::allow(panic-path, reason = "parse length-checks the buffer before fixed-offset reads; emit writes into a vec sized exactly header+payload")
            out[20] = 2;
            // analyze::allow(panic-path, reason = "parse length-checks the buffer before fixed-offset reads; emit writes into a vec sized exactly header+payload")
            out[21] = 4;
            // analyze::allow(panic-path, reason = "parse length-checks the buffer before fixed-offset reads; emit writes into a vec sized exactly header+payload")
            out[22..24].copy_from_slice(&mss.to_be_bytes());
        }
        // analyze::allow(panic-path, reason = "parse length-checks the buffer before fixed-offset reads; emit writes into a vec sized exactly header+payload")
        out[hlen..].copy_from_slice(payload);
        let ck = checksum::pseudo_header_v4(src.0, dst.0, 6, &out);
        // analyze::allow(panic-path, reason = "parse length-checks the buffer before fixed-offset reads; emit writes into a vec sized exactly header+payload")
        out[16..18].copy_from_slice(&ck.to_be_bytes());
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    const A: Ipv4Addr = Ipv4Addr([10, 0, 0, 1]);
    const B: Ipv4Addr = Ipv4Addr([10, 0, 0, 2]);

    fn sample() -> TcpRepr {
        TcpRepr {
            src_port: 33000,
            dst_port: 80,
            seq: SeqNumber(0x01020304),
            ack: SeqNumber(0x0a0b0c0d),
            flags: TcpFlags::ACK,
            window: 8760,
            mss: None,
        }
    }

    #[test]
    fn round_trip_plain() {
        let r = sample();
        let seg = r.segment(A, B, b"payload bytes");
        let (parsed, off) = TcpRepr::parse(&seg, A, B).unwrap();
        assert_eq!(parsed, r);
        assert_eq!(off, TCP_HEADER_LEN);
        assert_eq!(&seg[off..], b"payload bytes");
    }

    #[test]
    fn round_trip_syn_with_mss() {
        let r = TcpRepr {
            flags: TcpFlags::SYN,
            mss: Some(1460),
            ..sample()
        };
        let seg = r.segment(A, B, &[]);
        let (parsed, off) = TcpRepr::parse(&seg, A, B).unwrap();
        assert_eq!(parsed.mss, Some(1460));
        assert_eq!(off, 24);
    }

    #[test]
    fn checksum_covers_payload_and_pseudo_header() {
        let r = sample();
        let mut seg = r.segment(A, B, b"data");
        seg[21] ^= 1; // flip a payload bit
        assert_eq!(TcpRepr::parse(&seg, A, B), Err(Error::Checksum));
        let seg = r.segment(A, B, b"data");
        assert_eq!(
            TcpRepr::parse(&seg, A, Ipv4Addr([10, 0, 0, 3])),
            Err(Error::Checksum)
        );
    }

    #[test]
    fn bad_data_offset_rejected() {
        let r = sample();
        let mut seg = r.segment(A, B, b"");
        seg[12] = 0x30; // data offset 12 bytes < 20
        assert_eq!(TcpRepr::parse(&seg, A, B), Err(Error::Malformed));
        let mut seg = r.segment(A, B, b"");
        seg[12] = 0xf0; // data offset 60 > buffer
        assert_eq!(TcpRepr::parse(&seg, A, B), Err(Error::Malformed));
    }

    #[test]
    fn unknown_options_skipped() {
        // Hand-build a header with a NOP, an unknown option, then MSS.
        let r = TcpRepr {
            flags: TcpFlags::SYN,
            mss: None,
            ..sample()
        };
        let mut seg = r.segment(A, B, &[]);
        // Grow header by 12 option bytes: NOP, kind=99 len=6 (4 data
        // bytes), MSS, end-of-options.
        let opts = [1u8, 99, 6, 0, 0, 0, 0, 2, 4, 0x05, 0xb4, 0];
        seg.extend_from_slice(&opts);
        seg[12] = ((32 / 4) as u8) << 4;
        seg[16] = 0;
        seg[17] = 0;
        let ck = checksum::pseudo_header_v4(A.0, B.0, 6, &seg);
        seg[16..18].copy_from_slice(&ck.to_be_bytes());
        let (parsed, off) = TcpRepr::parse(&seg, A, B).unwrap();
        assert_eq!(parsed.mss, Some(1460));
        assert_eq!(off, 32);
    }

    #[test]
    fn seq_wrapping_comparisons() {
        let a = SeqNumber(u32::MAX - 5);
        let b = a.add(10); // wraps
        assert!(a.lt(b));
        assert!(b.gt(a));
        assert!(a.le(a));
        assert!(a.ge(a));
        assert_eq!(b.diff(a), 10);
        assert_eq!(a.diff(b), -10);
        assert_eq!(b.0, 4);
    }

    #[test]
    fn flags_round_trip() {
        for b in 0..64u8 {
            assert_eq!(TcpFlags::from_byte(b).to_byte(), b);
        }
        assert!(TcpFlags::ACK.is_pure_ack_or_data());
        assert!(!TcpFlags::SYN_ACK.is_pure_ack_or_data());
        assert!(!TcpFlags::FIN_ACK.is_pure_ack_or_data());
    }
}
