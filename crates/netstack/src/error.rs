//! Error types shared across the stack.

use std::fmt;

/// Errors returned by parsing, emission and protocol processing.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Error {
    /// The buffer is too short for the header or declared length.
    Truncated,
    /// A header field has an invalid or unsupported value.
    Malformed,
    /// A checksum failed verification.
    Checksum,
    /// The packet is not addressed to this host.
    Unaddressable,
    /// No socket or PCB matches the packet.
    NoRoute,
    /// A buffer or queue is full.
    Exhausted,
    /// The operation is invalid in the current protocol state.
    InvalidState,
    /// The segment falls outside the receive window.
    OutOfWindow,
}

impl fmt::Display for Error {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let s = match self {
            Error::Truncated => "buffer truncated",
            Error::Malformed => "malformed header",
            Error::Checksum => "checksum mismatch",
            Error::Unaddressable => "not addressed to this host",
            Error::NoRoute => "no matching socket or route",
            Error::Exhausted => "buffer exhausted",
            Error::InvalidState => "invalid protocol state",
            Error::OutOfWindow => "segment out of window",
        };
        f.write_str(s)
    }
}

impl std::error::Error for Error {}

/// Crate-wide result alias.
pub type Result<T> = std::result::Result<T, Error>;

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn display_is_human_readable() {
        assert_eq!(Error::Checksum.to_string(), "checksum mismatch");
        assert_eq!(Error::Truncated.to_string(), "buffer truncated");
    }
}
