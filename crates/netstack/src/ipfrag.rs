//! IPv4 fragmentation and reassembly (RFC 791 §3.2).
//!
//! The paper's fast path explicitly assumes unfragmented datagrams ("the
//! message is addressed to the host and is not a fragment"), but a
//! general-purpose stack needs both halves: splitting an oversized
//! payload into MTU-sized fragments on output, and reconstituting
//! fragments — arriving in any order — on input, with a reassembly
//! timeout. Mirrors smoltcp's bounded-buffer approach: a fixed number of
//! in-progress reassemblies, each with a byte cap.

use crate::error::{Error, Result};
use crate::wire::ipv4::{Ipv4Addr, Ipv4Repr, IPV4_HEADER_LEN};
#[cfg(test)]
use crate::wire::ipv4::Protocol;

/// Maximum simultaneous reassemblies (smoltcp's `REASSEMBLY_BUFFER_COUNT`
/// spirit, a little roomier).
pub const MAX_REASSEMBLIES: usize = 4;
/// Largest datagram we will reassemble.
pub const MAX_DATAGRAM: usize = 65_535;
/// Reassembly timeout in milliseconds (RFC 791 suggests 15 s).
pub const REASSEMBLY_TIMEOUT_MS: u64 = 15_000;

/// Simulated footprint of one reassembly-table slot, for the SMP
/// shared-state cost model (`crates/smp`): the table is mutable state
/// shared by every core that processes fragments, so each per-message
/// lookup/update goes through the shared L2 with coherence accounting.
/// One slot ≈ a descriptor header plus the hole list — two 32-byte
/// lines.
pub const REASSEMBLY_SLOT_BYTES: u64 = 64;
/// Total simulated footprint of the shared reassembly table.
pub const REASSEMBLY_TABLE_BYTES: u64 = MAX_REASSEMBLIES as u64 * REASSEMBLY_SLOT_BYTES;

/// Splits `payload` into fragments that fit `mtu` (the IP packet size
/// bound, header included). Returns complete serialized IP packets.
/// Fragment offsets are in 8-byte units, so every fragment except the
/// last carries a multiple of 8 payload bytes.
pub fn fragment(repr: &Ipv4Repr, payload: &[u8], mtu: usize) -> Result<Vec<Vec<u8>>> {
    assert!(mtu > IPV4_HEADER_LEN + 8, "mtu too small to carry fragments");
    if IPV4_HEADER_LEN + payload.len() <= mtu {
        return Ok(vec![repr.packet(payload)]);
    }
    if repr.dont_frag {
        return Err(Error::Exhausted);
    }
    let max_chunk = ((mtu - IPV4_HEADER_LEN) / 8) * 8;
    let mut out = Vec::new();
    let mut offset = 0usize;
    while offset < payload.len() {
        let end = (offset + max_chunk).min(payload.len());
        let more = end < payload.len();
        let chunk = &payload[offset..end];
        let mut pkt = vec![0u8; IPV4_HEADER_LEN + chunk.len()];
        Ipv4Repr {
            payload_len: chunk.len(),
            ..*repr
        }
        .emit(&mut pkt);
        // Patch flags/fragment-offset (emit writes DF/0), then re-checksum.
        let frag_field = ((offset / 8) as u16) | if more { 0x2000 } else { 0 };
        pkt[6..8].copy_from_slice(&frag_field.to_be_bytes());
        pkt[10] = 0;
        pkt[11] = 0;
        let ck = crate::checksum::simple(&pkt[..IPV4_HEADER_LEN]);
        pkt[10..12].copy_from_slice(&ck.to_be_bytes());
        pkt[IPV4_HEADER_LEN..].copy_from_slice(chunk);
        out.push(pkt);
        offset = end;
    }
    Ok(out)
}

/// A fragment's identity: who sent which datagram.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
struct Key {
    src: Ipv4Addr,
    dst: Ipv4Addr,
    protocol: u8,
    ident: u16,
}

#[derive(Debug)]
struct Reassembly {
    key: Key,
    /// Received spans as (offset, data).
    runs: Vec<(usize, Vec<u8>)>,
    /// Total length, known once the last fragment arrives.
    total_len: Option<usize>,
    /// Expiry deadline.
    deadline: u64,
}

impl Reassembly {
    fn bytes_held(&self) -> usize {
        self.runs.iter().map(|(_, d)| d.len()).sum()
    }

    fn is_complete(&self) -> bool {
        let Some(total) = self.total_len else {
            return false;
        };
        // Coverage check: runs are disjoint by insertion, so complete
        // means the byte count matches and offsets chain.
        let mut runs: Vec<(usize, usize)> =
            self.runs.iter().map(|(o, d)| (*o, d.len())).collect();
        runs.sort_unstable();
        let mut next = 0usize;
        for (o, len) in runs {
            if o > next {
                return false;
            }
            next = next.max(o + len);
        }
        next == total
    }

    fn assemble(mut self) -> Vec<u8> {
        // analyze::allow(panic-path, reason = "assemble runs only after is_complete() proved every byte of total_len is present")
        let total = self.total_len.expect("checked complete");
        let mut out = vec![0u8; total];
        self.runs.sort_by_key(|(o, _)| *o);
        for (o, d) in self.runs {
            // analyze::allow(panic-path, reason = "assemble runs only after is_complete() proved every byte of total_len is present")
            out[o..o + d.len()].copy_from_slice(&d);
        }
        out
    }
}

/// Reassembly statistics.
///
/// `timeouts` and `evictions` are distinct failure modes: a timeout
/// means a datagram's fragments stopped arriving (loss upstream), an
/// eviction means the reassembly table was full and an older pending
/// datagram was displaced to admit a new one (buffer pressure). Folding
/// the two together made the impairments sweep blame expiry for what
/// was really capacity.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct ReassemblyStats {
    pub fragments_in: u64,
    pub datagrams_completed: u64,
    /// Pending reassemblies discarded because their deadline passed.
    pub timeouts: u64,
    /// Pending reassemblies displaced (oldest-first) to admit a new
    /// datagram while the table was full.
    pub evictions: u64,
    /// Fragments or reassemblies discarded for exceeding the per-datagram
    /// byte cap (hostile or broken senders).
    pub dropped_no_buffer: u64,
}

/// The reassembler: a bounded set of in-progress datagrams.
#[derive(Debug, Default)]
pub struct Reassembler {
    pending: Vec<Reassembly>,
    stats: ReassemblyStats,
}

impl Reassembler {
    /// An empty reassembler.
    pub fn new() -> Self {
        Self::default()
    }

    /// Counters.
    pub fn stats(&self) -> ReassemblyStats {
        self.stats
    }

    /// Number of datagrams currently being reassembled.
    pub fn pending(&self) -> usize {
        self.pending.len()
    }

    /// Feeds one fragment (parsed header fields plus its payload bytes).
    /// Returns the complete payload once the datagram closes.
    ///
    /// `frag_field` is the raw flags/offset field (MF | offset-in-8-byte
    /// units) — [`Ipv4Repr::parse`] rejects fragments, so the caller
    /// extracts it before validation (see `parse_fragment`).
    pub fn input(
        &mut self,
        repr: &Ipv4Repr,
        frag_field: u16,
        payload: &[u8],
        now_ms: u64,
    ) -> Option<Vec<u8>> {
        self.expire(now_ms);
        self.stats.fragments_in += 1;
        let more = frag_field & 0x2000 != 0;
        let offset = ((frag_field & 0x1fff) as usize) * 8;
        let key = Key {
            src: repr.src,
            dst: repr.dst,
            protocol: repr.protocol.into(),
            ident: repr.ident,
        };

        let idx = match self.pending.iter().position(|r| r.key == key) {
            Some(i) => i,
            None => {
                if self.pending.len() >= MAX_REASSEMBLIES {
                    // Table full: evict the pending reassembly closest to
                    // its deadline (the oldest) rather than dropping the
                    // new datagram's fragment — newer traffic is likelier
                    // to complete than a datagram already waiting on
                    // missing pieces. Counted as an eviction, not a
                    // timeout: this is buffer pressure, not expiry.
                    if let Some(oldest) = self
                        .pending
                        .iter()
                        .enumerate()
                        .min_by_key(|(_, r)| r.deadline)
                        .map(|(i, _)| i)
                    {
                        self.pending.swap_remove(oldest);
                        self.stats.evictions += 1;
                    }
                }
                self.pending.push(Reassembly {
                    key,
                    runs: Vec::new(),
                    total_len: None,
                    deadline: now_ms + REASSEMBLY_TIMEOUT_MS,
                });
                self.pending.len() - 1
            }
        };
        let r = &mut self.pending[idx];
        if offset + payload.len() > MAX_DATAGRAM
            || r.bytes_held() + payload.len() > MAX_DATAGRAM
        {
            // Hostile or broken: abandon the whole reassembly.
            self.pending.swap_remove(idx);
            self.stats.dropped_no_buffer += 1;
            return None;
        }
        // Duplicate fragments replace nothing: ignore exact repeats,
        // keep first-arrival bytes on overlap (consistent with the TCP
        // assembler's policy).
        let overlaps = r
            .runs
            .iter()
            .any(|(o, d)| *o < offset + payload.len() && offset < *o + d.len());
        if !overlaps {
            r.runs.push((offset, payload.to_vec()));
        }
        if !more {
            r.total_len = Some(offset + payload.len());
        }
        if r.is_complete() {
            let done = self.pending.swap_remove(idx);
            self.stats.datagrams_completed += 1;
            return Some(done.assemble());
        }
        None
    }

    /// Drops reassemblies past their deadline.
    pub fn expire(&mut self, now_ms: u64) {
        let before = self.pending.len();
        self.pending.retain(|r| r.deadline > now_ms);
        self.stats.timeouts += (before - self.pending.len()) as u64;
    }
}

/// Parses an IPv4 header *allowing* fragments (unlike [`Ipv4Repr::parse`])
/// and returns `(repr, frag_field, payload)`. Validation (version, IHL,
/// checksum, lengths) matches the strict parser.
pub fn parse_fragment(buf: &[u8]) -> Result<(Ipv4Repr, u16, &[u8])> {
    if buf.len() < IPV4_HEADER_LEN {
        return Err(Error::Truncated);
    }
    // analyze::allow(panic-path, reason = "fragment header fields are validated against buf.len() before any fixed-offset read")
    let version = buf[0] >> 4;
    // analyze::allow(panic-path, reason = "fragment header fields are validated against buf.len() before any fixed-offset read")
    let ihl = (buf[0] & 0x0f) as usize * 4;
    if version != 4 || ihl < IPV4_HEADER_LEN {
        return Err(Error::Malformed);
    }
    if buf.len() < ihl {
        return Err(Error::Truncated);
    }
    // analyze::allow(panic-path, reason = "fragment header fields are validated against buf.len() before any fixed-offset read")
    let total_len = u16::from_be_bytes([buf[2], buf[3]]) as usize;
    if total_len < ihl || total_len > buf.len() {
        return Err(Error::Truncated);
    }
    // analyze::allow(panic-path, reason = "fragment header fields are validated against buf.len() before any fixed-offset read")
    if crate::checksum::simple(&buf[..ihl]) != 0 {
        return Err(Error::Checksum);
    }
    // analyze::allow(panic-path, reason = "fragment header fields are validated against buf.len() before any fixed-offset read")
    let frag_field = u16::from_be_bytes([buf[6], buf[7]]);
    let repr = Ipv4Repr {
        // analyze::allow(panic-path, reason = "fragment header fields are validated against buf.len() before any fixed-offset read")
        src: Ipv4Addr([buf[12], buf[13], buf[14], buf[15]]),
        // analyze::allow(panic-path, reason = "fragment header fields are validated against buf.len() before any fixed-offset read")
        dst: Ipv4Addr([buf[16], buf[17], buf[18], buf[19]]),
        // analyze::allow(panic-path, reason = "fragment header fields are validated against buf.len() before any fixed-offset read")
        protocol: buf[9].into(),
        // analyze::allow(panic-path, reason = "fragment header fields are validated against buf.len() before any fixed-offset read")
        ttl: buf[8],
        // analyze::allow(panic-path, reason = "fragment header fields are validated against buf.len() before any fixed-offset read")
        ident: u16::from_be_bytes([buf[4], buf[5]]),
        dont_frag: frag_field & 0x4000 != 0,
        payload_len: total_len - ihl,
    };
    // analyze::allow(panic-path, reason = "fragment header fields are validated against buf.len() before any fixed-offset read")
    Ok((repr, frag_field, &buf[ihl..total_len]))
}

#[cfg(test)]
mod tests {
    use super::*;

    fn repr(payload_len: usize) -> Ipv4Repr {
        Ipv4Repr {
            src: Ipv4Addr::new(10, 0, 0, 1),
            dst: Ipv4Addr::new(10, 0, 0, 2),
            protocol: Protocol::Udp,
            ttl: 64,
            ident: 0x4242,
            dont_frag: false,
            payload_len,
        }
    }

    fn payload(n: usize) -> Vec<u8> {
        (0..n).map(|i| (i * 13 + 5) as u8).collect()
    }

    #[test]
    fn small_payload_is_not_fragmented() {
        let p = payload(100);
        let frags = fragment(&repr(100), &p, 1500).unwrap();
        assert_eq!(frags.len(), 1);
        let (r, off) = Ipv4Repr::parse(&frags[0]).unwrap();
        assert_eq!(r.payload_len, 100);
        assert_eq!(&frags[0][off..], &p[..]);
    }

    #[test]
    fn fragment_then_reassemble_in_order() {
        let p = payload(4000);
        let frags = fragment(&repr(4000), &p, 1500).unwrap();
        assert_eq!(frags.len(), 3);
        let mut re = Reassembler::new();
        let mut done = None;
        for f in &frags {
            let (r, field, data) = parse_fragment(f).unwrap();
            done = re.input(&r, field, data, 0);
        }
        assert_eq!(done.expect("complete"), p);
        assert_eq!(re.stats().datagrams_completed, 1);
        assert_eq!(re.pending(), 0);
    }

    #[test]
    fn reassembly_handles_any_arrival_order() {
        let p = payload(3000);
        let frags = fragment(&repr(3000), &p, 576).unwrap();
        assert!(frags.len() >= 5);
        // Reverse order: completes only on the final missing piece.
        let mut re = Reassembler::new();
        let mut done = None;
        for f in frags.iter().rev() {
            let (r, field, data) = parse_fragment(f).unwrap();
            assert!(done.is_none());
            done = re.input(&r, field, data, 0);
        }
        assert_eq!(done.expect("complete"), p);
    }

    #[test]
    fn fragments_are_8_byte_aligned_and_mf_flagged() {
        let p = payload(3000);
        let frags = fragment(&repr(3000), &p, 576).unwrap();
        for (i, f) in frags.iter().enumerate() {
            let (_, field, data) = parse_fragment(f).unwrap();
            let last = i == frags.len() - 1;
            assert_eq!(field & 0x2000 != 0, !last, "MF on all but last");
            assert_eq!((field & 0x1fff) as usize * 8 % 8, 0);
            if !last {
                assert_eq!(data.len() % 8, 0, "non-final fragments 8-aligned");
            }
        }
    }

    #[test]
    fn dont_frag_refuses() {
        let r = Ipv4Repr {
            dont_frag: true,
            ..repr(4000)
        };
        assert_eq!(fragment(&r, &payload(4000), 1500), Err(Error::Exhausted));
    }

    #[test]
    fn interleaved_datagrams_keep_separate_buffers() {
        let p1 = payload(2000);
        let p2: Vec<u8> = payload(2000).iter().map(|b| !b).collect();
        let r2 = Ipv4Repr {
            ident: 0x9999,
            ..repr(2000)
        };
        let f1 = fragment(&repr(2000), &p1, 576).unwrap();
        let f2 = fragment(&r2, &p2, 576).unwrap();
        let mut re = Reassembler::new();
        let mut done = Vec::new();
        for (a, b) in f1.iter().zip(&f2) {
            for f in [a, b] {
                let (r, field, data) = parse_fragment(f).unwrap();
                if let Some(d) = re.input(&r, field, data, 0) {
                    done.push(d);
                }
            }
        }
        assert_eq!(done.len(), 2);
        assert!(done.contains(&p1));
        assert!(done.contains(&p2));
    }

    #[test]
    fn timeout_discards_partial_reassembly() {
        let p = payload(3000);
        let frags = fragment(&repr(3000), &p, 576).unwrap();
        let mut re = Reassembler::new();
        let (r, field, data) = parse_fragment(&frags[0]).unwrap();
        re.input(&r, field, data, 0);
        assert_eq!(re.pending(), 1);
        re.expire(REASSEMBLY_TIMEOUT_MS + 1);
        assert_eq!(re.pending(), 0);
        assert_eq!(re.stats().timeouts, 1);
        // A late fragment then starts a fresh (never-completing) buffer.
        let (r, field, data) = parse_fragment(&frags[1]).unwrap();
        assert!(re
            .input(&r, field, data, REASSEMBLY_TIMEOUT_MS + 2)
            .is_none());
    }

    #[test]
    fn buffer_exhaustion_evicts_oldest_for_fifth_datagram() {
        let mut re = Reassembler::new();
        // Datagram `ident` arrives at time `ident` ms, so ident 0 is the
        // oldest (earliest deadline) when the table fills.
        for ident in 0..=MAX_REASSEMBLIES as u16 {
            let r = Ipv4Repr {
                ident,
                ..repr(2000)
            };
            let frags = fragment(&r, &payload(2000), 576).unwrap();
            let (pr, field, data) = parse_fragment(&frags[0]).unwrap();
            re.input(&pr, field, data, u64::from(ident));
        }
        assert_eq!(re.pending(), MAX_REASSEMBLIES);
        assert_eq!(re.stats().evictions, 1, "capacity pressure is an eviction");
        assert_eq!(re.stats().timeouts, 0, "…not a timeout");
        assert_eq!(re.stats().dropped_no_buffer, 0, "…and not a byte-cap drop");
        // The evicted datagram was ident 0: completing it is no longer
        // possible, while the newest (ident 4) still can complete.
        let newest = Ipv4Repr {
            ident: MAX_REASSEMBLIES as u16,
            ..repr(2000)
        };
        let frags = fragment(&newest, &payload(2000), 576).unwrap();
        let mut done = None;
        for f in &frags[1..] {
            let (pr, field, data) = parse_fragment(f).unwrap();
            done = re.input(&pr, field, data, 10);
        }
        assert!(done.is_some(), "the newly admitted datagram completes");
    }

    #[test]
    fn eviction_and_timeout_counters_stay_separate() {
        let mut re = Reassembler::new();
        let frags = fragment(&repr(3000), &payload(3000), 576).unwrap();
        let (pr, field, data) = parse_fragment(&frags[0]).unwrap();
        re.input(&pr, field, data, 0);
        re.expire(REASSEMBLY_TIMEOUT_MS + 1);
        assert_eq!(re.stats().timeouts, 1);
        assert_eq!(re.stats().evictions, 0, "expiry must not count as eviction");
    }

    #[test]
    fn duplicate_fragments_ignored() {
        let p = payload(2000);
        let frags = fragment(&repr(2000), &p, 576).unwrap();
        let mut re = Reassembler::new();
        let mut done = None;
        // Every fragment arrives twice, except the last (whose repeat
        // would legitimately start a fresh reassembly after completion).
        let (last, rest) = frags.split_last().expect("multiple fragments");
        for f in rest.iter().flat_map(|f| [f, f]).chain([last]) {
            let (r, field, data) = parse_fragment(f).unwrap();
            if let Some(d) = re.input(&r, field, data, 0) {
                done = Some(d);
            }
        }
        assert_eq!(done.expect("complete"), p);
        assert_eq!(re.stats().datagrams_completed, 1);
        assert_eq!(re.pending(), 0, "duplicates left no residue");
    }
}
