//! Socket buffers and process wakeup modelling.
//!
//! The socket layer of the traced stack does two jobs on the receive path:
//! `sbappend` adds mbufs to the receive buffer at interrupt level, and
//! `sowakeup`/`soreceive` wake the sleeping process and copy the data out
//! (Table 2's "device interrupt" and "exit" phases). [`SockBuf`] models
//! the buffer with byte-counted backpressure; [`Wakeup`] models the
//! sleeping-process handshake so tests can assert when a wakeup would
//! occur.

use crate::error::{Error, Result};
use std::collections::VecDeque;

/// A byte-stream socket buffer with a capacity bound.
#[derive(Debug, Clone)]
pub struct SockBuf {
    data: VecDeque<u8>,
    capacity: usize,
}

impl SockBuf {
    /// An empty buffer holding at most `capacity` bytes.
    pub fn new(capacity: usize) -> Self {
        SockBuf {
            data: VecDeque::new(),
            capacity,
        }
    }

    /// Bytes currently buffered.
    pub fn len(&self) -> usize {
        self.data.len()
    }

    /// Whether the buffer is empty.
    pub fn is_empty(&self) -> bool {
        self.data.is_empty()
    }

    /// Remaining space.
    pub fn free(&self) -> usize {
        self.capacity - self.data.len()
    }

    /// Total capacity.
    pub fn capacity(&self) -> usize {
        self.capacity
    }

    /// Appends `bytes` (`sbappend`); fails without side effects if they
    /// don't fit.
    pub fn append(&mut self, bytes: &[u8]) -> Result<()> {
        if bytes.len() > self.free() {
            return Err(Error::Exhausted);
        }
        self.data.extend(bytes);
        Ok(())
    }

    /// Copies up to `dst.len()` bytes out (`soreceive` + `uiomove`),
    /// returning how many were moved.
    pub fn read(&mut self, dst: &mut [u8]) -> usize {
        let n = dst.len().min(self.data.len());
        for b in dst.iter_mut().take(n) {
            *b = self.data.pop_front().expect("n bounded by len");
        }
        n
    }

    /// Drains everything into a `Vec`.
    pub fn read_all(&mut self) -> Vec<u8> {
        self.data.drain(..).collect()
    }
}

/// Models a process sleeping on a socket (`tsleep`/`wakeup`).
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct Wakeup {
    sleeping: bool,
    /// Number of wakeups delivered (for test assertions).
    pub wakeups: u64,
}

impl Wakeup {
    /// The process blocks waiting for data (`sbwait`/`tsleep`).
    pub fn sleep(&mut self) {
        self.sleeping = true;
    }

    /// Data arrived (`sowakeup`): wakes the process if it was sleeping,
    /// returning whether a wakeup was delivered.
    pub fn wake(&mut self) -> bool {
        if self.sleeping {
            self.sleeping = false;
            self.wakeups += 1;
            true
        } else {
            false
        }
    }

    /// Whether the process is currently blocked.
    pub fn is_sleeping(&self) -> bool {
        self.sleeping
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn append_and_read() {
        let mut b = SockBuf::new(16);
        b.append(b"hello").unwrap();
        b.append(b" world").unwrap();
        assert_eq!(b.len(), 11);
        let mut out = [0u8; 5];
        assert_eq!(b.read(&mut out), 5);
        assert_eq!(&out, b"hello");
        assert_eq!(b.read_all(), b" world");
        assert!(b.is_empty());
    }

    #[test]
    fn capacity_enforced_atomically() {
        let mut b = SockBuf::new(8);
        b.append(b"12345678").unwrap();
        assert_eq!(b.append(b"x"), Err(Error::Exhausted));
        assert_eq!(b.len(), 8, "failed append leaves buffer unchanged");
        assert_eq!(b.free(), 0);
    }

    #[test]
    fn read_more_than_available() {
        let mut b = SockBuf::new(8);
        b.append(b"abc").unwrap();
        let mut out = [0u8; 8];
        assert_eq!(b.read(&mut out), 3);
        assert_eq!(&out[..3], b"abc");
    }

    #[test]
    fn wakeup_only_fires_when_sleeping() {
        let mut w = Wakeup::default();
        assert!(!w.wake(), "nobody sleeping");
        w.sleep();
        assert!(w.is_sleeping());
        assert!(w.wake());
        assert!(!w.wake(), "already awake");
        assert_eq!(w.wakeups, 1);
    }
}
