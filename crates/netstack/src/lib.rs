//! # netstack — a small, functional TCP/IP stack with measured footprints
//!
//! This crate plays the role of the paper's NetBSD/Alpha protocol stack
//! (Blackwell, SIGCOMM '96, Section 2). It is a real, if deliberately
//! small, TCP/IP implementation in the spirit of smoltcp: event-driven,
//! no wall-clock dependence, simple and robust:
//!
//! * [`wire`] — zero-copy wire formats for Ethernet II, ARP, IPv4, ICMPv4,
//!   UDP and TCP, with full checksum generation and validation.
//! * [`checksum`] — the Internet checksum in two styles: a *simple* tight
//!   loop (small code footprint) and a 4.4BSD-flavoured *unrolled* routine
//!   (large footprint, fewer per-byte operations). Figure 8 of the paper
//!   compares exactly these two design points under warm and cold caches.
//! * [`mbuf`] — a 4.4BSD-style message-buffer system: headers are stripped
//!   and prepended without copying payload bytes, and buffers are handed
//!   from lower to upper layers as LDLP requires (Section 3.2).
//! * [`tcp`] — connection state machine, PCBs with a single-entry PCB
//!   cache, header-prediction fast path, and delayed ACKs
//!   (ACK-every-second-segment, as the traced BSD stack does).
//! * [`socket`] — socket receive/send buffers and process wakeup modelling.
//! * [`iface`] — interface glue: device abstraction, loopback and
//!   channel devices, ARP cache, dispatch, and fault injection.
//! * [`footprint`] — the bridge to the measurement study: the function
//!   inventory of Figure 1 (every function of the traced receive-and-
//!   acknowledge path with its size and layer) and a builder that replays
//!   the path as a `memtrace::Trace` for Tables 1–3 and Figure 1.
//!
//! The functional stack and the footprint model are deliberately separate:
//! the stack is validated by behavioural tests (parsing, checksums, state
//! machines, end-to-end transfers over a loopback device), while the
//! footprint model carries the byte-accurate measurements the paper
//! published, so the analysis crates can reproduce the paper's tables on
//! any host.

pub mod checksum;
pub mod error;
pub mod footprint;
pub mod iface;
pub mod ipfrag;
pub mod mbuf;
pub mod socket;
pub mod table;
pub mod tcp;
pub mod wire;

pub use error::{Error, Result};
pub use mbuf::{Mbuf, MbufChain};
