//! Cache-aware open-addressing lookup tables.
//!
//! Every per-message data structure in the stack — the PCB table, the
//! signaling VC table, the DNS zone, the ARP cache — used to be a list
//! walk or a `BTreeMap`. At the paper's scale (tens of connections)
//! either is fine; at production scale (10^5–10^6 concurrent flows)
//! the *data* working set becomes the cache killer, and a pointer-chasing
//! tree under-reports it. [`OaTable`] is the replacement: open addressing
//! with linear probing, so a lookup touches a short run of contiguous
//! slots — and, crucially, it records the probe sequence of every keyed
//! operation so callers can replay those slots as data references against
//! `cachesim` ("Algorithms and Data Structures to Accelerate Network
//! Analysis" grounds the cache-conscious design). D-misses per lookup are
//! then simulated, not guessed.
//!
//! [`LookupCache`] generalizes the BSD single-entry PCB cache into the
//! small front-end caches Jain studied in DEC-TR-592: LRU / FIFO /
//! random replacement at 1–64 entries, effective exactly when the
//! traffic has destination-address locality. `figure10` reproduces that
//! scheme comparison under Zipf and packet-train popularity.
//!
//! Everything here is deterministic: hashing is a fixed splitmix64
//! finalizer (no per-process `RandomState`), iteration order is slot
//! order, and the random eviction scheme runs on a seeded xorshift64.
//! The module is held to the workspace panic-free rule — probe loops are
//! index arithmetic over `get`/`get_mut`, never raw indexing.

use crate::wire::ipv4::Ipv4Addr;

/// Deterministic 64-bit hash for table keys.
///
/// Implementations must be pure functions of the key value so that runs
/// are reproducible across processes and thread counts (workspace rule:
/// no `std::collections::HashMap` in simulation crates precisely because
/// its hasher is seeded per process).
pub trait StableHash {
    /// A well-mixed 64-bit digest of the key.
    fn stable_hash(&self) -> u64;
}

/// splitmix64 finalizer: the standard 64-bit avalanche mix.
#[inline]
pub fn mix64(mut x: u64) -> u64 {
    x = x.wrapping_add(0x9e37_79b9_7f4a_7c15);
    x = (x ^ (x >> 30)).wrapping_mul(0xbf58_476d_1ce4_e5b9);
    x = (x ^ (x >> 27)).wrapping_mul(0x94d0_49bb_1331_11eb);
    x ^ (x >> 31)
}

impl StableHash for u64 {
    fn stable_hash(&self) -> u64 {
        mix64(*self)
    }
}

impl StableHash for u32 {
    fn stable_hash(&self) -> u64 {
        mix64(u64::from(*self))
    }
}

impl StableHash for u16 {
    fn stable_hash(&self) -> u64 {
        mix64(u64::from(*self))
    }
}

impl StableHash for usize {
    fn stable_hash(&self) -> u64 {
        mix64(*self as u64)
    }
}

impl StableHash for Ipv4Addr {
    fn stable_hash(&self) -> u64 {
        mix64(u64::from(u32::from_be_bytes(self.0)))
    }
}

impl StableHash for String {
    fn stable_hash(&self) -> u64 {
        // FNV-1a over the bytes, then the avalanche finalizer.
        let mut h = 0xcbf2_9ce4_8422_2325u64;
        for &b in self.as_bytes() {
            h ^= u64::from(b);
            h = h.wrapping_mul(0x0000_0100_0000_01b3);
        }
        mix64(h)
    }
}

/// The TCP/UDP connection 4-tuple `(local, lport, remote, rport)`.
impl StableHash for (Ipv4Addr, u16, Ipv4Addr, u16) {
    fn stable_hash(&self) -> u64 {
        let (la, lp, ra, rp) = self;
        let addrs = (u64::from(u32::from_be_bytes(la.0)) << 32)
            | u64::from(u32::from_be_bytes(ra.0));
        let ports = (u64::from(*lp) << 16) | u64::from(*rp);
        mix64(addrs ^ mix64(ports))
    }
}

/// Smallest table ever allocated (slots).
const MIN_CAPACITY: usize = 8;
/// Grow when occupancy would exceed 7/8 of capacity.
const LOAD_NUM: usize = 7;
const LOAD_DEN: usize = 8;

/// An open-addressing hash table with linear probing, backward-shift
/// deletion, and a probe log.
///
/// Capacity is always a power of two; occupancy is kept below 7/8, so a
/// probe run always terminates at an empty slot. After any keyed `&mut`
/// operation ([`Self::get_mut`], [`Self::insert`], [`Self::remove`]),
/// [`Self::last_probes`] returns the slot indices the operation touched
/// in order — the caller multiplies by its slot stride and issues them
/// as data references to `cachesim`, so the simulated D-cache sees the
/// same footprint the real lookup would.
#[derive(Debug, Clone)]
pub struct OaTable<K, V> {
    slots: Vec<Option<(K, V)>>,
    len: usize,
    /// Slot indices touched by the most recent keyed `&mut` operation.
    probes: Vec<u32>,
    /// Total probes across keyed operations (for mean probe length).
    probes_total: u64,
    /// Keyed operations counted into `probes_total`.
    ops: u64,
}

impl<K: StableHash + Eq, V> Default for OaTable<K, V> {
    fn default() -> Self {
        Self::new()
    }
}

impl<K: StableHash + Eq, V> OaTable<K, V> {
    /// An empty table (allocates on first insert).
    pub fn new() -> Self {
        OaTable {
            slots: Vec::new(),
            len: 0,
            probes: Vec::new(),
            probes_total: 0,
            ops: 0,
        }
    }

    /// A table pre-sized to hold `n` entries without rehashing.
    pub fn with_capacity(n: usize) -> Self {
        let mut t = Self::new();
        if n > 0 {
            let want = (n * LOAD_DEN / LOAD_NUM + 1).next_power_of_two();
            t.slots = Self::fresh_slots(want.max(MIN_CAPACITY));
        }
        t
    }

    fn fresh_slots(cap: usize) -> Vec<Option<(K, V)>> {
        // analyze::allow(alloc-path, reason = "growth rehash is amortized bulk maintenance; dispatch-path tables (relay mailboxes) are pre-sized for their population so this fires at startup, not per message")
        let mut v = Vec::with_capacity(cap);
        v.resize_with(cap, || None);
        v
    }

    /// Number of entries.
    pub fn len(&self) -> usize {
        self.len
    }

    /// True when the table holds no entries.
    pub fn is_empty(&self) -> bool {
        self.len == 0
    }

    /// Allocated slots (power of two, 0 before first insert).
    pub fn capacity(&self) -> usize {
        self.slots.len()
    }

    /// Slot indices touched by the most recent keyed `&mut` operation
    /// (`get_mut` / `insert` / `remove`), in probe order. Multiply by the
    /// modelled slot stride to turn them into data addresses.
    pub fn last_probes(&self) -> &[u32] {
        &self.probes
    }

    /// Mean probes per keyed `&mut` operation since construction.
    pub fn mean_probes(&self) -> f64 {
        if self.ops == 0 {
            0.0
        } else {
            self.probes_total as f64 / self.ops as f64
        }
    }

    #[inline]
    fn mask(&self) -> usize {
        // Capacity is a power of two whenever slots is non-empty.
        self.slots.len().wrapping_sub(1)
    }

    /// Shared lookup; does not record probes (no `&mut` access).
    // analyze::hot_path(oatable-probe, rules = "panic-path")
    pub fn get(&self, key: &K) -> Option<&V> {
        if self.slots.is_empty() {
            return None;
        }
        let mask = self.mask();
        let mut i = (key.stable_hash() as usize) & mask;
        let mut steps = 0usize;
        while steps <= self.slots.len() {
            match self.slots.get(i) {
                Some(Some((k, v))) if k == key => return Some(v),
                Some(Some(_)) => {
                    i = (i + 1) & mask;
                    steps += 1;
                }
                _ => return None,
            }
        }
        None
    }

    /// True when `key` is present.
    pub fn contains_key(&self, key: &K) -> bool {
        self.get(key).is_some()
    }

    /// Exclusive lookup; records the probe sequence.
    // analyze::hot_path(oatable-probe, rules = "panic-path")
    pub fn get_mut(&mut self, key: &K) -> Option<&mut V> {
        self.probes.clear();
        if self.slots.is_empty() {
            return None;
        }
        let mask = self.mask();
        let mut i = (key.stable_hash() as usize) & mask;
        let cap = self.slots.len();
        let mut found = None;
        while self.probes.len() <= cap {
            // analyze::allow(alloc-path, reason = "probe log keeps its capacity across lookups; the engine-loop edge is a get_mut name collision via obs")
            self.probes.push(i as u32);
            match self.slots.get(i) {
                Some(Some((k, _))) if k == key => {
                    found = Some(i);
                    break;
                }
                Some(Some(_)) => i = (i + 1) & mask,
                _ => break,
            }
        }
        self.note_op();
        let at = found?;
        match self.slots.get_mut(at) {
            Some(Some((_, v))) => Some(v),
            _ => None,
        }
    }

    /// Inserts or replaces; returns the previous value for `key` if any.
    /// Records the probe sequence of the final placement pass (a growth
    /// rehash is a bulk maintenance event, not a per-message lookup, and
    /// is deliberately not logged).
    // analyze::hot_path(oatable-probe, rules = "panic-path")
    pub fn insert(&mut self, key: K, value: V) -> Option<V> {
        if self.slots.is_empty() || (self.len + 1) * LOAD_DEN > self.slots.len() * LOAD_NUM {
            self.grow();
        }
        self.probes.clear();
        let mask = self.mask();
        let mut i = (key.stable_hash() as usize) & mask;
        let cap = self.slots.len();
        let mut value = Some(value);
        let mut replaced = None;
        while self.probes.len() <= cap {
            // analyze::allow(alloc-path, reason = "probe log keeps its capacity across placements; the dispatch-path edge is relay mailbox insert into a pre-sized table")
            self.probes.push(i as u32);
            match self.slots.get_mut(i) {
                Some(slot) => match slot {
                    Some((k, v)) if *k == key => {
                        if let Some(nv) = value.take() {
                            replaced = Some(std::mem::replace(v, nv));
                        }
                        break;
                    }
                    Some(_) => i = (i + 1) & mask,
                    None => {
                        if let Some(nv) = value.take() {
                            *slot = Some((key, nv));
                            self.len += 1;
                        }
                        break;
                    }
                },
                None => break,
            }
        }
        self.note_op();
        replaced
    }

    /// Removes `key`, returning its value. Backward-shift deletion keeps
    /// probe runs contiguous (no tombstones), so lookup cost never decays
    /// with churn. Records the probe sequence of the search.
    // analyze::hot_path(oatable-probe, rules = "panic-path")
    pub fn remove(&mut self, key: &K) -> Option<V> {
        self.probes.clear();
        if self.slots.is_empty() {
            return None;
        }
        let mask = self.mask();
        let mut i = (key.stable_hash() as usize) & mask;
        let cap = self.slots.len();
        let mut found = None;
        while self.probes.len() <= cap {
            self.probes.push(i as u32);
            match self.slots.get(i) {
                Some(Some((k, _))) if k == key => {
                    found = Some(i);
                    break;
                }
                Some(Some(_)) => i = (i + 1) & mask,
                _ => break,
            }
        }
        self.note_op();
        let hole = found?;
        let removed = self.slots.get_mut(hole).and_then(|s| s.take());
        if removed.is_some() {
            self.len -= 1;
            self.backward_shift(hole);
        }
        removed.map(|(_, v)| v)
    }

    /// Closes the hole left at `hole` by sliding displaced cluster
    /// members back toward their home slots.
    fn backward_shift(&mut self, mut hole: usize) {
        let mask = self.mask();
        let mut j = (hole + 1) & mask;
        let mut steps = 0usize;
        while steps < self.slots.len() {
            let home = match self.slots.get(j) {
                Some(Some((k, _))) => (k.stable_hash() as usize) & mask,
                _ => return, // empty slot: cluster ends, hole is safe
            };
            // The entry at j may fill the hole only if its probe path
            // from home reaches the hole before j (cyclically).
            let home_to_j = j.wrapping_sub(home) & mask;
            let hole_to_j = j.wrapping_sub(hole) & mask;
            if home_to_j >= hole_to_j {
                let e = self.slots.get_mut(j).and_then(|s| s.take());
                if let Some(slot) = self.slots.get_mut(hole) {
                    *slot = e;
                }
                hole = j;
            }
            j = (j + 1) & mask;
            steps += 1;
        }
    }

    fn grow(&mut self) {
        let new_cap = (self.slots.len() * 2).max(MIN_CAPACITY);
        let old = std::mem::replace(&mut self.slots, Self::fresh_slots(new_cap));
        let mask = new_cap.wrapping_sub(1);
        for entry in old.into_iter().flatten() {
            let (k, v) = entry;
            let mut i = (k.stable_hash() as usize) & mask;
            let mut steps = 0usize;
            // The new table is at most half full: an empty slot exists.
            while steps <= new_cap {
                match self.slots.get_mut(i) {
                    Some(slot) if slot.is_none() => {
                        *slot = Some((k, v));
                        break;
                    }
                    Some(_) => {
                        i = (i + 1) & mask;
                        steps += 1;
                    }
                    None => break,
                }
            }
        }
    }

    fn note_op(&mut self) {
        self.probes_total += self.probes.len() as u64;
        self.ops += 1;
    }

    /// Iterates entries in slot order (deterministic).
    pub fn iter(&self) -> impl Iterator<Item = (&K, &V)> {
        self.slots.iter().filter_map(|s| s.as_ref().map(|(k, v)| (k, v)))
    }

    /// Iterates values mutably in slot order.
    pub fn values_mut(&mut self) -> impl Iterator<Item = &mut V> {
        self.slots.iter_mut().filter_map(|s| s.as_mut().map(|(_, v)| v))
    }

    /// Keeps only the entries for which `f` returns `true` (e.g.
    /// expiring relay mailboxes past their deadline). Like a growth
    /// rehash this is a bulk maintenance event, not a per-message
    /// lookup: the probe log and mean-probe counters are left exactly
    /// as the last keyed operation set them.
    pub fn retain(&mut self, mut f: impl FnMut(&K, &mut V) -> bool) -> usize
    where
        K: Clone,
    {
        let mut dead: Vec<K> = Vec::new();
        for s in &mut self.slots {
            if let Some((k, v)) = s.as_mut() {
                if !f(k, v) {
                    dead.push(k.clone());
                }
            }
        }
        let (probes, probes_total, ops) =
            (std::mem::take(&mut self.probes), self.probes_total, self.ops);
        for k in &dead {
            self.remove(k);
        }
        self.probes = probes;
        self.probes_total = probes_total;
        self.ops = ops;
        dead.len()
    }

    /// Drops all entries, keeping the allocation.
    pub fn clear(&mut self) {
        for s in &mut self.slots {
            *s = None;
        }
        self.len = 0;
        self.probes.clear();
    }
}

/// Replacement policy for a [`LookupCache`] (Jain, DEC-TR-592).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum CacheScheme {
    /// Evict the least recently used entry.
    Lru,
    /// Evict the oldest entry regardless of use.
    Fifo,
    /// Evict a uniformly random entry (seeded xorshift64).
    Random,
}

impl CacheScheme {
    /// Stable lowercase label for CSV columns.
    pub fn label(self) -> &'static str {
        match self {
            CacheScheme::Lru => "lru",
            CacheScheme::Fifo => "fifo",
            CacheScheme::Random => "rand",
        }
    }
}

/// Hit/miss counters for a [`LookupCache`].
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct LookupCacheStats {
    pub hits: u64,
    pub misses: u64,
}

impl LookupCacheStats {
    /// Hits over all lookups (0 when idle).
    pub fn hit_rate(&self) -> f64 {
        let total = self.hits + self.misses;
        if total == 0 {
            0.0
        } else {
            self.hits as f64 / total as f64
        }
    }
}

/// Largest front-end cache Jain's study sweeps.
pub const MAX_CACHE_SLOTS: usize = 64;

/// A small front-end cache over a lookup table.
///
/// At 1–64 entries a linear scan beats any index structure, and the
/// whole cache fits in a couple of cache lines — which is the point: a
/// hit saves the table's probe walk entirely. Entry order encodes the
/// policy state: front is most-recent (LRU) or newest (FIFO); eviction
/// takes the back, except the random scheme which overwrites a seeded
/// xorshift64 pick in place.
#[derive(Debug, Clone)]
pub struct LookupCache<K, V> {
    scheme: CacheScheme,
    cap: usize,
    entries: Vec<(K, V)>,
    rng: u64,
    stats: LookupCacheStats,
}

impl<K: Eq + Clone, V: Clone> LookupCache<K, V> {
    /// A cache with `slots` entries (clamped to 1..=64) under `scheme`.
    /// `seed` drives the random-eviction scheme only.
    pub fn new(scheme: CacheScheme, slots: usize, seed: u64) -> Self {
        LookupCache {
            scheme,
            cap: slots.clamp(1, MAX_CACHE_SLOTS),
            entries: Vec::new(),
            // xorshift64 state must be non-zero.
            rng: mix64(seed) | 1,
            stats: LookupCacheStats::default(),
        }
    }

    /// Configured capacity in entries.
    pub fn slots(&self) -> usize {
        self.cap
    }

    /// The replacement scheme.
    pub fn scheme(&self) -> CacheScheme {
        self.scheme
    }

    /// Counters.
    pub fn stats(&self) -> LookupCacheStats {
        self.stats
    }

    fn next_rand(&mut self) -> u64 {
        let mut x = self.rng;
        x ^= x << 13;
        x ^= x >> 7;
        x ^= x << 17;
        self.rng = x;
        x
    }

    /// Slot index at which `key` currently sits (0 = front), without
    /// touching hit statistics or recency order. The linear scan stops
    /// here, so a cost model charges reads of slots `0..=position`
    /// on a hit and of the whole cache on a miss.
    pub fn position(&self, key: &K) -> Option<usize> {
        self.entries.iter().position(|(k, _)| k == key)
    }

    /// Looks `key` up, updating recency (LRU) and counters.
    // analyze::hot_path(oatable-probe, rules = "panic-path")
    pub fn get(&mut self, key: &K) -> Option<V> {
        match self.entries.iter().position(|(k, _)| k == key) {
            Some(pos) => {
                self.stats.hits += 1;
                if self.scheme == CacheScheme::Lru && pos > 0 {
                    // Move to front: O(pos) on a <=64-entry Vec.
                    let e = self.entries.remove(pos);
                    // analyze::allow(alloc-path, reason = "reinserts into the slot the remove just vacated, so the <=64-entry Vec never grows; the workload-dispatch edge is a slice-get name collision in classify")
                    self.entries.insert(0, e);
                    return self.entries.first().map(|(_, v)| v.clone());
                }
                self.entries.get(pos).map(|(_, v)| v.clone())
            }
            None => {
                self.stats.misses += 1;
                None
            }
        }
    }

    /// Installs `key -> value`, evicting per the scheme when full. An
    /// existing key is updated in place (LRU also refreshes recency).
    pub fn insert(&mut self, key: K, value: V) {
        if let Some(pos) = self.entries.iter().position(|(k, _)| k == &key) {
            if let Some(e) = self.entries.get_mut(pos) {
                e.1 = value;
            }
            if self.scheme == CacheScheme::Lru && pos > 0 {
                let e = self.entries.remove(pos);
                self.entries.insert(0, e);
            }
            return;
        }
        if self.entries.len() >= self.cap {
            match self.scheme {
                CacheScheme::Lru | CacheScheme::Fifo => {
                    self.entries.pop();
                }
                CacheScheme::Random => {
                    // analyze::allow(panic-path, reason = "cap is a nonzero power of two fixed at construction")
                    let at = (self.next_rand() % self.cap as u64) as usize;
                    if let Some(e) = self.entries.get_mut(at) {
                        *e = (key, value);
                    }
                    return;
                }
            }
        }
        self.entries.insert(0, (key, value));
    }

    /// Drops `key` if cached (e.g. connection teardown).
    pub fn invalidate(&mut self, key: &K) {
        self.entries.retain(|(k, _)| k != key);
    }

    /// Drops every entry (policy state and counters are kept).
    pub fn clear(&mut self) {
        self.entries.clear();
    }

    /// Current number of cached entries.
    pub fn len(&self) -> usize {
        self.entries.len()
    }

    /// True when nothing is cached.
    pub fn is_empty(&self) -> bool {
        self.entries.is_empty()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn insert_get_remove_round_trip() {
        let mut t: OaTable<u64, u32> = OaTable::new();
        assert!(t.is_empty());
        for i in 0..100u64 {
            assert_eq!(t.insert(i, i as u32 * 3), None);
        }
        assert_eq!(t.len(), 100);
        for i in 0..100u64 {
            assert_eq!(t.get(&i), Some(&(i as u32 * 3)));
        }
        assert_eq!(t.get(&1000), None);
        assert_eq!(t.insert(7, 99), Some(21));
        assert_eq!(t.remove(&7), Some(99));
        assert_eq!(t.remove(&7), None);
        assert_eq!(t.len(), 99);
    }

    #[test]
    fn capacity_is_power_of_two_and_presized() {
        let t: OaTable<u64, ()> = OaTable::with_capacity(1000);
        assert!(t.capacity().is_power_of_two());
        assert!(t.capacity() >= 1024);
        let mut t: OaTable<u64, ()> = OaTable::with_capacity(100);
        let cap = t.capacity();
        for i in 0..100u64 {
            t.insert(i, ());
        }
        assert_eq!(t.capacity(), cap, "pre-sized table must not rehash");
    }

    #[test]
    fn probe_log_records_the_walk() {
        let mut t: OaTable<u64, u32> = OaTable::with_capacity(8);
        t.insert(1, 10);
        assert!(!t.last_probes().is_empty());
        t.get_mut(&1);
        let probes = t.last_probes().to_vec();
        assert!(!probes.is_empty());
        // The final probe is the slot where the key lives; repeating the
        // lookup walks the same slots.
        t.get_mut(&1);
        assert_eq!(t.last_probes(), &probes[..]);
        // A missing key still walks at least one slot.
        t.get_mut(&999_999);
        assert!(!t.last_probes().is_empty());
        assert!(t.mean_probes() >= 1.0);
    }

    #[test]
    fn backward_shift_keeps_clusters_reachable() {
        // Force a dense cluster, then delete from the middle and verify
        // every survivor is still reachable (no tombstone semantics).
        let mut t: OaTable<u64, u64> = OaTable::new();
        for i in 0..2000u64 {
            t.insert(i, i);
        }
        for i in (0..2000u64).step_by(3) {
            assert_eq!(t.remove(&i), Some(i));
        }
        for i in 0..2000u64 {
            if i % 3 == 0 {
                assert_eq!(t.get(&i), None);
            } else {
                assert_eq!(t.get(&i), Some(&i));
            }
        }
    }

    #[test]
    fn retain_expires_entries_and_keeps_survivors_reachable() {
        let mut t: OaTable<u64, u64> = OaTable::new();
        for i in 0..500u64 {
            t.insert(i, i * 2);
        }
        t.get_mut(&499);
        let logged = t.last_probes().to_vec();
        let ops_before = t.mean_probes();
        let dropped = t.retain(|k, v| {
            *v += 1; // predicate may mutate survivors
            k % 5 != 0
        });
        assert_eq!(dropped, 100);
        assert_eq!(t.len(), 400);
        for i in 0..500u64 {
            if i % 5 == 0 {
                assert_eq!(t.get(&i), None);
            } else {
                assert_eq!(t.get(&i), Some(&(i * 2 + 1)));
            }
        }
        assert_eq!(t.last_probes(), &logged[..], "bulk maintenance is not probe-logged");
        assert!((t.mean_probes() - ops_before).abs() < 1e-12);
    }

    #[test]
    fn iteration_is_slot_ordered_and_deterministic() {
        let mk = || {
            let mut t: OaTable<u32, u32> = OaTable::new();
            for i in 0..50u32 {
                t.insert(i * 7, i);
            }
            t.iter().map(|(k, v)| (*k, *v)).collect::<Vec<_>>()
        };
        assert_eq!(mk(), mk());
    }

    #[test]
    fn lru_evicts_least_recently_used() {
        let mut c: LookupCache<u32, u32> = LookupCache::new(CacheScheme::Lru, 2, 1);
        c.insert(1, 10);
        c.insert(2, 20);
        assert_eq!(c.get(&1), Some(10)); // 1 is now MRU
        c.insert(3, 30); // evicts 2
        assert_eq!(c.get(&2), None);
        assert_eq!(c.get(&1), Some(10));
        assert_eq!(c.get(&3), Some(30));
    }

    #[test]
    fn fifo_evicts_oldest_regardless_of_use() {
        let mut c: LookupCache<u32, u32> = LookupCache::new(CacheScheme::Fifo, 2, 1);
        c.insert(1, 10);
        c.insert(2, 20);
        assert_eq!(c.get(&1), Some(10)); // touching 1 must not save it
        c.insert(3, 30); // evicts 1 (oldest by insertion)
        assert_eq!(c.get(&1), None);
        assert_eq!(c.get(&2), Some(20));
    }

    #[test]
    fn random_eviction_is_seed_deterministic() {
        let run = |seed: u64| {
            let mut c: LookupCache<u32, u32> = LookupCache::new(CacheScheme::Random, 4, seed);
            for i in 0..100u32 {
                c.insert(i, i);
                c.get(&(i / 2));
            }
            (c.stats(), {
                let mut keys: Vec<u32> = Vec::new();
                for k in 0..100u32 {
                    if c.get(&k).is_some() {
                        keys.push(k);
                    }
                }
                keys
            })
        };
        let (stats_a, keys_a) = run(42);
        let (stats_b, keys_b) = run(42);
        assert_eq!(stats_a, stats_b);
        assert_eq!(keys_a, keys_b);
        assert_eq!(keys_a.len(), 4, "cache holds exactly its capacity");
    }

    #[test]
    fn cache_stats_count_hits_and_misses() {
        let mut c: LookupCache<u32, u32> = LookupCache::new(CacheScheme::Lru, 1, 0);
        assert_eq!(c.get(&5), None);
        c.insert(5, 50);
        assert_eq!(c.get(&5), Some(50));
        let s = c.stats();
        assert_eq!((s.hits, s.misses), (1, 1));
        assert!((s.hit_rate() - 0.5).abs() < 1e-12);
        c.invalidate(&5);
        assert_eq!(c.get(&5), None);
    }

    #[test]
    fn string_and_tuple_keys_hash_stably() {
        let a = String::from("www.example.com").stable_hash();
        assert_eq!(a, String::from("www.example.com").stable_hash());
        assert_ne!(a, String::from("www.example.org").stable_hash());
        let k1 = (Ipv4Addr([10, 0, 0, 1]), 80u16, Ipv4Addr([10, 0, 0, 2]), 5000u16);
        let k2 = (Ipv4Addr([10, 0, 0, 2]), 80u16, Ipv4Addr([10, 0, 0, 1]), 5000u16);
        assert_ne!(k1.stable_hash(), k2.stable_hash(), "direction matters");
    }
}
