//! Out-of-order segment assembly.
//!
//! Tracks which spans of the receive sequence space beyond `rcv_nxt` have
//! arrived, buffering their bytes until the gap before them fills. This
//! is smoltcp's "assembler" idea with payload storage: a bounded list of
//! disjoint `(offset, bytes)` runs relative to the next expected
//! sequence number.

use crate::error::{Error, Result};

/// Maximum number of non-contiguous runs held (smoltcp's
/// `ASSEMBLER_MAX_SEGMENT_COUNT` spirit); segments beyond this are
/// dropped and must be retransmitted.
pub const MAX_RUNS: usize = 8;

/// One buffered out-of-order run: `offset` bytes past `rcv_nxt`.
#[derive(Debug, Clone, PartialEq, Eq)]
struct Run {
    offset: usize,
    data: Vec<u8>,
}

impl Run {
    fn end(&self) -> usize {
        self.offset + self.data.len()
    }
}

/// Reassembly buffer for one connection's receive window.
#[derive(Debug, Clone, Default)]
pub struct Assembler {
    /// Disjoint, sorted by offset, never adjacent (merged eagerly).
    runs: Vec<Run>,
    /// Total buffered bytes (bounded by the window by construction).
    buffered: usize,
    /// Capacity bound on buffered bytes.
    capacity: usize,
}

impl Assembler {
    /// An assembler buffering at most `capacity` out-of-order bytes.
    pub fn new(capacity: usize) -> Self {
        Assembler {
            runs: Vec::new(),
            buffered: 0,
            capacity,
        }
    }

    /// Bytes currently buffered out of order.
    pub fn buffered(&self) -> usize {
        self.buffered
    }

    /// Whether nothing is buffered.
    pub fn is_empty(&self) -> bool {
        self.runs.is_empty()
    }

    /// Inserts `data` at `offset` bytes past the current `rcv_nxt`.
    /// Overlaps with existing runs are resolved byte-for-byte (existing
    /// bytes win; TCP retransmissions carry identical data). Fails with
    /// [`Error::Exhausted`] when the run or byte budget would overflow —
    /// the segment is then dropped for retransmission, never partially
    /// stored.
    pub fn insert(&mut self, offset: usize, data: &[u8]) -> Result<()> {
        if data.is_empty() {
            return Ok(());
        }
        let new_end = offset + data.len();
        // Compute how many genuinely new bytes this adds.
        let mut new_bytes = data.len();
        for r in &self.runs {
            let lo = r.offset.max(offset);
            let hi = r.end().min(new_end);
            if lo < hi {
                new_bytes -= hi - lo;
            }
        }
        if self.buffered + new_bytes > self.capacity {
            return Err(Error::Exhausted);
        }

        // Merge: collect all runs overlapping or adjacent to [offset, end).
        let mut merged = Run {
            offset,
            data: data.to_vec(),
        };
        let mut kept = Vec::with_capacity(self.runs.len() + 1);
        for r in self.runs.drain(..) {
            if r.end() < merged.offset || r.offset > merged.end() {
                kept.push(r);
            } else {
                merged = merge(merged, r);
            }
        }
        kept.push(merged);
        kept.sort_by_key(|r| r.offset);
        if kept.len() > MAX_RUNS {
            // Refuse: restore previous state minus nothing (runs were
            // fully rebuilt; reconstruct by removing the new bytes is
            // complex, so check first instead).
            // This branch is unreachable because a merge never increases
            // the run count by more than one; assert in debug.
            debug_assert!(kept.len() <= MAX_RUNS + 1);
            // Drop the newly inserted data: rebuild without it.
            self.runs = kept
                .into_iter()
                .filter(|r| !(r.offset <= offset && r.end() >= new_end))
                .collect();
            return Err(Error::Exhausted);
        }
        self.buffered += new_bytes;
        self.runs = kept;
        Ok(())
    }

    /// Called when `advanced` in-order bytes were accepted (`rcv_nxt`
    /// moved): shifts all runs down, discarding anything the in-order
    /// data duplicated, and returns any bytes that are now contiguous
    /// with `rcv_nxt`. The caller appends the returned bytes to the
    /// receive buffer and advances `rcv_nxt` by their length — the
    /// assembler accounts for that internally.
    pub fn advance(&mut self, advanced: usize) -> Vec<u8> {
        // Shift down by `advanced`, trimming duplicated heads.
        let mut shifted = Vec::with_capacity(self.runs.len());
        for mut r in self.runs.drain(..) {
            if r.end() <= advanced {
                // Entirely duplicated by the in-order data: drop.
                self.buffered -= r.data.len();
            } else if r.offset < advanced {
                let cut = advanced - r.offset;
                r.data.drain(..cut);
                self.buffered -= cut;
                r.offset = 0;
                shifted.push(r);
            } else {
                r.offset -= advanced;
                shifted.push(r);
            }
        }
        self.runs = shifted;
        // Release the contiguous front run, if any, and account for the
        // extra rcv_nxt movement its delivery causes. Runs are kept
        // non-adjacent, so at most one release cascades per call.
        if let Some(pos) = self.runs.iter().position(|r| r.offset == 0) {
            let run = self.runs.remove(pos);
            self.buffered -= run.data.len();
            let released = run.data.len();
            for r in &mut self.runs {
                debug_assert!(r.offset > released, "runs are non-adjacent");
                r.offset -= released;
            }
            return run.data;
        }
        Vec::new()
    }

    /// Clears everything (connection reset).
    pub fn clear(&mut self) {
        self.runs.clear();
        self.buffered = 0;
    }
}

fn merge(a: Run, b: Run) -> Run {
    let offset = a.offset.min(b.offset);
    let end = a.end().max(b.end());
    let mut data = vec![0u8; end - offset];
    // Later writes win; write `a` (the new data) first so existing bytes
    // from `b` take precedence where they overlap.
    // analyze::allow(panic-path, reason = "merge buffer spans both segments; offsets are relative to their min, so indices stay in bounds")
    data[a.offset - offset..a.offset - offset + a.data.len()].copy_from_slice(&a.data);
    // analyze::allow(panic-path, reason = "merge buffer spans both segments; offsets are relative to their min, so indices stay in bounds")
    data[b.offset - offset..b.offset - offset + b.data.len()].copy_from_slice(&b.data);
    Run { offset, data }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn gap_fill_releases_contiguous_bytes() {
        let mut a = Assembler::new(4096);
        // Segment 2 arrives before segment 1.
        a.insert(100, b"second").unwrap();
        assert_eq!(a.buffered(), 6);
        assert!(a.advance(0).is_empty(), "gap still open");
        // The gap fills in-order (delivered directly), rcv_nxt advances
        // by 100, and the buffered run becomes contiguous.
        let released = a.advance(100);
        assert_eq!(released, b"second");
        assert!(a.is_empty());
    }

    #[test]
    fn adjacent_and_overlapping_runs_merge() {
        let mut a = Assembler::new(4096);
        a.insert(10, b"bbb").unwrap();
        a.insert(13, b"ccc").unwrap(); // adjacent
        a.insert(8, b"aaaa").unwrap(); // overlaps front
        assert_eq!(a.buffered(), 8); // bytes 8..16
        let released = a.advance(8);
        assert_eq!(released.len(), 8);
        assert_eq!(&released[..2], b"aa");
        assert_eq!(&released[5..], b"ccc");
    }

    #[test]
    fn existing_bytes_win_on_overlap() {
        let mut a = Assembler::new(4096);
        a.insert(5, b"XYZ").unwrap();
        a.insert(4, b"abcd").unwrap(); // overlaps 5..8
        let released = a.advance(4);
        assert_eq!(released, b"aXYZ", "first-arrived bytes kept");
    }

    #[test]
    fn capacity_bound_rejects_atomically() {
        let mut a = Assembler::new(10);
        a.insert(0, b"12345").unwrap();
        assert_eq!(a.insert(100, b"678901"), Err(Error::Exhausted));
        assert_eq!(a.buffered(), 5, "rejected insert left no residue");
        // Re-inserting overlap of existing data costs nothing new.
        a.insert(0, b"12345").unwrap();
        assert_eq!(a.buffered(), 5);
    }

    #[test]
    fn many_disjoint_runs_then_drain() {
        let mut a = Assembler::new(4096);
        for i in (0..MAX_RUNS).rev() {
            a.insert(i * 20 + 10, b"x").unwrap();
        }
        assert_eq!(a.buffered(), MAX_RUNS);
        // Drain them one gap at a time.
        let mut got = 0;
        let mut advanced = 0;
        for i in 0..MAX_RUNS {
            let target = i * 20 + 10;
            got += a.advance(target - advanced).len();
            advanced = target;
            // Each release is the single byte; rcv_nxt then moves past it.
            advanced += 1;
            a.advance(1);
        }
        let _ = got;
        assert!(a.buffered() <= 1);
    }

    #[test]
    fn empty_insert_is_noop() {
        let mut a = Assembler::new(16);
        a.insert(5, b"").unwrap();
        assert!(a.is_empty());
    }

    #[test]
    fn clear_resets() {
        let mut a = Assembler::new(64);
        a.insert(3, b"abc").unwrap();
        a.clear();
        assert!(a.is_empty());
        assert_eq!(a.buffered(), 0);
    }
}
