//! TCP: protocol control blocks, state machine, input fast path and
//! output (see module docs in [`pcb`] and [`machine`]).

pub mod assembler;
pub mod machine;
pub mod pcb;

pub use machine::{TcpStack, TcpConfig, PollResult};
pub use pcb::{Pcb, PcbTable, SocketId, TcpState};
