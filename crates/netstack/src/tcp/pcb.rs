//! Protocol control blocks and the PCB table.
//!
//! The traced BSD stack keeps PCBs behind a single-entry cache: on bulk
//! transfer the cache almost always hits ("the single-entry PCB cache
//! hits", Table 2). [`PcbTable`] reproduces that front-end cache —
//! generalized to Jain's LRU/FIFO/random schemes at 1–64 entries — over
//! open-addressing indexes (`crate::table`) that stay O(probe run) at
//! 10^5–10^6 concurrent connections, and counts cache hits, walk hits,
//! and no-match lookups separately so tests and benches can observe it.

use crate::socket::SockBuf;
use crate::table::{CacheScheme, LookupCache, LookupCacheStats, OaTable};
use crate::tcp::assembler::Assembler;
use crate::wire::ipv4::Ipv4Addr;
use crate::wire::tcp::SeqNumber;
use std::collections::VecDeque;

/// Identifies a connection endpoint to the application.
pub type SocketId = usize;

/// TCP connection states (RFC 793).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum TcpState {
    Closed,
    Listen,
    SynSent,
    SynReceived,
    Established,
    FinWait1,
    FinWait2,
    CloseWait,
    Closing,
    LastAck,
    TimeWait,
}

impl TcpState {
    /// Whether the connection can carry data in this state.
    pub fn can_receive_data(self) -> bool {
        matches!(self, TcpState::Established | TcpState::FinWait1 | TcpState::FinWait2)
    }
}

/// One connection's protocol control block.
#[derive(Debug, Clone)]
pub struct Pcb {
    pub id: SocketId,
    pub state: TcpState,
    pub local_addr: Ipv4Addr,
    pub local_port: u16,
    pub remote_addr: Ipv4Addr,
    pub remote_port: u16,

    /// Initial send sequence number.
    pub iss: SeqNumber,
    /// Oldest unacknowledged sequence number.
    pub snd_una: SeqNumber,
    /// Next sequence number to send.
    pub snd_nxt: SeqNumber,
    /// Peer's advertised window.
    pub snd_wnd: u32,

    /// Initial receive sequence number.
    pub irs: SeqNumber,
    /// Next sequence number expected.
    pub rcv_nxt: SeqNumber,

    /// Negotiated maximum segment size.
    pub mss: u16,

    /// Bytes written by the application but not yet sent. Sent-but-unacked
    /// bytes are kept in `unacked` for retransmission.
    pub send_queue: VecDeque<u8>,
    /// Bytes sent but not yet acknowledged, starting at `snd_una`
    /// (+1 if a SYN is outstanding).
    pub unacked: VecDeque<u8>,
    /// Receive-side socket buffer.
    pub recv_buf: SockBuf,
    /// Out-of-order reassembly buffer for the receive window.
    pub assembler: Assembler,

    /// Number of in-order data segments received since the last ACK we
    /// sent; BSD acks every second segment.
    pub segs_since_ack: u8,
    /// A delayed ACK is pending (flushed by the slow timer).
    pub delack_pending: bool,
    /// An ACK must be sent at the next output opportunity.
    pub ack_now: bool,
    /// When the delayed ACK must be flushed, if one is pending.
    pub delack_deadline: Option<u64>,
    /// The last window we advertised was zero; the next `recv` that opens
    /// the window must send a window update.
    pub sent_zero_window: bool,

    /// Application requested close; FIN still needs to be sent once the
    /// send queue drains.
    pub fin_queued: bool,
    /// Our FIN has been sent (occupies sequence space at the end).
    pub fin_sent: bool,

    /// Retransmission deadline in ms ticks, if any data/FIN/SYN is in
    /// flight.
    pub rtx_deadline: Option<u64>,
    /// Current retransmission timeout in ms (doubles on each timeout).
    pub rto_ms: u64,
    /// Consecutive retransmissions of the oldest outstanding data.
    pub rtx_count: u32,
    /// When a TIME-WAIT PCB may be reclaimed.
    pub time_wait_until: Option<u64>,
    /// Zero-window persist timer: when to probe a closed peer window.
    pub persist_deadline: Option<u64>,
}

impl Pcb {
    /// A fresh closed PCB for the given 4-tuple.
    pub fn new(
        id: SocketId,
        local_addr: Ipv4Addr,
        local_port: u16,
        remote_addr: Ipv4Addr,
        remote_port: u16,
        recv_capacity: usize,
    ) -> Self {
        Pcb {
            id,
            state: TcpState::Closed,
            local_addr,
            local_port,
            remote_addr,
            remote_port,
            iss: SeqNumber(0),
            snd_una: SeqNumber(0),
            snd_nxt: SeqNumber(0),
            snd_wnd: 0,
            irs: SeqNumber(0),
            rcv_nxt: SeqNumber(0),
            mss: 536,
            send_queue: VecDeque::new(),
            unacked: VecDeque::new(),
            recv_buf: SockBuf::new(recv_capacity),
            assembler: Assembler::new(recv_capacity),
            segs_since_ack: 0,
            delack_pending: false,
            ack_now: false,
            delack_deadline: None,
            sent_zero_window: false,
            fin_queued: false,
            fin_sent: false,
            rtx_deadline: None,
            rto_ms: 1000,
            rtx_count: 0,
            time_wait_until: None,
            persist_deadline: None,
        }
    }

    /// The window we advertise: free space in the receive buffer, capped
    /// at 65535 (no window scaling).
    pub fn rcv_wnd(&self) -> u16 {
        self.recv_buf.free().min(65535) as u16
    }

    /// Bytes of payload in flight (excludes SYN/FIN sequence space).
    pub fn in_flight(&self) -> usize {
        self.unacked.len()
    }
}

/// Counters for PCB lookups.
///
/// Cache effectiveness and connection-miss rate are separate questions:
/// a no-match lookup (RST territory) says nothing about the front-end
/// cache, and a Listen wildcard hit deliberately bypasses it. The old
/// two-field form folded both into "misses".
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct PcbCacheStats {
    /// Lookups satisfied by the front-end lookup cache.
    pub cache_hits: u64,
    /// Lookups that missed the cache but found a PCB in the table
    /// (exact match or Listen wildcard).
    pub walk_hits: u64,
    /// Lookups that matched nothing.
    pub no_match: u64,
}

impl PcbCacheStats {
    /// Cache hits over lookups that had a PCB to find. No-match
    /// lookups are excluded: the cache cannot hit on them.
    pub fn cache_hit_rate(&self) -> f64 {
        let denom = self.cache_hits + self.walk_hits;
        if denom == 0 {
            0.0
        } else {
            self.cache_hits as f64 / denom as f64
        }
    }
}

/// The connection 4-tuple `(local, lport, remote, rport)` used to key
/// the open-addressing index.
type ConnKey = (Ipv4Addr, u16, Ipv4Addr, u16);

fn key_of(p: &Pcb) -> ConnKey {
    (p.local_addr, p.local_port, p.remote_addr, p.remote_port)
}

/// The PCB table.
///
/// PCBs live in a dense `Vec` (timers iterate it in insertion order,
/// exactly like the old list) behind two open-addressing indexes — by
/// 4-tuple and by socket id — so demultiplex and socket ops are O(probe
/// run) instead of O(connections). In front sits a pluggable
/// [`LookupCache`]; the default is a single-entry LRU, which is exactly
/// the traced BSD structure ("the single-entry PCB cache hits",
/// Table 2). Benches scale it to Jain's 1–64-entry schemes.
#[derive(Debug)]
pub struct PcbTable {
    pcbs: Vec<Pcb>,
    /// 4-tuple -> index into `pcbs`.
    by_tuple: OaTable<ConnKey, usize>,
    /// Socket id -> index into `pcbs`.
    by_id: OaTable<SocketId, usize>,
    /// Front-end lookup cache (value = index into `pcbs`).
    cache: LookupCache<ConnKey, usize>,
    stats: PcbCacheStats,
    next_id: SocketId,
}

impl Default for PcbTable {
    fn default() -> Self {
        Self::new()
    }
}

impl PcbTable {
    /// An empty table with the BSD-style single-entry LRU cache.
    pub fn new() -> Self {
        Self::with_lookup_cache(CacheScheme::Lru, 1, 0)
    }

    /// An empty table with a configurable front-end cache (Jain's
    /// scheme × size grid; `seed` drives random eviction only).
    pub fn with_lookup_cache(scheme: CacheScheme, slots: usize, seed: u64) -> Self {
        PcbTable {
            pcbs: Vec::new(),
            by_tuple: OaTable::new(),
            by_id: OaTable::new(),
            cache: LookupCache::new(scheme, slots, seed),
            stats: PcbCacheStats::default(),
            next_id: 0,
        }
    }

    /// Allocates a socket id.
    pub fn alloc_id(&mut self) -> SocketId {
        let id = self.next_id;
        self.next_id += 1;
        id
    }

    /// Inserts a PCB.
    pub fn insert(&mut self, pcb: Pcb) {
        let idx = self.pcbs.len();
        self.by_tuple.insert(key_of(&pcb), idx);
        self.by_id.insert(pcb.id, idx);
        self.pcbs.push(pcb);
    }

    /// Removes the PCB for `id`, if present.
    pub fn remove(&mut self, id: SocketId) -> Option<Pcb> {
        let idx = self.by_id.remove(&id)?;
        // The cache holds dense indexes; a swap_remove moves the tail
        // entry, so drop the whole cache (the old one-entry cache did
        // the same on every remove).
        self.cache.clear();
        let removed = self.pcbs.swap_remove(idx);
        self.by_tuple.remove(&key_of(&removed));
        if let Some(moved) = self.pcbs.get(idx) {
            // The former tail now lives at `idx`: re-point its keys.
            let (mk, mid) = (key_of(moved), moved.id);
            self.by_tuple.insert(mk, idx);
            self.by_id.insert(mid, idx);
        }
        Some(removed)
    }

    /// Full-match lookup for an incoming segment
    /// `(src, sport) -> (dst, dport)`: front-end cache, then the
    /// 4-tuple index (exact match), then the two listener keys —
    /// `(local, port, *, 0)` and `(*, port, *, 0)` — wildcarding the
    /// remote and then also the local address.
    pub fn lookup_mut(
        &mut self,
        local_addr: Ipv4Addr,
        local_port: u16,
        remote_addr: Ipv4Addr,
        remote_port: u16,
    ) -> Option<&mut Pcb> {
        let key = (local_addr, local_port, remote_addr, remote_port);
        if let Some(idx) = self.cache.get(&key) {
            // Indexes cached across inserts stay valid (inserts never
            // move entries) and removes clear the cache, so a cached
            // index always points at its key's PCB.
            if self.pcbs.get(idx).map(key_of) == Some(key) {
                self.stats.cache_hits += 1;
                return self.pcbs.get_mut(idx);
            }
            self.cache.invalidate(&key);
        }
        if let Some(&idx) = self.by_tuple.get(&key) {
            self.stats.walk_hits += 1;
            self.cache.insert(key, idx);
            return self.pcbs.get_mut(idx);
        }
        // Listening socket: wildcard remote, then wildcard local too.
        // Listen sockets are not cached: the cache is for the
        // established fast path.
        let listener_keys = [
            (local_addr, local_port, Ipv4Addr::UNSPECIFIED, 0u16),
            (Ipv4Addr::UNSPECIFIED, local_port, Ipv4Addr::UNSPECIFIED, 0u16),
        ];
        for lkey in listener_keys {
            if let Some(&idx) = self.by_tuple.get(&lkey) {
                if self.pcbs.get(idx).map(|p| p.state) == Some(TcpState::Listen) {
                    self.stats.walk_hits += 1;
                    return self.pcbs.get_mut(idx);
                }
            }
        }
        self.stats.no_match += 1;
        None
    }

    /// Lookup by socket id.
    pub fn get_mut(&mut self, id: SocketId) -> Option<&mut Pcb> {
        // analyze::allow(charge-coverage, reason = "name-collision edge (obs Histogram::record resolves to get_mut); PCB probe costs are charged via the bench TableCharge path")
        let idx = *self.by_id.get(&id)?;
        self.pcbs.get_mut(idx)
    }

    /// Lookup by socket id (shared).
    pub fn get(&self, id: SocketId) -> Option<&Pcb> {
        // analyze::allow(charge-coverage, reason = "name-collision edge (untyped .get in run_core); PCB probe costs are charged via the bench TableCharge path")
        let idx = *self.by_id.get(&id)?;
        self.pcbs.get(idx)
    }

    /// Iterates all PCBs mutably (for timers).
    pub fn iter_mut(&mut self) -> impl Iterator<Item = &mut Pcb> {
        self.pcbs.iter_mut()
    }

    /// Iterates all PCBs.
    pub fn iter(&self) -> impl Iterator<Item = &Pcb> {
        self.pcbs.iter()
    }

    /// Lookup counters.
    pub fn cache_stats(&self) -> PcbCacheStats {
        self.stats
    }

    /// Front-end cache counters (hit/miss as the cache itself saw them).
    pub fn lookup_cache_stats(&self) -> LookupCacheStats {
        self.cache.stats()
    }

    /// Slot indices probed by the most recent tuple-index operation,
    /// for charging the walk as data references.
    pub fn last_probes(&self) -> &[u32] {
        self.by_tuple.last_probes()
    }

    /// Number of PCBs in the table.
    pub fn len(&self) -> usize {
        self.pcbs.len()
    }

    /// True when no PCBs exist.
    pub fn is_empty(&self) -> bool {
        self.pcbs.is_empty()
    }

    /// Whether a local port is already bound.
    pub fn port_in_use(&self, port: u16) -> bool {
        self.pcbs.iter().any(|p| p.local_port == port)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    const A: Ipv4Addr = Ipv4Addr([10, 0, 0, 1]);
    const B: Ipv4Addr = Ipv4Addr([10, 0, 0, 2]);

    fn established(id: SocketId, lport: u16, rport: u16) -> Pcb {
        let mut p = Pcb::new(id, A, lport, B, rport, 8192);
        p.state = TcpState::Established;
        p
    }

    #[test]
    fn single_entry_cache_hits_on_repeat_lookup() {
        let mut t = PcbTable::new();
        t.insert(established(0, 80, 5000));
        t.insert(established(1, 80, 5001));
        assert!(t.lookup_mut(A, 80, B, 5001).is_some());
        assert_eq!(
            t.cache_stats(),
            PcbCacheStats { cache_hits: 0, walk_hits: 1, no_match: 0 }
        );
        for _ in 0..5 {
            assert!(t.lookup_mut(A, 80, B, 5001).is_some());
        }
        assert_eq!(
            t.cache_stats(),
            PcbCacheStats { cache_hits: 5, walk_hits: 1, no_match: 0 }
        );
        // A different connection misses and replaces the cache entry.
        assert_eq!(t.lookup_mut(A, 80, B, 5000).unwrap().id, 0);
        assert_eq!(t.cache_stats().walk_hits, 2);
        assert!((t.cache_stats().cache_hit_rate() - 5.0 / 7.0).abs() < 1e-12);
    }

    /// The satellite bugfix: a no-match lookup and a Listen wildcard hit
    /// are *not* cache misses — the old counters conflated cache
    /// effectiveness with the connection-miss rate.
    #[test]
    fn no_match_and_listener_hits_are_not_cache_misses() {
        let mut t = PcbTable::new();
        let mut listener = Pcb::new(0, A, 80, Ipv4Addr::UNSPECIFIED, 0, 8192);
        listener.state = TcpState::Listen;
        t.insert(listener);
        // SYN to the listener: found by walk, never cached.
        assert!(t.lookup_mut(A, 80, B, 6000).is_some());
        assert!(t.lookup_mut(A, 80, B, 6000).is_some());
        // Stray segment: nothing matches.
        assert!(t.lookup_mut(A, 81, B, 6000).is_none());
        assert_eq!(
            t.cache_stats(),
            PcbCacheStats { cache_hits: 0, walk_hits: 2, no_match: 1 }
        );
    }

    #[test]
    fn larger_caches_and_other_schemes_are_pluggable() {
        for scheme in [CacheScheme::Lru, CacheScheme::Fifo, CacheScheme::Random] {
            let mut t = PcbTable::with_lookup_cache(scheme, 4, 7);
            for i in 0..4u16 {
                t.insert(established(i as SocketId, 80, 5000 + i));
            }
            // Warm all four, then repeat: every repeat hits the cache.
            for i in 0..4u16 {
                assert!(t.lookup_mut(A, 80, B, 5000 + i).is_some());
            }
            for i in 0..4u16 {
                assert_eq!(t.lookup_mut(A, 80, B, 5000 + i).unwrap().id, i as SocketId);
            }
            assert_eq!(t.cache_stats().cache_hits, 4, "{scheme:?}");
            assert_eq!(t.lookup_cache_stats().hits, 4);
        }
    }

    /// The tentpole scale target: lookups stay correct (and short) with
    /// a large population and churn.
    #[test]
    fn large_population_lookup_and_churn() {
        let mut t = PcbTable::new();
        let n: u32 = 20_000;
        for i in 0..n {
            let mut p = Pcb::new(
                i as SocketId,
                A,
                1024 + (i % 50_000) as u16,
                B,
                (i / 50_000) as u16 + 1,
                64,
            );
            p.state = TcpState::Established;
            t.insert(p);
        }
        assert_eq!(t.len(), n as usize);
        // Every connection is reachable by tuple and by id.
        for i in (0..n).step_by(997) {
            let lport = 1024 + (i % 50_000) as u16;
            let rport = (i / 50_000) as u16 + 1;
            assert_eq!(t.lookup_mut(A, lport, B, rport).unwrap().id, i as SocketId);
            assert_eq!(t.get(i as SocketId).unwrap().local_port, lport);
        }
        // Churn a third out; the rest stay reachable.
        for i in (0..n).step_by(3) {
            assert!(t.remove(i as SocketId).is_some());
        }
        for i in (0..n).step_by(991) {
            let found = t.get(i as SocketId).is_some();
            assert_eq!(found, i % 3 != 0, "id {i}");
        }
    }

    /// swap_remove moves the tail PCB; both indexes must follow it.
    #[test]
    fn remove_repoints_the_moved_tail_entry() {
        let mut t = PcbTable::new();
        t.insert(established(0, 80, 5000));
        t.insert(established(1, 80, 5001));
        t.insert(established(2, 80, 5002));
        assert!(t.remove(0).is_some());
        // PCB 2 was the tail and now occupies slot 0.
        assert_eq!(t.lookup_mut(A, 80, B, 5002).unwrap().id, 2);
        assert_eq!(t.get_mut(2).unwrap().remote_port, 5002);
        assert_eq!(t.get(1).unwrap().remote_port, 5001);
        assert!(t.lookup_mut(A, 80, B, 5000).is_none());
    }

    #[test]
    fn exact_match_beats_listener() {
        let mut t = PcbTable::new();
        let mut listener = Pcb::new(2, A, 80, Ipv4Addr::UNSPECIFIED, 0, 8192);
        listener.state = TcpState::Listen;
        t.insert(listener);
        t.insert(established(3, 80, 7000));
        assert_eq!(t.lookup_mut(A, 80, B, 7000).unwrap().id, 3);
        // Unknown remote port falls back to the listener.
        assert_eq!(t.lookup_mut(A, 80, B, 7001).unwrap().id, 2);
    }

    #[test]
    fn wildcard_local_listener_matches_any_local_addr() {
        let mut t = PcbTable::new();
        let mut listener = Pcb::new(0, Ipv4Addr::UNSPECIFIED, 22, Ipv4Addr::UNSPECIFIED, 0, 8192);
        listener.state = TcpState::Listen;
        t.insert(listener);
        assert!(t.lookup_mut(A, 22, B, 9999).is_some());
        assert!(t.lookup_mut(B, 22, A, 9999).is_some());
        assert!(t.lookup_mut(A, 23, B, 9999).is_none());
    }

    #[test]
    fn remove_invalidates_cache() {
        let mut t = PcbTable::new();
        t.insert(established(0, 80, 5000));
        assert!(t.lookup_mut(A, 80, B, 5000).is_some());
        assert!(t.remove(0).is_some());
        assert!(t.lookup_mut(A, 80, B, 5000).is_none());
        assert!(t.remove(0).is_none());
    }

    #[test]
    fn rcv_wnd_tracks_buffer_space() {
        let mut p = established(0, 1, 2);
        assert_eq!(p.rcv_wnd(), 8192);
        p.recv_buf.append(&[0u8; 1000]).unwrap();
        assert_eq!(p.rcv_wnd(), 7192);
    }

    #[test]
    fn port_in_use() {
        let mut t = PcbTable::new();
        t.insert(established(0, 80, 5000));
        assert!(t.port_in_use(80));
        assert!(!t.port_in_use(81));
    }
}
