//! Protocol control blocks and the PCB table.
//!
//! The traced BSD stack keeps PCBs on a list with a single-entry cache in
//! front: on bulk transfer the cache almost always hits ("the single-entry
//! PCB cache hits", Table 2). [`PcbTable`] reproduces that structure and
//! counts cache hits and misses so tests and benches can observe it.

use crate::socket::SockBuf;
use crate::tcp::assembler::Assembler;
use crate::wire::ipv4::Ipv4Addr;
use crate::wire::tcp::SeqNumber;
use std::collections::VecDeque;

/// Identifies a connection endpoint to the application.
pub type SocketId = usize;

/// TCP connection states (RFC 793).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum TcpState {
    Closed,
    Listen,
    SynSent,
    SynReceived,
    Established,
    FinWait1,
    FinWait2,
    CloseWait,
    Closing,
    LastAck,
    TimeWait,
}

impl TcpState {
    /// Whether the connection can carry data in this state.
    pub fn can_receive_data(self) -> bool {
        matches!(self, TcpState::Established | TcpState::FinWait1 | TcpState::FinWait2)
    }
}

/// One connection's protocol control block.
#[derive(Debug, Clone)]
pub struct Pcb {
    pub id: SocketId,
    pub state: TcpState,
    pub local_addr: Ipv4Addr,
    pub local_port: u16,
    pub remote_addr: Ipv4Addr,
    pub remote_port: u16,

    /// Initial send sequence number.
    pub iss: SeqNumber,
    /// Oldest unacknowledged sequence number.
    pub snd_una: SeqNumber,
    /// Next sequence number to send.
    pub snd_nxt: SeqNumber,
    /// Peer's advertised window.
    pub snd_wnd: u32,

    /// Initial receive sequence number.
    pub irs: SeqNumber,
    /// Next sequence number expected.
    pub rcv_nxt: SeqNumber,

    /// Negotiated maximum segment size.
    pub mss: u16,

    /// Bytes written by the application but not yet sent. Sent-but-unacked
    /// bytes are kept in `unacked` for retransmission.
    pub send_queue: VecDeque<u8>,
    /// Bytes sent but not yet acknowledged, starting at `snd_una`
    /// (+1 if a SYN is outstanding).
    pub unacked: VecDeque<u8>,
    /// Receive-side socket buffer.
    pub recv_buf: SockBuf,
    /// Out-of-order reassembly buffer for the receive window.
    pub assembler: Assembler,

    /// Number of in-order data segments received since the last ACK we
    /// sent; BSD acks every second segment.
    pub segs_since_ack: u8,
    /// A delayed ACK is pending (flushed by the slow timer).
    pub delack_pending: bool,
    /// An ACK must be sent at the next output opportunity.
    pub ack_now: bool,
    /// When the delayed ACK must be flushed, if one is pending.
    pub delack_deadline: Option<u64>,
    /// The last window we advertised was zero; the next `recv` that opens
    /// the window must send a window update.
    pub sent_zero_window: bool,

    /// Application requested close; FIN still needs to be sent once the
    /// send queue drains.
    pub fin_queued: bool,
    /// Our FIN has been sent (occupies sequence space at the end).
    pub fin_sent: bool,

    /// Retransmission deadline in ms ticks, if any data/FIN/SYN is in
    /// flight.
    pub rtx_deadline: Option<u64>,
    /// Current retransmission timeout in ms (doubles on each timeout).
    pub rto_ms: u64,
    /// Consecutive retransmissions of the oldest outstanding data.
    pub rtx_count: u32,
    /// When a TIME-WAIT PCB may be reclaimed.
    pub time_wait_until: Option<u64>,
    /// Zero-window persist timer: when to probe a closed peer window.
    pub persist_deadline: Option<u64>,
}

impl Pcb {
    /// A fresh closed PCB for the given 4-tuple.
    pub fn new(
        id: SocketId,
        local_addr: Ipv4Addr,
        local_port: u16,
        remote_addr: Ipv4Addr,
        remote_port: u16,
        recv_capacity: usize,
    ) -> Self {
        Pcb {
            id,
            state: TcpState::Closed,
            local_addr,
            local_port,
            remote_addr,
            remote_port,
            iss: SeqNumber(0),
            snd_una: SeqNumber(0),
            snd_nxt: SeqNumber(0),
            snd_wnd: 0,
            irs: SeqNumber(0),
            rcv_nxt: SeqNumber(0),
            mss: 536,
            send_queue: VecDeque::new(),
            unacked: VecDeque::new(),
            recv_buf: SockBuf::new(recv_capacity),
            assembler: Assembler::new(recv_capacity),
            segs_since_ack: 0,
            delack_pending: false,
            ack_now: false,
            delack_deadline: None,
            sent_zero_window: false,
            fin_queued: false,
            fin_sent: false,
            rtx_deadline: None,
            rto_ms: 1000,
            rtx_count: 0,
            time_wait_until: None,
            persist_deadline: None,
        }
    }

    /// The window we advertise: free space in the receive buffer, capped
    /// at 65535 (no window scaling).
    pub fn rcv_wnd(&self) -> u16 {
        self.recv_buf.free().min(65535) as u16
    }

    /// Bytes of payload in flight (excludes SYN/FIN sequence space).
    pub fn in_flight(&self) -> usize {
        self.unacked.len()
    }
}

/// Counters for PCB lookups.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct PcbCacheStats {
    /// Lookups satisfied by the single-entry cache.
    pub hits: u64,
    /// Lookups that had to walk the PCB list.
    pub misses: u64,
}

/// The PCB table: a list plus a single-entry lookup cache.
#[derive(Debug, Default)]
pub struct PcbTable {
    pcbs: Vec<Pcb>,
    /// Index of the most recently matched PCB (the one-entry cache).
    last: Option<usize>,
    stats: PcbCacheStats,
    next_id: SocketId,
}

impl PcbTable {
    /// An empty table.
    pub fn new() -> Self {
        Self::default()
    }

    /// Allocates a socket id.
    pub fn alloc_id(&mut self) -> SocketId {
        let id = self.next_id;
        self.next_id += 1;
        id
    }

    /// Inserts a PCB.
    pub fn insert(&mut self, pcb: Pcb) {
        self.pcbs.push(pcb);
    }

    /// Removes the PCB for `id`, if present.
    pub fn remove(&mut self, id: SocketId) -> Option<Pcb> {
        let idx = self.pcbs.iter().position(|p| p.id == id)?;
        self.last = None;
        Some(self.pcbs.swap_remove(idx))
    }

    /// Full-match lookup for an incoming segment
    /// `(src, sport) -> (dst, dport)`, consulting the one-entry cache
    /// first, then falling back to a list walk preferring exact matches
    /// over listening sockets (wildcard remote).
    pub fn lookup_mut(
        &mut self,
        local_addr: Ipv4Addr,
        local_port: u16,
        remote_addr: Ipv4Addr,
        remote_port: u16,
    ) -> Option<&mut Pcb> {
        if let Some(i) = self.last {
            if let Some(p) = self.pcbs.get(i) {
                if p.local_port == local_port
                    && p.remote_port == remote_port
                    && p.local_addr == local_addr
                    && p.remote_addr == remote_addr
                {
                    self.stats.hits += 1;
                    return self.pcbs.get_mut(i);
                }
            }
        }
        self.stats.misses += 1;
        // Exact match first.
        if let Some(i) = self.pcbs.iter().position(|p| {
            p.local_port == local_port
                && p.remote_port == remote_port
                && p.local_addr == local_addr
                && p.remote_addr == remote_addr
        }) {
            self.last = Some(i);
            return self.pcbs.get_mut(i);
        }
        // Listening socket: wildcard remote.
        if let Some(i) = self.pcbs.iter().position(|p| {
            p.state == TcpState::Listen
                && p.local_port == local_port
                && (p.local_addr == local_addr || p.local_addr == Ipv4Addr::UNSPECIFIED)
        }) {
            // Listen sockets are not cached: the cache is for the
            // established fast path.
            return self.pcbs.get_mut(i);
        }
        None
    }

    /// Lookup by socket id.
    pub fn get_mut(&mut self, id: SocketId) -> Option<&mut Pcb> {
        self.pcbs.iter_mut().find(|p| p.id == id)
    }

    /// Lookup by socket id (shared).
    pub fn get(&self, id: SocketId) -> Option<&Pcb> {
        self.pcbs.iter().find(|p| p.id == id)
    }

    /// Iterates all PCBs mutably (for timers).
    pub fn iter_mut(&mut self) -> impl Iterator<Item = &mut Pcb> {
        self.pcbs.iter_mut()
    }

    /// Iterates all PCBs.
    pub fn iter(&self) -> impl Iterator<Item = &Pcb> {
        self.pcbs.iter()
    }

    /// One-entry cache statistics.
    pub fn cache_stats(&self) -> PcbCacheStats {
        self.stats
    }

    /// Whether a local port is already bound.
    pub fn port_in_use(&self, port: u16) -> bool {
        self.pcbs.iter().any(|p| p.local_port == port)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    const A: Ipv4Addr = Ipv4Addr([10, 0, 0, 1]);
    const B: Ipv4Addr = Ipv4Addr([10, 0, 0, 2]);

    fn established(id: SocketId, lport: u16, rport: u16) -> Pcb {
        let mut p = Pcb::new(id, A, lport, B, rport, 8192);
        p.state = TcpState::Established;
        p
    }

    #[test]
    fn single_entry_cache_hits_on_repeat_lookup() {
        let mut t = PcbTable::new();
        t.insert(established(0, 80, 5000));
        t.insert(established(1, 80, 5001));
        assert!(t.lookup_mut(A, 80, B, 5001).is_some());
        assert_eq!(t.cache_stats(), PcbCacheStats { hits: 0, misses: 1 });
        for _ in 0..5 {
            assert!(t.lookup_mut(A, 80, B, 5001).is_some());
        }
        assert_eq!(t.cache_stats(), PcbCacheStats { hits: 5, misses: 1 });
        // A different connection misses and replaces the cache entry.
        assert_eq!(t.lookup_mut(A, 80, B, 5000).unwrap().id, 0);
        assert_eq!(t.cache_stats().misses, 2);
    }

    #[test]
    fn exact_match_beats_listener() {
        let mut t = PcbTable::new();
        let mut listener = Pcb::new(2, A, 80, Ipv4Addr::UNSPECIFIED, 0, 8192);
        listener.state = TcpState::Listen;
        t.insert(listener);
        t.insert(established(3, 80, 7000));
        assert_eq!(t.lookup_mut(A, 80, B, 7000).unwrap().id, 3);
        // Unknown remote port falls back to the listener.
        assert_eq!(t.lookup_mut(A, 80, B, 7001).unwrap().id, 2);
    }

    #[test]
    fn wildcard_local_listener_matches_any_local_addr() {
        let mut t = PcbTable::new();
        let mut listener = Pcb::new(0, Ipv4Addr::UNSPECIFIED, 22, Ipv4Addr::UNSPECIFIED, 0, 8192);
        listener.state = TcpState::Listen;
        t.insert(listener);
        assert!(t.lookup_mut(A, 22, B, 9999).is_some());
        assert!(t.lookup_mut(B, 22, A, 9999).is_some());
        assert!(t.lookup_mut(A, 23, B, 9999).is_none());
    }

    #[test]
    fn remove_invalidates_cache() {
        let mut t = PcbTable::new();
        t.insert(established(0, 80, 5000));
        assert!(t.lookup_mut(A, 80, B, 5000).is_some());
        assert!(t.remove(0).is_some());
        assert!(t.lookup_mut(A, 80, B, 5000).is_none());
        assert!(t.remove(0).is_none());
    }

    #[test]
    fn rcv_wnd_tracks_buffer_space() {
        let mut p = established(0, 1, 2);
        assert_eq!(p.rcv_wnd(), 8192);
        p.recv_buf.append(&[0u8; 1000]).unwrap();
        assert_eq!(p.rcv_wnd(), 7192);
    }

    #[test]
    fn port_in_use() {
        let mut t = PcbTable::new();
        t.insert(established(0, 80, 5000));
        assert!(t.port_in_use(80));
        assert!(!t.port_in_use(81));
    }
}
