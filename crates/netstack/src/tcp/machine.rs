//! The TCP state machine: input processing (with BSD-style header
//! prediction), output generation, delayed ACKs and timers.
//!
//! The receive path mirrors the one the paper traced (Table 2): segment
//! validation, PCB lookup through the single-entry cache, the fast path
//! for in-order established-state segments, socket-buffer append, and an
//! ACK for every second data segment. Out-of-order segments are buffered
//! in a bounded reassembly buffer (`tcp::assembler`) and released when the
//! gap fills; a duplicate ACK is sent immediately either way. Deliberate
//! simplifications, in the spirit of smoltcp's documented omissions:
//! no congestion control, no window scaling, and no urgent data.

use crate::error::{Error, Result};
use crate::tcp::pcb::{Pcb, PcbCacheStats, PcbTable, SocketId, TcpState};
use crate::wire::ipv4::Ipv4Addr;
use crate::wire::tcp::{SeqNumber, TcpFlags, TcpRepr};

/// Milliseconds since an arbitrary epoch; the stack never reads a clock,
/// callers pass time in.
pub type Instant = u64;

/// Tunable protocol parameters.
#[derive(Debug, Clone, Copy)]
pub struct TcpConfig {
    /// Receive-buffer capacity per connection.
    pub recv_buf: usize,
    /// Our MSS, advertised on SYN segments.
    pub mss: u16,
    /// ACK every n-th in-order data segment (BSD uses 2).
    pub ack_every: u8,
    /// Delayed-ACK flush timeout.
    pub delack_ms: u64,
    /// Initial retransmission timeout.
    pub initial_rto_ms: u64,
    /// RTO ceiling.
    pub max_rto_ms: u64,
    /// Retransmissions before the connection is dropped.
    pub max_retries: u32,
    /// TIME-WAIT duration (smoltcp uses a fixed 10 s).
    pub time_wait_ms: u64,
    /// Zero-window probe interval (the persist timer).
    pub persist_ms: u64,
}

impl Default for TcpConfig {
    fn default() -> Self {
        TcpConfig {
            recv_buf: 8192,
            mss: 536,
            ack_every: 2,
            delack_ms: 200,
            initial_rto_ms: 1000,
            max_rto_ms: 64_000,
            max_retries: 6,
            time_wait_ms: 10_000,
            persist_ms: 5_000,
        }
    }
}

/// A TCP segment ready for the IP layer.
#[derive(Debug, Clone)]
pub struct OutSegment {
    pub src: Ipv4Addr,
    pub dst: Ipv4Addr,
    /// Serialized TCP header + payload (checksummed).
    pub bytes: Vec<u8>,
}

/// Connection events surfaced to the application.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum TcpEvent {
    /// Active open completed.
    Connected,
    /// A listener spawned this connection and it reached ESTABLISHED.
    Accepted { listener: SocketId },
    /// New data is available to `recv`.
    DataAvailable,
    /// The peer sent FIN; reads will drain and then return 0.
    PeerClosed,
    /// The connection was reset or timed out.
    Reset,
    /// The connection fully closed and its PCB is gone.
    Closed,
}

/// Aggregate protocol counters.
#[derive(Debug, Clone, Copy, Default)]
pub struct TcpStats {
    pub segs_in: u64,
    pub segs_out: u64,
    pub data_segs_in: u64,
    /// Segments handled by the header-prediction fast path.
    pub fast_path: u64,
    /// Segments that took the slow path.
    pub slow_path: u64,
    pub acks_sent: u64,
    pub delayed_acks: u64,
    pub dup_acks_sent: u64,
    pub retransmits: u64,
    pub rsts_out: u64,
    pub drops: u64,
    /// Out-of-order segments buffered for reassembly.
    pub ooo_buffered: u64,
    /// Zero-window probes sent by the persist timer.
    pub window_probes: u64,
}

/// Result of a `poll` call: whether any timer fired.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct PollResult {
    pub retransmissions: u32,
    pub delayed_acks_flushed: u32,
    pub connections_reaped: u32,
}

/// A complete TCP endpoint: many connections over one IP address space.
#[derive(Debug)]
pub struct TcpStack {
    cfg: TcpConfig,
    pcbs: PcbTable,
    out: Vec<OutSegment>,
    events: Vec<(SocketId, TcpEvent)>,
    stats: TcpStats,
    isn_clock: u32,
    ephemeral: u16,
    /// Connections spawned by a listener that have not yet reached
    /// ESTABLISHED, paired with the listener that spawned them.
    pending_accepts: Vec<(SocketId, SocketId)>,
}

impl Default for TcpStack {
    fn default() -> Self {
        Self::new(TcpConfig::default())
    }
}

impl TcpStack {
    /// A stack with the given configuration.
    pub fn new(cfg: TcpConfig) -> Self {
        TcpStack {
            cfg,
            pcbs: PcbTable::new(),
            out: Vec::new(),
            events: Vec::new(),
            stats: TcpStats::default(),
            isn_clock: 0x1d00_0000,
            ephemeral: 49152,
            pending_accepts: Vec::new(),
        }
    }

    /// The stack's configuration.
    pub fn config(&self) -> &TcpConfig {
        &self.cfg
    }

    /// Protocol counters.
    pub fn stats(&self) -> &TcpStats {
        &self.stats
    }

    /// PCB-cache counters (Table 2's "single-entry PCB cache").
    pub fn pcb_cache_stats(&self) -> PcbCacheStats {
        self.pcbs.cache_stats()
    }

    /// Current state of a socket; `Closed` if the PCB is gone.
    pub fn state(&self, id: SocketId) -> TcpState {
        self.pcbs.get(id).map(|p| p.state).unwrap_or(TcpState::Closed)
    }

    /// Drains queued outbound segments.
    pub fn take_output(&mut self) -> Vec<OutSegment> {
        std::mem::take(&mut self.out)
    }

    /// Drains pending application events.
    pub fn take_events(&mut self) -> Vec<(SocketId, TcpEvent)> {
        std::mem::take(&mut self.events)
    }

    fn next_isn(&mut self) -> SeqNumber {
        self.isn_clock = self.isn_clock.wrapping_add(64_000);
        SeqNumber(self.isn_clock)
    }

    /// Allocates an unused ephemeral port.
    pub fn ephemeral_port(&mut self) -> u16 {
        loop {
            let p = self.ephemeral;
            self.ephemeral = if self.ephemeral == u16::MAX {
                49152
            } else {
                self.ephemeral + 1
            };
            if !self.pcbs.port_in_use(p) {
                return p;
            }
        }
    }

    /// Opens a passive (listening) socket.
    pub fn listen(&mut self, local_addr: Ipv4Addr, port: u16) -> Result<SocketId> {
        if self.pcbs.port_in_use(port) {
            return Err(Error::Exhausted);
        }
        let id = self.pcbs.alloc_id();
        let mut pcb = Pcb::new(
            id,
            local_addr,
            port,
            Ipv4Addr::UNSPECIFIED,
            0,
            self.cfg.recv_buf,
        );
        pcb.state = TcpState::Listen;
        self.pcbs.insert(pcb);
        Ok(id)
    }

    /// Starts an active open; the SYN is queued immediately.
    pub fn connect(
        &mut self,
        local_addr: Ipv4Addr,
        remote_addr: Ipv4Addr,
        remote_port: u16,
        now: Instant,
    ) -> Result<SocketId> {
        let local_port = self.ephemeral_port();
        let id = self.pcbs.alloc_id();
        let iss = self.next_isn();
        let mut pcb = Pcb::new(
            id,
            local_addr,
            local_port,
            remote_addr,
            remote_port,
            self.cfg.recv_buf,
        );
        pcb.state = TcpState::SynSent;
        pcb.iss = iss;
        pcb.snd_una = iss;
        pcb.snd_nxt = iss.add(1);
        pcb.mss = self.cfg.mss;
        pcb.rto_ms = self.cfg.initial_rto_ms;
        pcb.rtx_deadline = Some(now + pcb.rto_ms);
        self.emit_syn(&pcb, false);
        self.pcbs.insert(pcb);
        Ok(id)
    }

    /// Queues application data for transmission.
    pub fn send(&mut self, id: SocketId, data: &[u8], now: Instant) -> Result<usize> {
        let pcb = self.pcbs.get_mut(id).ok_or(Error::NoRoute)?;
        match pcb.state {
            TcpState::Established | TcpState::CloseWait | TcpState::SynSent | TcpState::SynReceived => {}
            _ => return Err(Error::InvalidState),
        }
        if pcb.fin_queued {
            return Err(Error::InvalidState);
        }
        pcb.send_queue.extend(data);
        self.output(id, now);
        Ok(data.len())
    }

    /// Reads received data; returns 0 when no data is buffered (check
    /// [`TcpEvent::PeerClosed`] to distinguish EOF).
    pub fn recv(&mut self, id: SocketId, dst: &mut [u8]) -> Result<usize> {
        let pcb = self.pcbs.get_mut(id).ok_or(Error::NoRoute)?;
        let n = pcb.recv_buf.read(dst);
        if pcb.sent_zero_window && pcb.rcv_wnd() > 0 {
            // Reopen the window explicitly so the sender doesn't stall.
            pcb.ack_now = true;
            let id = pcb.id;
            self.output(id, 0);
        }
        Ok(n)
    }

    /// Bytes currently readable.
    pub fn recv_available(&self, id: SocketId) -> usize {
        self.pcbs.get(id).map(|p| p.recv_buf.len()).unwrap_or(0)
    }

    /// Initiates a graceful close (FIN after queued data drains).
    pub fn close(&mut self, id: SocketId, now: Instant) -> Result<()> {
        let pcb = self.pcbs.get_mut(id).ok_or(Error::NoRoute)?;
        match pcb.state {
            TcpState::Listen | TcpState::SynSent => {
                self.pcbs.remove(id);
                self.events.push((id, TcpEvent::Closed));
                return Ok(());
            }
            TcpState::Established | TcpState::CloseWait | TcpState::SynReceived => {
                pcb.fin_queued = true;
            }
            _ => return Err(Error::InvalidState),
        }
        self.output(id, now);
        Ok(())
    }

    /// Aborts a connection with a RST.
    pub fn abort(&mut self, id: SocketId, _now: Instant) -> Result<()> {
        let pcb = self.pcbs.remove(id).ok_or(Error::NoRoute)?;
        if matches!(
            pcb.state,
            TcpState::SynReceived
                | TcpState::Established
                | TcpState::FinWait1
                | TcpState::FinWait2
                | TcpState::CloseWait
        ) {
            let repr = TcpRepr {
                src_port: pcb.local_port,
                dst_port: pcb.remote_port,
                seq: pcb.snd_nxt,
                ack: pcb.rcv_nxt,
                flags: TcpFlags::RST_ACK,
                window: 0,
                mss: None,
            };
            self.push_segment(pcb.local_addr, pcb.remote_addr, repr, &[]);
            self.stats.rsts_out += 1;
        }
        self.events.push((id, TcpEvent::Closed));
        Ok(())
    }

    // ------------------------------------------------------------------
    // Input path
    // ------------------------------------------------------------------

    /// Processes one incoming segment (`tcp_input`). `bytes` is the TCP
    /// header + payload; addresses come from the IP layer for checksum and
    /// demultiplexing.
    pub fn input(
        &mut self,
        src_addr: Ipv4Addr,
        dst_addr: Ipv4Addr,
        bytes: &[u8],
        now: Instant,
    ) -> Result<()> {
        self.stats.segs_in += 1;
        let (repr, data_off) = TcpRepr::parse(bytes, src_addr, dst_addr)?;
        // analyze::allow(panic-path, reason = "data_off was validated against the segment length by TcpRepr::parse")
        let payload = &bytes[data_off..];

        let Some(pcb) = self
            .pcbs
            .lookup_mut(dst_addr, repr.dst_port, src_addr, repr.src_port)
        else {
            // No PCB: answer with RST unless the segment itself is a RST.
            if !repr.flags.rst {
                self.reset_for(src_addr, dst_addr, &repr, payload.len());
            }
            self.stats.drops += 1;
            return Err(Error::NoRoute);
        };
        let id = pcb.id;

        match pcb.state {
            TcpState::Listen => self.input_listen(id, src_addr, dst_addr, &repr, now),
            TcpState::SynSent => self.input_syn_sent(id, &repr, now),
            _ => self.input_steady(id, &repr, payload, now),
        }
    }

    fn input_listen(
        &mut self,
        listener: SocketId,
        src_addr: Ipv4Addr,
        dst_addr: Ipv4Addr,
        repr: &TcpRepr,
        now: Instant,
    ) -> Result<()> {
        self.stats.slow_path += 1;
        if repr.flags.rst {
            return Ok(());
        }
        if repr.flags.ack || !repr.flags.syn {
            self.reset_for(src_addr, dst_addr, repr, 0);
            return Err(Error::InvalidState);
        }
        // Passive open: spawn a connection PCB in SYN-RECEIVED.
        let id = self.pcbs.alloc_id();
        let iss = self.next_isn();
        let mut pcb = Pcb::new(
            id,
            dst_addr,
            repr.dst_port,
            src_addr,
            repr.src_port,
            self.cfg.recv_buf,
        );
        pcb.state = TcpState::SynReceived;
        pcb.iss = iss;
        pcb.snd_una = iss;
        pcb.snd_nxt = iss.add(1);
        pcb.irs = repr.seq;
        pcb.rcv_nxt = repr.seq.add(1);
        pcb.snd_wnd = repr.window as u32;
        pcb.mss = repr.mss.unwrap_or(536).min(self.cfg.mss);
        pcb.rto_ms = self.cfg.initial_rto_ms;
        pcb.rtx_deadline = Some(now + pcb.rto_ms);
        // Remember who to notify on ESTABLISHED; encode the listener in
        // the event when the handshake completes.
        self.emit_syn(&pcb, true);
        self.pcbs.insert(pcb);
        self.pending_accepts.push((id, listener));
        Ok(())
    }

    fn input_syn_sent(&mut self, id: SocketId, repr: &TcpRepr, now: Instant) -> Result<()> {
        self.stats.slow_path += 1;
        // analyze::allow(panic-path, reason = "expect documents an invariant: the id was produced by the successful lookup/alloc just above")
        let pcb = self.pcbs.get_mut(id).expect("looked up by caller");
        if repr.flags.rst {
            if repr.flags.ack && repr.ack == pcb.snd_nxt {
                self.drop_pcb(id, TcpEvent::Reset);
            }
            return Ok(());
        }
        if !(repr.flags.syn && repr.flags.ack) {
            // Simultaneous open is out of scope; ignore bare SYNs.
            return Err(Error::InvalidState);
        }
        if repr.ack != pcb.iss.add(1) {
            let (la, ra, lp, rp, seq) = (
                pcb.local_addr,
                pcb.remote_addr,
                pcb.local_port,
                pcb.remote_port,
                repr.ack,
            );
            let rst = TcpRepr {
                src_port: lp,
                dst_port: rp,
                seq,
                ack: SeqNumber(0),
                flags: TcpFlags {
                    rst: true,
                    ..TcpFlags::default()
                },
                window: 0,
                mss: None,
            };
            self.push_segment(la, ra, rst, &[]);
            self.stats.rsts_out += 1;
            return Err(Error::InvalidState);
        }
        pcb.state = TcpState::Established;
        pcb.snd_una = repr.ack;
        pcb.irs = repr.seq;
        pcb.rcv_nxt = repr.seq.add(1);
        pcb.snd_wnd = repr.window as u32;
        pcb.mss = repr.mss.unwrap_or(536).min(pcb.mss);
        pcb.rtx_deadline = None;
        pcb.rtx_count = 0;
        pcb.ack_now = true;
        self.events.push((id, TcpEvent::Connected));
        self.output(id, now);
        Ok(())
    }

    /// Input processing for SYN-RECEIVED and all later states.
    fn input_steady(
        &mut self,
        id: SocketId,
        repr: &TcpRepr,
        payload: &[u8],
        now: Instant,
    ) -> Result<()> {
        let cfg = self.cfg;
        // analyze::allow(panic-path, reason = "expect documents an invariant: the id was produced by the successful lookup/alloc just above")
        let pcb = self.pcbs.get_mut(id).expect("looked up by caller");

        if repr.flags.rst {
            self.stats.slow_path += 1;
            // Accept a RST only if it's in-window (simplified check).
            if repr.seq == pcb.rcv_nxt || pcb.state == TcpState::SynReceived {
                self.drop_pcb(id, TcpEvent::Reset);
            }
            return Ok(());
        }

        // --- Header-prediction fast path (tcp_input's "fastpath") -----
        // In ESTABLISHED, with a plain ACK segment, in sequence, and
        // nothing unusual outstanding, take one of two quick exits.
        if pcb.state == TcpState::Established
            && repr.flags.is_pure_ack_or_data()
            && !repr.flags.syn
            && !repr.flags.fin
            && repr.seq == pcb.rcv_nxt
            && !pcb.fin_sent
        {
            if payload.is_empty()
                && repr.ack.gt(pcb.snd_una)
                && repr.ack.le(pcb.snd_nxt)
            {
                // Pure ACK advancing snd_una.
                self.stats.fast_path += 1;
                Self::process_ack(pcb, repr, now, &cfg, &mut self.stats);
                pcb.snd_wnd = repr.window as u32;
                self.output(id, now);
                return Ok(());
            }
            if !payload.is_empty()
                && repr.ack == pcb.snd_una
                && pcb.recv_buf.free() >= payload.len()
            {
                // In-order data, nothing new acked: append and maybe ACK.
                self.stats.fast_path += 1;
                self.stats.data_segs_in += 1;
                // analyze::allow(panic-path, reason = "expect documents an invariant: the id was produced by the successful lookup/alloc just above")
                pcb.recv_buf.append(payload).expect("free checked");
                pcb.rcv_nxt = pcb.rcv_nxt.add(payload.len() as u32);
                Self::drain_assembler(pcb, payload.len());
                pcb.snd_wnd = repr.window as u32;
                Self::schedule_ack(pcb, now, &cfg, &mut self.stats);
                self.events.push((id, TcpEvent::DataAvailable));
                self.output(id, now);
                return Ok(());
            }
        }

        // --- Slow path -------------------------------------------------
        self.stats.slow_path += 1;

        // Sequence acceptability with head trimming for retransmitted
        // overlap; out-of-order segments are dropped with an immediate
        // duplicate ACK.
        let mut data = payload;
        let mut seq = repr.seq;
        if seq.lt(pcb.rcv_nxt) {
            let skip = pcb.rcv_nxt.diff(seq) as usize;
            if skip >= data.len() && !repr.flags.fin {
                // Entirely old: re-ACK and drop.
                pcb.ack_now = true;
                self.stats.dup_acks_sent += 1;
                self.output(id, now);
                return Ok(());
            }
            // analyze::allow(panic-path, reason = "start index is min-clamped to data.len()")
            data = &data[skip.min(data.len())..];
            seq = pcb.rcv_nxt;
        } else if seq.gt(pcb.rcv_nxt) {
            // Out of order: buffer it for reassembly (capacity allowing)
            // and send a duplicate ACK so the sender fills the gap.
            let offset = seq.diff(pcb.rcv_nxt) as usize;
            let buffered = pcb.state.can_receive_data()
                && offset + data.len() <= pcb.recv_buf.free()
                && pcb.assembler.insert(offset, data).is_ok();
            pcb.ack_now = true;
            self.stats.dup_acks_sent += 1;
            if buffered {
                self.stats.ooo_buffered += 1;
            } else {
                self.stats.drops += 1;
            }
            self.output(id, now);
            return Err(Error::OutOfWindow);
        }

        // ACK processing.
        if repr.flags.ack {
            if pcb.state == TcpState::SynReceived {
                if repr.ack == pcb.iss.add(1) {
                    pcb.state = TcpState::Established;
                    pcb.snd_una = repr.ack;
                    pcb.rtx_deadline = None;
                    pcb.rtx_count = 0;
                    if let Some(pos) = self
                        .pending_accepts
                        .iter()
                        .position(|(cid, _)| *cid == id)
                    {
                        let (_, listener) = self.pending_accepts.swap_remove(pos);
                        self.events.push((id, TcpEvent::Accepted { listener }));
                    }
                } else {
                    // analyze::allow(panic-path, reason = "expect documents an invariant: the id was produced by the successful lookup/alloc just above")
                    let pcb = self.pcbs.get(id).expect("present");
                    let rst = TcpRepr {
                        src_port: pcb.local_port,
                        dst_port: pcb.remote_port,
                        seq: repr.ack,
                        ack: SeqNumber(0),
                        flags: TcpFlags {
                            rst: true,
                            ..TcpFlags::default()
                        },
                        window: 0,
                        mss: None,
                    };
                    let (la, ra) = (pcb.local_addr, pcb.remote_addr);
                    self.push_segment(la, ra, rst, &[]);
                    self.stats.rsts_out += 1;
                    return Err(Error::InvalidState);
                }
            }
            // analyze::allow(panic-path, reason = "expect documents an invariant: the id was produced by the successful lookup/alloc just above")
            let pcb = self.pcbs.get_mut(id).expect("present");
            if repr.ack.gt(pcb.snd_una) && repr.ack.le(pcb.snd_nxt) {
                Self::process_ack(pcb, repr, now, &cfg, &mut self.stats);
            }
            pcb.snd_wnd = repr.window as u32;

            // State transitions driven by the ACK of our FIN.
            let fin_acked = pcb.fin_sent && repr.ack == pcb.snd_nxt;
            match pcb.state {
                TcpState::FinWait1 if fin_acked => pcb.state = TcpState::FinWait2,
                TcpState::Closing if fin_acked => {
                    pcb.state = TcpState::TimeWait;
                    pcb.time_wait_until = Some(now + cfg.time_wait_ms);
                }
                TcpState::LastAck if fin_acked => {
                    self.drop_pcb(id, TcpEvent::Closed);
                    return Ok(());
                }
                _ => {}
            }
        }

        // Data delivery.
        // analyze::allow(panic-path, reason = "expect documents an invariant: the id was produced by the successful lookup/alloc just above")
        let pcb = self.pcbs.get_mut(id).expect("present");
        let mut delivered = false;
        if !data.is_empty() && pcb.state.can_receive_data() {
            let take = data.len().min(pcb.recv_buf.free());
            if take > 0 {
                self.stats.data_segs_in += 1;
                // analyze::allow(panic-path, reason = "take is min-clamped to the source slice length")
                pcb.recv_buf.append(&data[..take]).expect("bounded by free");
                pcb.rcv_nxt = pcb.rcv_nxt.add(take as u32);
                Self::drain_assembler(pcb, take);
                delivered = true;
            }
            if take < data.len() {
                // Window overflow: the tail will be retransmitted.
                pcb.ack_now = true;
            } else {
                Self::schedule_ack(pcb, now, &cfg, &mut self.stats);
            }
        }

        // FIN processing (only when all preceding data was consumed).
        let fin_in_order = repr.flags.fin
            && seq.add(data.len() as u32) == pcb.rcv_nxt;
        if fin_in_order {
            pcb.rcv_nxt = pcb.rcv_nxt.add(1);
            pcb.ack_now = true;
            match pcb.state {
                TcpState::SynReceived | TcpState::Established => {
                    pcb.state = TcpState::CloseWait;
                    self.events.push((id, TcpEvent::PeerClosed));
                }
                TcpState::FinWait1 => {
                    // Our FIN not yet acked (else we'd be in FIN-WAIT-2).
                    pcb.state = TcpState::Closing;
                    self.events.push((id, TcpEvent::PeerClosed));
                }
                TcpState::FinWait2 => {
                    pcb.state = TcpState::TimeWait;
                    pcb.time_wait_until = Some(now + cfg.time_wait_ms);
                    self.events.push((id, TcpEvent::PeerClosed));
                }
                _ => {}
            }
        }

        if delivered {
            self.events.push((id, TcpEvent::DataAvailable));
        }
        self.output(id, now);
        Ok(())
    }

    /// Releases any reassembled out-of-order bytes made contiguous by
    /// `advanced` newly accepted in-order bytes, appending them to the
    /// receive buffer and advancing `rcv_nxt` past them. The advertised
    /// window guarantees released bytes fit the buffer for conforming
    /// peers.
    fn drain_assembler(pcb: &mut Pcb, advanced: usize) {
        let released = pcb.assembler.advance(advanced);
        if !released.is_empty() {
            let take = released.len().min(pcb.recv_buf.free());
            debug_assert_eq!(take, released.len(), "window invariant violated");
            pcb.recv_buf
                // analyze::allow(panic-path, reason = "take is min-clamped to the source slice length")
                .append(&released[..take])
                // analyze::allow(panic-path, reason = "expect documents an invariant: the id was produced by the successful lookup/alloc just above")
                .expect("take bounded by free");
            pcb.rcv_nxt = pcb.rcv_nxt.add(take as u32);
        }
    }

    /// Consumes an acceptable ACK: advances `snd_una`, drops acked bytes,
    /// and manages the retransmission timer.
    fn process_ack(pcb: &mut Pcb, repr: &TcpRepr, now: Instant, cfg: &TcpConfig, _stats: &mut TcpStats) {
        let mut acked = repr.ack.diff(pcb.snd_una);
        if acked <= 0 {
            return;
        }
        // A FIN we sent occupies one sequence number past the data.
        if pcb.fin_sent && repr.ack == pcb.snd_nxt {
            acked -= 1;
        }
        let drop = (acked as usize).min(pcb.unacked.len());
        pcb.unacked.drain(..drop);
        pcb.snd_una = repr.ack;
        pcb.rtx_count = 0;
        pcb.rto_ms = cfg.initial_rto_ms;
        if pcb.unacked.is_empty() && !(pcb.fin_sent && pcb.snd_una != pcb.snd_nxt) {
            pcb.rtx_deadline = None;
        } else {
            pcb.rtx_deadline = Some(now + pcb.rto_ms);
        }
    }

    /// Implements ACK-every-second-segment with a delayed-ACK timer.
    fn schedule_ack(pcb: &mut Pcb, now: Instant, cfg: &TcpConfig, stats: &mut TcpStats) {
        pcb.segs_since_ack += 1;
        if pcb.segs_since_ack >= cfg.ack_every {
            pcb.ack_now = true;
        } else if !pcb.delack_pending {
            pcb.delack_pending = true;
            pcb.delack_deadline = Some(now + cfg.delack_ms);
            stats.delayed_acks += 1;
        }
    }

    // ------------------------------------------------------------------
    // Output path
    // ------------------------------------------------------------------

    /// Runs the output engine for one PCB (`tcp_output`): sends data
    /// within the peer's window, a FIN once the queue drains, and any
    /// required ACK.
    pub fn output(&mut self, id: SocketId, now: Instant) {
        let cfg_persist = self.cfg.persist_ms;
        let Some(pcb) = self.pcbs.get_mut(id) else {
            return;
        };
        if matches!(pcb.state, TcpState::Listen | TcpState::SynSent | TcpState::Closed) {
            return;
        }
        let mut emitted = Vec::new();

        // Data segments.
        loop {
            let in_flight = pcb.in_flight() as u32;
            let window = pcb.snd_wnd.saturating_sub(in_flight);
            if pcb.send_queue.is_empty() || window == 0 || pcb.state == TcpState::SynReceived {
                // Data stuck behind a closed peer window with nothing in
                // flight to trigger an ACK: arm the persist timer.
                if !pcb.send_queue.is_empty()
                    && pcb.snd_wnd == 0
                    && pcb.unacked.is_empty()
                    && pcb.persist_deadline.is_none()
                {
                    pcb.persist_deadline = Some(now + cfg_persist);
                } else if pcb.snd_wnd > 0 {
                    pcb.persist_deadline = None;
                }
                break;
            }
            let take = (pcb.mss as usize)
                .min(window as usize)
                .min(pcb.send_queue.len());
            let chunk: Vec<u8> = pcb.send_queue.drain(..take).collect();
            let last = pcb.send_queue.is_empty();
            let repr = TcpRepr {
                src_port: pcb.local_port,
                dst_port: pcb.remote_port,
                seq: pcb.snd_nxt,
                ack: pcb.rcv_nxt,
                flags: TcpFlags {
                    psh: last,
                    ..TcpFlags::ACK
                },
                window: pcb.rcv_wnd(),
                mss: None,
            };
            pcb.snd_nxt = pcb.snd_nxt.add(take as u32);
            pcb.unacked.extend(chunk.iter().copied());
            if pcb.rtx_deadline.is_none() {
                pcb.rtx_deadline = Some(now + pcb.rto_ms);
            }
            emitted.push((repr, chunk));
        }

        // FIN once data has drained.
        if pcb.fin_queued && !pcb.fin_sent && pcb.send_queue.is_empty() && pcb.state != TcpState::SynReceived {
            let repr = TcpRepr {
                src_port: pcb.local_port,
                dst_port: pcb.remote_port,
                seq: pcb.snd_nxt,
                ack: pcb.rcv_nxt,
                flags: TcpFlags::FIN_ACK,
                window: pcb.rcv_wnd(),
                mss: None,
            };
            pcb.snd_nxt = pcb.snd_nxt.add(1);
            pcb.fin_sent = true;
            match pcb.state {
                TcpState::Established => pcb.state = TcpState::FinWait1,
                TcpState::CloseWait => pcb.state = TcpState::LastAck,
                _ => {}
            }
            if pcb.rtx_deadline.is_none() {
                pcb.rtx_deadline = Some(now + pcb.rto_ms);
            }
            emitted.push((repr, Vec::new()));
        }

        // A data or FIN segment carries the ACK; otherwise send a pure
        // ACK if one is required.
        let mut pure_ack = false;
        if emitted.is_empty() && pcb.ack_now {
            pure_ack = true;
            let repr = TcpRepr {
                src_port: pcb.local_port,
                dst_port: pcb.remote_port,
                seq: pcb.snd_nxt,
                ack: pcb.rcv_nxt,
                flags: TcpFlags::ACK,
                window: pcb.rcv_wnd(),
                mss: None,
            };
            emitted.push((repr, Vec::new()));
        }

        if !emitted.is_empty() {
            pcb.ack_now = false;
            pcb.delack_pending = false;
            pcb.delack_deadline = None;
            pcb.segs_since_ack = 0;
            pcb.sent_zero_window = emitted
                .last()
                .map(|(r, _)| r.window == 0)
                .unwrap_or(false);
        }

        let (la, ra) = (pcb.local_addr, pcb.remote_addr);
        for (repr, chunk) in emitted {
            self.push_segment(la, ra, repr, &chunk);
        }
        if pure_ack {
            self.stats.acks_sent += 1;
        }
    }

    // ------------------------------------------------------------------
    // Timers
    // ------------------------------------------------------------------

    /// Advances protocol timers: delayed-ACK flush, retransmission, and
    /// TIME-WAIT reaping. Call periodically with a monotonic `now`.
    pub fn poll(&mut self, now: Instant) -> PollResult {
        let cfg = self.cfg;
        let mut result = PollResult::default();
        let mut to_output = Vec::new();
        let mut to_retransmit = Vec::new();
        let mut to_reap = Vec::new();
        let mut to_abort = Vec::new();
        let mut to_probe = Vec::new();

        for pcb in self.pcbs.iter_mut() {
            if let Some(d) = pcb.delack_deadline {
                if now >= d {
                    pcb.ack_now = true;
                    pcb.delack_pending = false;
                    pcb.delack_deadline = None;
                    to_output.push(pcb.id);
                    result.delayed_acks_flushed += 1;
                }
            }
            if let Some(d) = pcb.rtx_deadline {
                if now >= d {
                    if pcb.rtx_count >= cfg.max_retries {
                        to_abort.push(pcb.id);
                    } else {
                        to_retransmit.push(pcb.id);
                    }
                }
            }
            if let Some(t) = pcb.time_wait_until {
                if now >= t {
                    to_reap.push(pcb.id);
                }
            }
            if let Some(d) = pcb.persist_deadline {
                if now >= d {
                    to_probe.push(pcb.id);
                }
            }
        }

        for id in to_output {
            self.output(id, now);
        }
        for id in to_retransmit {
            self.retransmit(id, now);
            result.retransmissions += 1;
        }
        for id in to_abort {
            self.drop_pcb(id, TcpEvent::Reset);
            result.connections_reaped += 1;
        }
        for id in to_reap {
            self.drop_pcb(id, TcpEvent::Closed);
            result.connections_reaped += 1;
        }
        for id in to_probe {
            self.send_window_probe(id, now);
        }
        result
    }

    /// Sends a one-byte zero-window probe: the first unsent byte at
    /// `snd_nxt`, ignoring the window (RFC 1122 §4.2.2.17). The peer
    /// either accepts it (window opened) or re-ACKs with its current
    /// window, restarting our transmissions.
    fn send_window_probe(&mut self, id: SocketId, now: Instant) {
        let persist = self.cfg.persist_ms;
        let Some(pcb) = self.pcbs.get_mut(id) else {
            return;
        };
        if pcb.send_queue.is_empty() || pcb.snd_wnd > 0 {
            pcb.persist_deadline = None;
            return;
        }
        let byte = [*pcb.send_queue.front().expect("nonempty")];
        let repr = TcpRepr {
            src_port: pcb.local_port,
            dst_port: pcb.remote_port,
            seq: pcb.snd_nxt,
            ack: pcb.rcv_nxt,
            flags: TcpFlags::ACK,
            window: pcb.rcv_wnd(),
            mss: None,
        };
        // The probe byte consumes sequence space only if accepted; we
        // conservatively leave snd_nxt alone and let the peer's ACK of
        // rcv_nxt (unchanged) or rcv_nxt+1 sort it out — with our own
        // conforming stack the byte is rejected while the window is
        // closed and retransmitted normally once it opens.
        pcb.persist_deadline = Some(now + persist);
        let (la, ra) = (pcb.local_addr, pcb.remote_addr);
        self.push_segment(la, ra, repr, &byte);
        self.stats.window_probes += 1;
    }

    /// Go-back-N retransmission of the oldest outstanding segment.
    fn retransmit(&mut self, id: SocketId, now: Instant) {
        let cfg = self.cfg;
        let Some(pcb) = self.pcbs.get_mut(id) else {
            return;
        };
        pcb.rtx_count += 1;
        pcb.rto_ms = (pcb.rto_ms * 2).min(cfg.max_rto_ms);
        pcb.rtx_deadline = Some(now + pcb.rto_ms);
        self.stats.retransmits += 1;

        match pcb.state {
            TcpState::SynSent => {
                let p = self.pcbs.get(id).expect("present").clone();
                self.emit_syn(&p, false);
            }
            TcpState::SynReceived => {
                let p = self.pcbs.get(id).expect("present").clone();
                self.emit_syn(&p, true);
            }
            _ => {
                let pcb = self.pcbs.get_mut(id).expect("present");
                if !pcb.unacked.is_empty() {
                    let take = (pcb.mss as usize).min(pcb.unacked.len());
                    let chunk: Vec<u8> = pcb.unacked.iter().take(take).copied().collect();
                    let repr = TcpRepr {
                        src_port: pcb.local_port,
                        dst_port: pcb.remote_port,
                        seq: pcb.snd_una,
                        ack: pcb.rcv_nxt,
                        flags: TcpFlags {
                            psh: true,
                            ..TcpFlags::ACK
                        },
                        window: pcb.rcv_wnd(),
                        mss: None,
                    };
                    let (la, ra) = (pcb.local_addr, pcb.remote_addr);
                    self.push_segment(la, ra, repr, &chunk);
                } else if pcb.fin_sent {
                    let repr = TcpRepr {
                        src_port: pcb.local_port,
                        dst_port: pcb.remote_port,
                        seq: SeqNumber(pcb.snd_nxt.0.wrapping_sub(1)), // the FIN's seq
                        ack: pcb.rcv_nxt,
                        flags: TcpFlags::FIN_ACK,
                        window: pcb.rcv_wnd(),
                        mss: None,
                    };
                    let (la, ra) = (pcb.local_addr, pcb.remote_addr);
                    self.push_segment(la, ra, repr, &[]);
                }
            }
        }
    }

    // ------------------------------------------------------------------
    // Helpers
    // ------------------------------------------------------------------

    fn emit_syn(&mut self, pcb: &Pcb, ack: bool) {
        let repr = TcpRepr {
            src_port: pcb.local_port,
            dst_port: pcb.remote_port,
            seq: pcb.iss,
            ack: if ack { pcb.rcv_nxt } else { SeqNumber(0) },
            flags: if ack { TcpFlags::SYN_ACK } else { TcpFlags::SYN },
            window: pcb.rcv_wnd(),
            mss: Some(self.cfg.mss),
        };
        self.push_segment(pcb.local_addr, pcb.remote_addr, repr, &[]);
    }

    fn push_segment(&mut self, src: Ipv4Addr, dst: Ipv4Addr, repr: TcpRepr, payload: &[u8]) {
        let bytes = repr.segment(src, dst, payload);
        self.out.push(OutSegment { src, dst, bytes });
        self.stats.segs_out += 1;
    }

    /// Sends a RST in response to a segment with no matching PCB.
    fn reset_for(&mut self, src_addr: Ipv4Addr, dst_addr: Ipv4Addr, repr: &TcpRepr, paylen: usize) {
        let rst = if repr.flags.ack {
            TcpRepr {
                src_port: repr.dst_port,
                dst_port: repr.src_port,
                seq: repr.ack,
                ack: SeqNumber(0),
                flags: TcpFlags {
                    rst: true,
                    ..TcpFlags::default()
                },
                window: 0,
                mss: None,
            }
        } else {
            let mut ack = repr.seq.add(paylen as u32);
            if repr.flags.syn {
                ack = ack.add(1);
            }
            if repr.flags.fin {
                ack = ack.add(1);
            }
            TcpRepr {
                src_port: repr.dst_port,
                dst_port: repr.src_port,
                seq: SeqNumber(0),
                ack,
                flags: TcpFlags::RST_ACK,
                window: 0,
                mss: None,
            }
        };
        self.push_segment(dst_addr, src_addr, rst, &[]);
        self.stats.rsts_out += 1;
    }

    fn drop_pcb(&mut self, id: SocketId, event: TcpEvent) {
        self.pcbs.remove(id);
        self.pending_accepts.retain(|(cid, _)| *cid != id);
        self.events.push((id, event));
    }
}

impl TcpStack {
    /// Number of live PCBs (for tests and capacity monitoring).
    pub fn pcb_count(&self) -> usize {
        self.pcbs.iter().count()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::tcp::pcb::TcpState;

    const A: Ipv4Addr = Ipv4Addr([10, 0, 0, 1]);
    const B: Ipv4Addr = Ipv4Addr([10, 0, 0, 2]);

    /// Shuttles segments between two stacks until both are quiet.
    fn pump(a: &mut TcpStack, b: &mut TcpStack, now: Instant) -> usize {
        let mut moved = 0;
        for _ in 0..128 {
            let mut quiet = true;
            for seg in a.take_output() {
                quiet = false;
                moved += 1;
                let _ = b.input(seg.src, seg.dst, &seg.bytes, now);
            }
            for seg in b.take_output() {
                quiet = false;
                moved += 1;
                let _ = a.input(seg.src, seg.dst, &seg.bytes, now);
            }
            if quiet {
                break;
            }
        }
        moved
    }

    /// Handshake helper: returns (client stack, server stack,
    /// client socket, server-side socket).
    fn connected() -> (TcpStack, TcpStack, SocketId, SocketId) {
        let mut c = TcpStack::new(TcpConfig::default());
        let mut s = TcpStack::new(TcpConfig::default());
        s.listen(B, 80).unwrap();
        let cs = c.connect(A, B, 80, 0).unwrap();
        pump(&mut c, &mut s, 0);
        assert_eq!(c.state(cs), TcpState::Established);
        let events = s.take_events();
        let ss = events
            .iter()
            .find_map(|(id, e)| match e {
                TcpEvent::Accepted { .. } => Some(*id),
                _ => None,
            })
            .expect("server accepted");
        assert_eq!(s.state(ss), TcpState::Established);
        (c, s, cs, ss)
    }

    #[test]
    fn three_way_handshake() {
        let (mut c, _s, cs, _ss) = connected();
        let evs = c.take_events();
        assert!(evs.contains(&(cs, TcpEvent::Connected)));
    }

    #[test]
    fn data_transfer_and_delivery() {
        let (mut c, mut s, cs, ss) = connected();
        c.send(cs, b"hello from the client", 1).unwrap();
        pump(&mut c, &mut s, 1);
        let mut buf = [0u8; 64];
        let n = s.recv(ss, &mut buf).unwrap();
        assert_eq!(&buf[..n], b"hello from the client");
    }

    #[test]
    fn large_transfer_respects_mss_and_window() {
        let (mut c, mut s, cs, ss) = connected();
        let data: Vec<u8> = (0..20_000u32).map(|i| (i % 251) as u8).collect();
        let mut sent = 0;
        let mut received = Vec::new();
        let mut now = 1;
        while received.len() < data.len() {
            if sent < data.len() {
                sent += c.send(cs, &data[sent..(sent + 4096).min(data.len())], now).unwrap();
            }
            pump(&mut c, &mut s, now);
            let mut buf = [0u8; 2048];
            loop {
                let n = s.recv(ss, &mut buf).unwrap();
                if n == 0 {
                    break;
                }
                received.extend_from_slice(&buf[..n]);
            }
            now += 1;
            assert!(now < 1000, "transfer did not make progress");
        }
        assert_eq!(received, data);
        // Segments were MSS-bounded.
        assert!(s.stats().data_segs_in as usize >= data.len() / 536);
    }

    #[test]
    fn fast_path_dominates_bulk_receive() {
        let (mut c, mut s, cs, ss) = connected();
        for now in 1..=50 {
            c.send(cs, &[0u8; 536], now).unwrap();
            pump(&mut c, &mut s, now);
            let mut buf = [0u8; 1024];
            while s.recv(ss, &mut buf).unwrap() > 0 {}
        }
        let st = s.stats();
        assert!(
            st.fast_path > st.slow_path,
            "fast path {} should dominate slow path {}",
            st.fast_path,
            st.slow_path
        );
        // The PCB cache serves the bulk of lookups.
        let cache = s.pcb_cache_stats();
        assert!(cache.cache_hits > cache.walk_hits + cache.no_match);
    }

    #[test]
    fn delayed_ack_every_second_segment() {
        let (mut c, mut s, cs, _ss) = connected();
        c.take_events();
        s.take_events();
        // Send two segments' worth without letting ACKs flow back yet.
        c.send(cs, &[1u8; 536], 1).unwrap();
        c.send(cs, &[2u8; 536], 1).unwrap();
        let segs = c.take_output();
        assert_eq!(segs.len(), 2);
        // First data segment: no immediate ACK (delayed).
        let _ = s.input(segs[0].src, segs[0].dst, &segs[0].bytes, 1);
        assert!(s.take_output().is_empty(), "first segment's ACK is delayed");
        // Second segment: ACK now.
        let _ = s.input(segs[1].src, segs[1].dst, &segs[1].bytes, 1);
        assert_eq!(s.take_output().len(), 1, "every second segment is ACKed");
    }

    #[test]
    fn delayed_ack_flushed_by_timer() {
        let (mut c, mut s, cs, _ss) = connected();
        c.send(cs, &[1u8; 100], 1).unwrap();
        let segs = c.take_output();
        let _ = s.input(segs[0].src, segs[0].dst, &segs[0].bytes, 1);
        assert!(s.take_output().is_empty());
        let r = s.poll(1 + s.config().delack_ms);
        assert_eq!(r.delayed_acks_flushed, 1);
        assert_eq!(s.take_output().len(), 1);
    }

    #[test]
    fn graceful_close_both_sides() {
        let (mut c, mut s, cs, ss) = connected();
        c.close(cs, 1).unwrap();
        pump(&mut c, &mut s, 1);
        assert_eq!(s.state(ss), TcpState::CloseWait);
        assert!(s.take_events().contains(&(ss, TcpEvent::PeerClosed)));
        assert_eq!(c.state(cs), TcpState::FinWait2);
        s.close(ss, 2).unwrap();
        pump(&mut c, &mut s, 2);
        assert_eq!(c.state(cs), TcpState::TimeWait);
        assert_eq!(s.state(ss), TcpState::Closed, "LAST-ACK completed");
        // TIME-WAIT expires and the PCB is reaped.
        c.poll(2 + c.config().time_wait_ms);
        assert_eq!(c.pcb_count(), 0);
    }

    #[test]
    fn syn_to_closed_port_gets_rst() {
        let mut c = TcpStack::new(TcpConfig::default());
        let mut s = TcpStack::new(TcpConfig::default());
        let cs = c.connect(A, B, 81, 0).unwrap();
        pump(&mut c, &mut s, 0);
        assert_eq!(s.stats().rsts_out, 1);
        assert!(c.take_events().contains(&(cs, TcpEvent::Reset)));
        assert_eq!(c.state(cs), TcpState::Closed);
    }

    #[test]
    fn lost_segment_retransmitted() {
        let (mut c, mut s, cs, ss) = connected();
        c.send(cs, b"will be lost", 1).unwrap();
        let lost = c.take_output();
        assert_eq!(lost.len(), 1);
        // Drop it. The retransmit timer fires and recovers.
        let rto = c.config().initial_rto_ms;
        let r = c.poll(1 + rto);
        assert_eq!(r.retransmissions, 1);
        assert_eq!(c.stats().retransmits, 1);
        pump(&mut c, &mut s, 1 + rto);
        let mut buf = [0u8; 32];
        let n = s.recv(ss, &mut buf).unwrap();
        assert_eq!(&buf[..n], b"will be lost");
    }

    #[test]
    fn rto_backs_off_and_gives_up() {
        let mut c = TcpStack::new(TcpConfig {
            max_retries: 2,
            ..TcpConfig::default()
        });
        let cs = c.connect(A, B, 80, 0).unwrap();
        c.take_output(); // SYN vanishes into the void
        let mut now = 0;
        let mut rto = c.config().initial_rto_ms;
        for _ in 0..2 {
            now += rto;
            assert_eq!(c.poll(now).retransmissions, 1);
            rto *= 2;
            c.take_output();
        }
        now += rto;
        let r = c.poll(now);
        assert_eq!(r.connections_reaped, 1);
        assert!(c.take_events().contains(&(cs, TcpEvent::Reset)));
    }

    #[test]
    fn duplicate_segment_reacked_not_redelivered() {
        let (mut c, mut s, cs, ss) = connected();
        c.send(cs, b"once", 1).unwrap();
        let segs = c.take_output();
        let _ = s.input(segs[0].src, segs[0].dst, &segs[0].bytes, 1);
        let _ = s.input(segs[0].src, segs[0].dst, &segs[0].bytes, 1); // dup
        assert_eq!(s.stats().dup_acks_sent, 1);
        let mut buf = [0u8; 32];
        let n = s.recv(ss, &mut buf).unwrap();
        assert_eq!(&buf[..n], b"once", "no double delivery");
    }

    #[test]
    fn out_of_order_segment_buffered_and_reassembled() {
        let (mut c, mut s, cs, ss) = connected();
        c.send(cs, &[1u8; 100], 1).unwrap();
        c.send(cs, &[2u8; 100], 1).unwrap();
        let segs = c.take_output();
        assert_eq!(segs.len(), 2);
        // Deliver only the second: out of order, buffered, dup-ACKed.
        let r = s.input(segs[1].src, segs[1].dst, &segs[1].bytes, 1);
        assert_eq!(r, Err(Error::OutOfWindow));
        assert_eq!(s.stats().dup_acks_sent, 1);
        assert_eq!(s.stats().ooo_buffered, 1);
        assert_eq!(s.recv_available(ss), 0, "gap not yet filled");
        // The first arrives: both segments become readable, in order.
        let _ = s.input(segs[0].src, segs[0].dst, &segs[0].bytes, 1);
        assert_eq!(s.recv_available(ss), 200, "reassembled");
        let mut buf = [0u8; 256];
        let n = s.recv(ss, &mut buf).unwrap();
        assert_eq!(&buf[..100], &[1u8; 100][..]);
        assert_eq!(&buf[100..n], &[2u8; 100][..]);
    }

    #[test]
    fn reordered_burst_reassembles_without_retransmission() {
        let (mut c, mut s, cs, ss) = connected();
        for i in 0..4u8 {
            c.send(cs, &[i; 50], 1).unwrap();
        }
        let segs = c.take_output();
        assert_eq!(segs.len(), 4);
        // Deliver in the order 3, 1, 2, 0.
        for &i in &[3usize, 1, 2, 0] {
            let _ = s.input(segs[i].src, segs[i].dst, &segs[i].bytes, 1);
        }
        assert_eq!(s.recv_available(ss), 200);
        let mut buf = [0u8; 256];
        let n = s.recv(ss, &mut buf).unwrap();
        assert_eq!(n, 200);
        for i in 0..4u8 {
            assert!(buf[i as usize * 50..(i as usize + 1) * 50]
                .iter()
                .all(|&b| b == i));
        }
        assert_eq!(s.stats().ooo_buffered, 3);
        assert_eq!(c.stats().retransmits, 0);
    }

    #[test]
    fn zero_window_stalls_then_window_update_resumes() {
        let mut c = TcpStack::new(TcpConfig::default());
        let mut s = TcpStack::new(TcpConfig {
            recv_buf: 1024,
            ..TcpConfig::default()
        });
        s.listen(B, 80).unwrap();
        let cs = c.connect(A, B, 80, 0).unwrap();
        pump(&mut c, &mut s, 0);
        let ss = s
            .take_events()
            .iter()
            .find_map(|(id, e)| matches!(e, TcpEvent::Accepted { .. }).then_some(*id))
            .unwrap();
        // Fill the receiver's buffer completely.
        c.send(cs, &vec![7u8; 4096], 1).unwrap();
        pump(&mut c, &mut s, 1);
        assert_eq!(s.recv_available(ss), 1024, "receiver buffer full");
        // Sender has stalled with in-flight data ackable but window 0.
        let before = s.recv_available(ss);
        assert_eq!(before, 1024);
        // Draining triggers a window update and the transfer completes.
        let mut total = 0;
        let mut buf = [0u8; 512];
        let mut now = 2;
        while total < 4096 {
            let n = s.recv(ss, &mut buf).unwrap();
            total += n;
            pump(&mut c, &mut s, now);
            now += 1;
            if n == 0 {
                // Let retransmission timers push stalled data.
                c.poll(now + c.config().initial_rto_ms);
                now += c.config().initial_rto_ms;
                pump(&mut c, &mut s, now);
            }
            assert!(now < 100_000, "stalled: received {total} of 4096");
        }
        assert_eq!(total, 4096);
    }

    #[test]
    fn persist_timer_probes_zero_window_and_recovers() {
        // Receiver with a tiny buffer that the application never drains
        // until later: the sender must not stall forever.
        let mut c = TcpStack::new(TcpConfig::default());
        let mut s = TcpStack::new(TcpConfig {
            recv_buf: 1024,
            ..TcpConfig::default()
        });
        s.listen(B, 80).unwrap();
        let cs = c.connect(A, B, 80, 0).unwrap();
        pump(&mut c, &mut s, 0);
        let ss = s
            .take_events()
            .iter()
            .find_map(|(id, e)| matches!(e, TcpEvent::Accepted { .. }).then_some(*id))
            .unwrap();
        // Fill the window completely; more data waits in the send queue.
        c.send(cs, &vec![3u8; 2048], 1).unwrap();
        pump(&mut c, &mut s, 1);
        assert_eq!(s.recv_available(ss), 1024);
        // The sender saw window 0 and armed the persist timer.
        let mut now = 1 + c.config().persist_ms;
        c.poll(now);
        assert!(c.stats().window_probes >= 1, "probe fired");
        pump(&mut c, &mut s, now);
        // Receiver still full: probe re-ACKed with window 0; sender
        // remains armed and probes again.
        now += c.config().persist_ms;
        c.poll(now);
        assert!(c.stats().window_probes >= 2);
        // The application finally drains; the window update (from recv)
        // plus the next probe exchange restart the flow.
        let mut buf = [0u8; 2048];
        let mut got = 1024;
        let n = s.recv(ss, &mut buf).unwrap();
        assert_eq!(n, 1024);
        pump(&mut c, &mut s, now);
        for _ in 0..20 {
            now += c.config().persist_ms;
            c.poll(now);
            s.poll(now);
            pump(&mut c, &mut s, now);
            got += s.recv(ss, &mut buf).unwrap();
            if got >= 2048 {
                break;
            }
        }
        assert_eq!(got, 2048, "all data eventually delivered");
    }

    #[test]
    fn abort_sends_rst_and_peer_resets() {
        let (mut c, mut s, cs, ss) = connected();
        s.take_events();
        c.abort(cs, 1).unwrap();
        pump(&mut c, &mut s, 1);
        assert_eq!(c.pcb_count(), 0);
        assert!(s.take_events().contains(&(ss, TcpEvent::Reset)));
        assert_eq!(s.state(ss), TcpState::Closed);
    }

    #[test]
    fn ephemeral_ports_do_not_collide() {
        let mut c = TcpStack::new(TcpConfig::default());
        let p1 = c.ephemeral_port();
        let p2 = c.ephemeral_port();
        assert_ne!(p1, p2);
        assert!(p1 >= 49152);
    }

    #[test]
    fn listen_rejects_bound_port() {
        let mut s = TcpStack::new(TcpConfig::default());
        s.listen(B, 80).unwrap();
        assert_eq!(s.listen(B, 80), Err(Error::Exhausted));
    }

    #[test]
    fn simultaneous_transfer_in_both_directions() {
        let (mut c, mut s, cs, ss) = connected();
        c.send(cs, b"ping", 1).unwrap();
        s.send(ss, b"pong", 1).unwrap();
        pump(&mut c, &mut s, 1);
        let mut buf = [0u8; 8];
        let n = s.recv(ss, &mut buf).unwrap();
        assert_eq!(&buf[..n], b"ping");
        let n = c.recv(cs, &mut buf).unwrap();
        assert_eq!(&buf[..n], b"pong");
    }
}
