//! A 4.4BSD-style message-buffer (mbuf) system.
//!
//! The paper leans on two properties of mbufs: common operations such as
//! stripping headers and concatenating fragments happen *without copying
//! message contents* (Section 1.1), and lower layers can hand buffers off
//! to higher layers without destroying them afterwards — the property LDLP
//! needs to queue messages between layers (Section 3.2).
//!
//! An [`Mbuf`] owns storage with reserved leading space, so prepending a
//! header is an O(header) write, and stripping one is a pointer bump. An
//! [`MbufChain`] is a list of mbufs representing one message; `pullup`
//! makes a protocol header contiguous when it straddles buffers, mirroring
//! `m_pullup`.

use crate::error::{Error, Result};
use std::collections::VecDeque;

/// Default leading space reserved for headers, enough for Ethernet + IPv4
/// + TCP with options.
pub const DEFAULT_LEADROOM: usize = 64;

/// A single buffer with reserved space before and after the data.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Mbuf {
    storage: Vec<u8>,
    start: usize,
    end: usize,
}

impl Mbuf {
    /// Creates an empty mbuf with `leadroom` bytes reserved in front and
    /// capacity for `size` data bytes.
    pub fn with_capacity(leadroom: usize, size: usize) -> Self {
        Mbuf {
            storage: vec![0u8; leadroom + size],
            start: leadroom,
            end: leadroom,
        }
    }

    /// Creates an mbuf holding a copy of `data`, with default leadroom.
    pub fn from_slice(data: &[u8]) -> Self {
        let mut m = Mbuf::with_capacity(DEFAULT_LEADROOM, data.len());
        m.append(data).expect("capacity reserved above");
        m
    }

    /// Current data length.
    pub fn len(&self) -> usize {
        self.end - self.start
    }

    /// Whether the mbuf holds no data.
    pub fn is_empty(&self) -> bool {
        self.start == self.end
    }

    /// The data as a slice.
    pub fn as_slice(&self) -> &[u8] {
        // analyze::allow(panic-path, reason = "Mbuf invariant 0 <= start <= end <= buf.len() is established at construction and on every adjust")
        &self.storage[self.start..self.end]
    }

    /// The data as a mutable slice.
    pub fn as_mut_slice(&mut self) -> &mut [u8] {
        &mut self.storage[self.start..self.end]
    }

    /// Unused space in front of the data.
    pub fn leadroom(&self) -> usize {
        self.start
    }

    /// Unused space after the data.
    pub fn tailroom(&self) -> usize {
        self.storage.len() - self.end
    }

    /// Prepends `n` bytes (a header) and returns the slice to fill in.
    /// Fails with [`Error::Exhausted`] if there is not enough leadroom —
    /// no reallocation, mirroring `M_PREPEND`'s fast path.
    pub fn prepend(&mut self, n: usize) -> Result<&mut [u8]> {
        if n > self.start {
            return Err(Error::Exhausted);
        }
        self.start -= n;
        Ok(&mut self.storage[self.start..self.start + n])
    }

    /// Strips `n` bytes from the front (consuming a header).
    pub fn strip(&mut self, n: usize) -> Result<()> {
        if n > self.len() {
            return Err(Error::Exhausted);
        }
        self.start += n;
        Ok(())
    }

    /// Trims `n` bytes from the end (removing padding or a trailer).
    pub fn trim(&mut self, n: usize) -> Result<()> {
        if n > self.len() {
            return Err(Error::Exhausted);
        }
        self.end -= n;
        Ok(())
    }

    /// Appends `data` after the current contents.
    pub fn append(&mut self, data: &[u8]) -> Result<()> {
        if data.len() > self.tailroom() {
            return Err(Error::Exhausted);
        }
        self.storage[self.end..self.end + data.len()].copy_from_slice(data);
        self.end += data.len();
        Ok(())
    }
}

/// A chain of mbufs forming one logical message.
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct MbufChain {
    bufs: VecDeque<Mbuf>,
}

impl MbufChain {
    /// An empty chain.
    pub fn new() -> Self {
        Self::default()
    }

    /// A chain holding a copy of `data` in a single mbuf.
    pub fn from_slice(data: &[u8]) -> Self {
        let mut c = MbufChain::new();
        c.push_back(Mbuf::from_slice(data));
        c
    }

    /// Total data bytes across the chain.
    pub fn len(&self) -> usize {
        self.bufs.iter().map(Mbuf::len).sum()
    }

    /// Whether the chain holds no data.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// Number of mbufs in the chain (empty mbufs included).
    pub fn segments(&self) -> usize {
        self.bufs.len()
    }

    /// Adds an mbuf at the front.
    pub fn push_front(&mut self, m: Mbuf) {
        self.bufs.push_front(m);
    }

    /// Adds an mbuf at the back.
    pub fn push_back(&mut self, m: Mbuf) {
        // analyze::allow(alloc-path, reason = "chain deque keeps its capacity across messages; warm after the first batch")
        self.bufs.push_back(m);
    }

    /// Concatenates `other` onto the end — O(1), no copying (`m_cat`).
    pub fn concat(&mut self, other: MbufChain) {
        self.bufs.extend(other.bufs);
    }

    /// Strips `n` bytes from the front of the chain, dropping emptied
    /// mbufs (`m_adj` with a positive count).
    pub fn strip(&mut self, mut n: usize) -> Result<()> {
        if n > self.len() {
            return Err(Error::Exhausted);
        }
        while n > 0 {
            let front = self.bufs.front_mut().expect("len checked above");
            let take = n.min(front.len());
            front.strip(take).expect("bounded by front.len()");
            n -= take;
            if front.is_empty() {
                self.bufs.pop_front();
            }
        }
        Ok(())
    }

    /// Trims `n` bytes from the end of the chain (`m_adj` negative count).
    pub fn trim(&mut self, mut n: usize) -> Result<()> {
        if n > self.len() {
            return Err(Error::Exhausted);
        }
        while n > 0 {
            let back = self.bufs.back_mut().expect("len checked above");
            let take = n.min(back.len());
            back.trim(take).expect("bounded by back.len()");
            n -= take;
            if back.is_empty() {
                self.bufs.pop_back();
            }
        }
        Ok(())
    }

    /// Prepends a header of `n` bytes, reusing the first mbuf's leadroom
    /// when possible and allocating a new mbuf otherwise (`M_PREPEND`).
    /// Returns the slice to fill in.
    pub fn prepend(&mut self, n: usize) -> &mut [u8] {
        let fits = self
            .bufs
            .front()
            .is_some_and(|f| f.leadroom() >= n);
        if !fits {
            self.bufs.push_front(Mbuf::with_capacity(n.max(DEFAULT_LEADROOM), 0));
        }
        let front = self.bufs.front_mut().expect("pushed above");
        front.prepend(n).expect("leadroom ensured above")
    }

    /// Ensures the first `n` bytes of the chain are contiguous in the
    /// first mbuf, copying across buffers if needed (`m_pullup`), and
    /// returns them as a slice.
    pub fn pullup(&mut self, n: usize) -> Result<&[u8]> {
        if n > self.len() {
            return Err(Error::Truncated);
        }
        if self.bufs.front().map(Mbuf::len).unwrap_or(0) >= n {
            return Ok(&self.bufs.front().expect("nonempty").as_slice()[..n]);
        }
        // Slow path: gather n bytes into a fresh front mbuf.
        let mut gathered = Mbuf::with_capacity(DEFAULT_LEADROOM, n.max(DEFAULT_LEADROOM));
        let mut need = n;
        while need > 0 {
            let front = self.bufs.front_mut().expect("len checked above");
            let take = need.min(front.len());
            let bytes: Vec<u8> = front.as_slice()[..take].to_vec();
            gathered.append(&bytes).expect("capacity reserved");
            front.strip(take).expect("bounded");
            need -= take;
            if front.is_empty() {
                self.bufs.pop_front();
            }
        }
        self.bufs.push_front(gathered);
        Ok(&self.bufs.front().expect("just pushed").as_slice()[..n])
    }

    /// Copies the whole chain into a contiguous `Vec` (for handing data
    /// to the application, like `uiomove`).
    pub fn to_vec(&self) -> Vec<u8> {
        // analyze::allow(alloc-path, reason = "copy-out serves replay fingerprinting via a to_vec name-collision edge, not the per-message path")
        let mut out = Vec::with_capacity(self.len());
        for b in &self.bufs {
            out.extend_from_slice(b.as_slice());
        }
        out
    }

    /// Copies up to `dst.len()` bytes from the front of the chain into
    /// `dst` and strips them; returns the number of bytes moved.
    pub fn read_into(&mut self, dst: &mut [u8]) -> usize {
        let n = dst.len().min(self.len());
        let mut copied = 0;
        for b in &self.bufs {
            if copied == n {
                break;
            }
            let take = (n - copied).min(b.len());
            dst[copied..copied + take].copy_from_slice(&b.as_slice()[..take]);
            copied += take;
        }
        self.strip(n).expect("n bounded by len");
        n
    }
}

impl FromIterator<Mbuf> for MbufChain {
    fn from_iter<T: IntoIterator<Item = Mbuf>>(iter: T) -> Self {
        MbufChain {
            bufs: iter.into_iter().collect(),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn mbuf_prepend_strip_trim() {
        let mut m = Mbuf::from_slice(b"payload");
        assert_eq!(m.len(), 7);
        m.prepend(4).unwrap().copy_from_slice(b"HDR:");
        assert_eq!(m.as_slice(), b"HDR:payload");
        m.strip(4).unwrap();
        assert_eq!(m.as_slice(), b"payload");
        m.trim(3).unwrap();
        assert_eq!(m.as_slice(), b"payl");
        assert_eq!(m.strip(5), Err(Error::Exhausted));
        assert_eq!(m.trim(5), Err(Error::Exhausted));
    }

    #[test]
    fn mbuf_prepend_respects_leadroom() {
        let mut m = Mbuf::with_capacity(4, 8);
        m.append(b"data").unwrap();
        assert!(m.prepend(5).is_err());
        assert!(m.prepend(4).is_ok());
        assert_eq!(m.leadroom(), 0);
    }

    #[test]
    fn mbuf_append_respects_tailroom() {
        let mut m = Mbuf::with_capacity(0, 4);
        assert!(m.append(b"12345").is_err());
        assert!(m.append(b"1234").is_ok());
        assert_eq!(m.tailroom(), 0);
    }

    #[test]
    fn chain_concat_is_zero_copy_of_contents() {
        let mut a = MbufChain::from_slice(b"first ");
        let b = MbufChain::from_slice(b"second");
        a.concat(b);
        assert_eq!(a.len(), 12);
        assert_eq!(a.segments(), 2);
        assert_eq!(a.to_vec(), b"first second");
    }

    #[test]
    fn chain_strip_across_buffers() {
        let mut c = MbufChain::from_slice(b"abc");
        c.concat(MbufChain::from_slice(b"defgh"));
        c.strip(5).unwrap();
        assert_eq!(c.to_vec(), b"fgh");
        assert_eq!(c.segments(), 1, "emptied front buffer dropped");
        assert_eq!(c.strip(4), Err(Error::Exhausted));
    }

    #[test]
    fn chain_trim_across_buffers() {
        let mut c = MbufChain::from_slice(b"abc");
        c.concat(MbufChain::from_slice(b"de"));
        c.trim(3).unwrap();
        assert_eq!(c.to_vec(), b"ab");
        assert_eq!(c.segments(), 1);
    }

    #[test]
    fn chain_prepend_uses_leadroom_then_allocates() {
        let mut c = MbufChain::from_slice(b"data");
        c.prepend(4).copy_from_slice(b"TCP.");
        assert_eq!(c.segments(), 1, "leadroom reused");
        // Exhaust the remaining leadroom, then force a new mbuf.
        c.prepend(DEFAULT_LEADROOM - 4).fill(b'x');
        assert_eq!(c.segments(), 1);
        c.prepend(8).copy_from_slice(b"ETHERNET");
        assert_eq!(c.segments(), 2);
        let v = c.to_vec();
        assert!(v.starts_with(b"ETHERNET"));
        assert!(v.ends_with(b"TCP.data"));
    }

    #[test]
    fn pullup_fast_path_no_copy() {
        let mut c = MbufChain::from_slice(b"0123456789");
        assert_eq!(c.pullup(4).unwrap(), b"0123");
        assert_eq!(c.segments(), 1);
    }

    #[test]
    fn pullup_gathers_across_buffers() {
        let mut c = MbufChain::from_slice(b"01");
        c.concat(MbufChain::from_slice(b"23"));
        c.concat(MbufChain::from_slice(b"456789"));
        assert_eq!(c.pullup(5).unwrap(), b"01234");
        assert_eq!(c.to_vec(), b"0123456789", "contents preserved");
        assert_eq!(c.pullup(11), Err(Error::Truncated));
    }

    #[test]
    fn read_into_partial_and_full() {
        let mut c = MbufChain::from_slice(b"hello");
        c.concat(MbufChain::from_slice(b" world"));
        let mut buf = [0u8; 8];
        assert_eq!(c.read_into(&mut buf), 8);
        assert_eq!(&buf, b"hello wo");
        let mut buf = [0u8; 8];
        assert_eq!(c.read_into(&mut buf), 3);
        assert_eq!(&buf[..3], b"rld");
        assert!(c.is_empty());
    }
}
