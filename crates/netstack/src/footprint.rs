//! The measured working-set footprint of the TCP receive-and-acknowledge
//! path (paper Section 2, Figure 1, Tables 1–3).
//!
//! We cannot trace our own instruction fetches from portable Rust, so this
//! module carries the paper's measurements as data: every function of
//! Figure 1 with its full size and layer, and a per-layer touched-line
//! budget calibrated so that the regenerated Table 1 matches the published
//! numbers exactly at 32-byte lines. The *sub-line* structure (which bytes
//! within a touched line execute) is modelled with deterministic basic-
//! block patterns whose parameters are fitted to the paper's Table 3
//! (line-size sensitivity) and Section 5.4 (~25% cache dilution).
//!
//! [`build_receive_ack_trace`] replays the three phases of Table 2 —
//! process entry and block, device interrupt, process exit with ACK — as a
//! `memtrace::Trace` that the analysis crates turn back into the paper's
//! tables and figures.

use cachesim::Region;
use memtrace::trace::{RefKind, Trace};

/// The classification layers of Table 1, in row order.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
#[repr(u16)]
pub enum Layer {
    Device = 0,
    Ethernet,
    Ip,
    Tcp,
    SocketLow,
    SocketHigh,
    KernelEntry,
    ProcessControl,
    BufferMgmt,
    CopyChecksum,
}

impl Layer {
    /// Table 1 row labels.
    pub const NAMES: [&'static str; 10] = [
        "Device",
        "Ethernet",
        "IP",
        "TCP",
        "Socket low",
        "Socket high",
        "Kernel entry/exit",
        "Process control",
        "Buffer mgmt",
        "Copy, checksum",
    ];

    /// All layers in row order.
    pub const ALL: [Layer; 10] = [
        Layer::Device,
        Layer::Ethernet,
        Layer::Ip,
        Layer::Tcp,
        Layer::SocketLow,
        Layer::SocketHigh,
        Layer::KernelEntry,
        Layer::ProcessControl,
        Layer::BufferMgmt,
        Layer::CopyChecksum,
    ];
}

/// The three phases of Table 2, in chronological order.
pub const PHASES: [&str; 3] = ["entry", "pkt intr", "exit"];

/// One function of Figure 1.
#[derive(Debug, Clone, Copy)]
pub struct FnSpec {
    /// Symbol name as printed in Figure 1.
    pub name: &'static str,
    /// Full size in bytes (the number printed beside the name).
    pub size: u64,
    /// Table 1 layer.
    pub layer: Layer,
    /// 32-byte lines of this function executed in each phase
    /// (entry, interrupt, exit). Coverage is a prefix of the function, so
    /// the union across phases is the maximum entry.
    pub phase_lines: [u64; 3],
    /// Re-execution weight for the interrupt/exit data loops (checksum,
    /// copy routines): extra code references emitted to model loops
    /// iterating over the 552-byte message.
    pub loop_weight: u32,
}

impl FnSpec {
    /// Total touched 32-byte lines (union across phases).
    pub fn touched_lines(&self) -> u64 {
        *self.phase_lines.iter().max().expect("3 phases")
    }
}

const fn f(
    name: &'static str,
    size: u64,
    layer: Layer,
    phase_lines: [u64; 3],
    loop_weight: u32,
) -> FnSpec {
    FnSpec {
        name,
        size,
        layer,
        phase_lines,
        loop_weight,
    }
}

/// Every function of Figure 1: name, full byte size (as printed in the
/// figure), layer, and per-phase touched-line budgets calibrated to
/// Table 1's per-layer code totals.
pub const FUNCTIONS: &[FnSpec] = &[
    // Device driver (Lance Ethernet + TURBOchannel glue): 140 lines.
    f("leintr", 3264, Layer::Device, [0, 70, 0], 0),
    f("lestart", 1824, Layer::Device, [0, 0, 38], 0),
    f("lewritereg", 216, Layer::Device, [0, 4, 4], 0),
    f("asic_intr", 392, Layer::Device, [0, 8, 0], 0),
    f("tc_3000_500_iointr", 848, Layer::Device, [0, 20, 0], 0),
    // Ethernet layer: 87 lines.
    f("ether_input", 2728, Layer::Ethernet, [0, 40, 0], 0),
    f("ether_output", 3632, Layer::Ethernet, [0, 0, 30], 0),
    f("arpresolve", 944, Layer::Ethernet, [0, 0, 12], 0),
    f("in_broadcast", 288, Layer::Ethernet, [0, 5, 0], 0),
    // IP layer: 99 lines.
    f("ipintr", 2648, Layer::Ip, [0, 39, 0], 0),
    f("ip_output", 5120, Layer::Ip, [0, 0, 60], 0),
    // TCP layer: 173 lines.
    f("tcp_input", 11872, Layer::Tcp, [0, 85, 0], 4),
    f("tcp_output", 4872, Layer::Tcp, [0, 0, 60], 0),
    f("tcp_usrreq", 2352, Layer::Tcp, [0, 0, 28], 0),
    // Socket low (buffer side): 19 lines.
    f("sbappend", 160, Layer::SocketLow, [0, 5, 0], 0),
    f("sbcompress", 704, Layer::SocketLow, [0, 6, 0], 0),
    f("sowakeup", 360, Layer::SocketLow, [0, 5, 0], 0),
    f("sbwait", 160, Layer::SocketLow, [3, 0, 0], 0),
    // Socket high (system-call side): 37 lines.
    f("soreceive", 5536, Layer::SocketHigh, [8, 0, 28], 0),
    f("soo_read", 80, Layer::SocketHigh, [2, 0, 2], 0),
    f("selwakeup", 456, Layer::SocketHigh, [0, 7, 7], 0),
    // Kernel entry/exit: 69 lines.
    f("syscall", 1176, Layer::KernelEntry, [16, 0, 34], 0),
    f("XentSys", 148, Layer::KernelEntry, [4, 0, 4], 0),
    f("XentInt", 208, Layer::KernelEntry, [0, 6, 0], 0),
    f("rei", 320, Layer::KernelEntry, [0, 5, 10], 0),
    f("pal_swpipl", 8, Layer::KernelEntry, [1, 1, 1], 0),
    f("interrupt", 184, Layer::KernelEntry, [0, 5, 0], 0),
    f("spl0", 136, Layer::KernelEntry, [4, 2, 4], 0),
    f("microtime", 288, Layer::KernelEntry, [5, 3, 5], 0),
    // Process control: 171 lines.
    f("trap", 2008, Layer::ProcessControl, [0, 0, 62], 0),
    f("tsleep", 1096, Layer::ProcessControl, [16, 0, 34], 0),
    f("wakeup", 488, Layer::ProcessControl, [0, 15, 0], 0),
    f("mi_switch", 520, Layer::ProcessControl, [16, 0, 16], 0),
    f("cpu_switch", 460, Layer::ProcessControl, [13, 0, 13], 0),
    f("setrunqueue", 176, Layer::ProcessControl, [0, 5, 5], 0),
    f("idle", 68, Layer::ProcessControl, [2, 0, 2], 0),
    f("netintr", 344, Layer::ProcessControl, [0, 10, 0], 0),
    f("do_sir", 200, Layer::ProcessControl, [0, 6, 0], 0),
    f("read", 312, Layer::ProcessControl, [8, 0, 8], 0),
    // Buffer management: 51 lines.
    f("malloc", 1608, Layer::BufferMgmt, [0, 20, 28], 0),
    f("free", 856, Layer::BufferMgmt, [0, 10, 16], 0),
    f("m_adj", 376, Layer::BufferMgmt, [0, 7, 0], 0),
    // Copy and checksum: 101 lines.
    f("in_cksum", 1104, Layer::CopyChecksum, [0, 31, 31], 10),
    f("bcopy", 620, Layer::CopyChecksum, [0, 8, 19], 8),
    f("copyout", 132, Layer::CopyChecksum, [0, 0, 4], 4),
    f("uiomove", 424, Layer::CopyChecksum, [0, 0, 12], 0),
    f("bzero", 184, Layer::CopyChecksum, [0, 0, 4], 2),
    f("ntohl", 64, Layer::CopyChecksum, [0, 2, 2], 0),
    f("ntohs", 32, Layer::CopyChecksum, [0, 1, 1], 0),
    f("copyfrombuf_gap2", 240, Layer::CopyChecksum, [0, 7, 0], 6),
    f("copyfrombuf_gap16", 208, Layer::CopyChecksum, [0, 5, 0], 0),
    f("copytobuf_gap2", 256, Layer::CopyChecksum, [0, 0, 6], 2),
    f("copytobuf_gap16", 208, Layer::CopyChecksum, [0, 0, 5], 0),
    f("zerobuf_gap16", 184, Layer::CopyChecksum, [0, 0, 5], 0),
];

/// Read-only data lines per layer at 32 bytes (Table 1's RO column / 32).
pub const RO_LINES: [u64; 10] = [27, 15, 14, 17, 1, 8, 40, 17, 6, 14];
/// Mutable data lines per layer at 32 bytes (Table 1's mutable column / 32).
pub const MUT_LINES: [u64; 10] = [21, 4, 5, 14, 5, 2, 20, 23, 16, 4];

/// Which phase first touches each layer's data (the paper's first-access
/// attribution rule): socket-high, kernel and process data are first
/// touched during entry; everything else during the interrupt.
const DATA_FIRST_PHASE: [u8; 10] = [1, 1, 1, 1, 1, 0, 0, 0, 1, 1];

/// Message size used throughout the trace (552 bytes, "a common packet
/// size in IP internetworks").
pub const MESSAGE_SIZE: u64 = 552;

// Model parameters fitted to Table 3 and Section 5.4 (see module docs).
/// Probability a touched code line is fully executed (the rest have a
/// partial head or tail run). Together with the partial-run length
/// distribution below this fits both the ~25% dilution of Section 5.4 and
/// Table 3's 16-byte row for code (executed bytes average 24/line; 73% of
/// lines have bytes in both 16-byte halves).
const CODE_FULL_LINE_NUM: u64 = 55;
/// Probability (in percent) of skipping a line inside a function's
/// coverage, breaking 64-byte adjacency. Fits Table 3's 64-byte code row.
const CODE_SKIP_NUM: u64 = 18;
/// Percent of RO lines carrying a word in both 16-byte halves.
const RO_SECOND_HALF_NUM: u64 = 38;
/// Percent of RO lines placed adjacent to the previous one.
const RO_ADJACENT_NUM: u64 = 56;
/// Percent of RO words straddling an 8-byte boundary (fits Table 3's
/// 8-byte row: +81% lines vs +38% at 16 bytes).
const RO_SPLIT8_NUM: u64 = 31;
/// Percent of mutable lines carrying data in both 16-byte halves.
const MUT_SECOND_HALF_NUM: u64 = 23;
/// Percent of mutable lines placed adjacent to the previous one.
const MUT_ADJACENT_NUM: u64 = 44;
/// Percent of mutable words straddling an 8-byte boundary.
const MUT_SPLIT8_NUM: u64 = 42;

/// A tiny deterministic LCG so the footprint model needs no RNG crate.
#[derive(Clone, Copy)]
struct Lcg(u64);

impl Lcg {
    fn new(seed: u64) -> Self {
        Lcg(seed.wrapping_mul(0x9e3779b97f4a7c15).wrapping_add(1))
    }

    fn next(&mut self) -> u64 {
        self.0 = self
            .0
            .wrapping_mul(6364136223846793005)
            .wrapping_add(1442695040888963407);
        self.0 >> 33
    }

    /// Uniform draw in `0..100`.
    fn pct(&mut self) -> u64 {
        self.next() % 100
    }

    fn pick(&mut self, choices: &[u64]) -> u64 {
        choices[(self.next() % choices.len() as u64) as usize]
    }
}

/// Layout of the trace's address space (all regions disjoint).
#[derive(Debug, Clone)]
pub struct TraceLayout {
    /// Base address of each function's code, in `FUNCTIONS` order.
    pub code: Vec<Region>,
    /// Per-layer read-only data regions.
    pub ro: Vec<Region>,
    /// Per-layer mutable data regions.
    pub mutable: Vec<Region>,
    /// Device receive buffer (excluded from Table 1).
    pub device_buf: Region,
    /// Mbuf data area holding the message (excluded).
    pub mbuf_data: Region,
    /// User buffer the payload is copied into (excluded).
    pub user_buf: Region,
    /// Kernel stack (excluded).
    pub stack: Region,
}

/// Builds the sequential (link-order) layout the measurements used.
pub fn default_layout() -> TraceLayout {
    let mut alloc = cachesim::AddressAllocator::new(0x1000, 32);
    let code = FUNCTIONS
        .iter()
        .map(|spec| alloc.alloc(spec.size))
        .collect();
    // Generous per-layer data windows: patterns place lines sparsely.
    let ro = (0..10).map(|i| alloc.alloc(RO_LINES[i] * 32 * 8)).collect();
    let mutable = (0..10)
        .map(|i| alloc.alloc(MUT_LINES[i] * 32 * 8))
        .collect();
    let device_buf = alloc.alloc(1536);
    let mbuf_data = alloc.alloc(1536);
    let user_buf = alloc.alloc(1536);
    let stack = alloc.alloc(8192);
    TraceLayout {
        code,
        ro,
        mutable,
        device_buf,
        mbuf_data,
        user_buf,
        stack,
    }
}

/// Pre-computed code coverage for one function: which lines are touched
/// and the byte run inside each.
struct CodeCoverage {
    /// `(line_index, offset_in_line, len)` for every touched line, in
    /// ascending line order.
    runs: Vec<(u64, u64, u64)>,
}

/// Generates the sub-line execution pattern for a function: `lines`
/// touched lines, mostly consecutive from the function start, each either
/// fully executed or covered by a partial head/tail run.
fn code_coverage(spec: &FnSpec, seed: u64) -> CodeCoverage {
    let lines = spec.touched_lines();
    let max_lines = spec.size.div_ceil(32);
    let mut rng = Lcg::new(seed);
    let mut runs = Vec::with_capacity(lines as usize);
    let mut cursor = 0u64;
    for placed in 0..lines {
        let remaining = lines - placed;
        // Skip a line sometimes, if the function is big enough to allow it.
        if rng.pct() < CODE_SKIP_NUM && cursor + remaining < max_lines {
            cursor += 1;
        }
        let last_line_len = if cursor == max_lines - 1 && !spec.size.is_multiple_of(32) {
            spec.size % 32
        } else {
            32
        };
        if rng.pct() < CODE_FULL_LINE_NUM || last_line_len < 32 {
            runs.push((cursor, 0, last_line_len));
        } else {
            // Partial-run lengths: bimodal so that some partial lines
            // still span both 16-byte halves (keeps Table 3's 16-byte
            // line ratio) while the mean executed bytes per line is ~24
            // (the ~25% dilution of Section 5.4).
            let p = rng.pct();
            let k = if p < 35 {
                8
            } else if p < 60 {
                12
            } else if p < 85 {
                20
            } else {
                24
            };
            if rng.pct() < 50 {
                runs.push((cursor, 0, k)); // head run
            } else {
                runs.push((cursor, 32 - k, k)); // tail run
            }
        }
        cursor += 1;
    }
    CodeCoverage { runs }
}

/// Line placements for a data pattern: `(line_index, words)` where each
/// word is `(offset_in_line, len)`.
fn data_pattern(
    lines: u64,
    seed: u64,
    adjacent_pct: u64,
    second_half_pct: u64,
    split8_pct: u64,
) -> Vec<(u64, Vec<(u64, u64)>)> {
    let mut rng = Lcg::new(seed);
    let mut out = Vec::with_capacity(lines as usize);
    let mut cursor = 0u64;
    // A word stays within its 16-byte half; with probability `split8_pct`
    // it sits at offset 4 within the half and straddles the half's
    // internal 8-byte boundary (a 4-byte-aligned struct field).
    let word = |rng: &mut Lcg, half_base: u64| -> (u64, u64) {
        if rng.pct() < split8_pct {
            (half_base + 4, 8)
        } else {
            (half_base + rng.pick(&[0, 8]), 8)
        }
    };
    for i in 0..lines {
        if i > 0 {
            if rng.pct() < adjacent_pct {
                cursor += 1;
            } else {
                cursor += 2 + rng.next() % 4;
            }
        }
        let mut words = vec![word(&mut rng, 0)];
        if rng.pct() < second_half_pct {
            words.push(word(&mut rng, 16));
        }
        out.push((cursor, words));
    }
    out
}

/// Replays the TCP receive-and-acknowledge path as a memory-reference
/// trace, using `layout` for addresses. The resulting trace reproduces
/// Table 1 exactly at 32-byte lines and Tables 2/3 and Figure 1
/// approximately (see EXPERIMENTS.md).
pub fn build_trace(layout: &TraceLayout) -> Trace {
    let mut trace = Trace::new(
        Layer::NAMES.iter().map(|s| s.to_string()).collect(),
        PHASES.iter().map(|s| s.to_string()).collect(),
    );
    trace.excluded = vec![
        layout.device_buf,
        layout.mbuf_data,
        layout.user_buf,
        layout.stack,
    ];

    let fn_ids: Vec<u32> = FUNCTIONS
        .iter()
        .enumerate()
        .map(|(i, spec)| trace.add_function(spec.name, layout.code[i], spec.layer as u16))
        .collect();

    // Representative function per layer, used to attribute data refs.
    let layer_rep: Vec<u32> = Layer::ALL
        .iter()
        .map(|layer| {
            FUNCTIONS
                .iter()
                .position(|s| s.layer == *layer)
                .expect("every layer has functions") as u32
        })
        .collect();

    // Pre-compute code coverage per function (stable across phases so the
    // union equals the per-function budget).
    let coverage: Vec<CodeCoverage> = FUNCTIONS
        .iter()
        .enumerate()
        .map(|(i, spec)| code_coverage(spec, i as u64 + 1))
        .collect();

    let mut stack_cursor = layout.stack.base;

    for (phase, _name) in PHASES.iter().enumerate() {
        let phase = phase as u8;
        // --- Code references, function by function in call-ish order ---
        for (i, spec) in FUNCTIONS.iter().enumerate() {
            let budget = spec.phase_lines[phase as usize];
            if budget == 0 {
                continue;
            }
            let base = layout.code[i].base;
            // Instruction fetches at 4-byte (one-instruction) granularity,
            // as the in-kernel simulator recorded them.
            for &(line, off, len) in coverage[i].runs.iter().take(budget as usize) {
                let start = base + line * 32 + off;
                let mut at = start;
                while at < start + len {
                    let step = 4.min(start + len - at);
                    trace.record(at, step as u32, RefKind::Code, phase, fn_ids[i]);
                    at += step;
                }
            }
            // Loop bodies re-execute over the data they traverse: the
            // whole 552-byte message in the interrupt phase; on exit, the
            // copy-to-user routines traverse the message again while the
            // ACK-building routines only touch the 58-byte ACK.
            if spec.loop_weight > 0 && phase != 0 {
                let loop_bytes = if phase == 1 || matches!(spec.name, "bcopy" | "copyout" | "uiomove")
                {
                    MESSAGE_SIZE
                } else {
                    58
                };
                let iters = spec.loop_weight as u64 * (loop_bytes / 32).max(1);
                let inner = &coverage[i].runs[..coverage[i].runs.len().min(2)];
                for it in 0..iters {
                    let &(line, off, len) = &inner[(it % inner.len() as u64) as usize];
                    let start = base + line * 32 + off;
                    let mut at = start;
                    while at < start + len {
                        let step = 4.min(start + len - at);
                        trace.record(at, step as u32, RefKind::Code, phase, fn_ids[i]);
                        at += step;
                    }
                }
            }
            // Stack traffic for the call frame (excluded from Table 1).
            let frame = 96u64;
            if stack_cursor + frame > layout.stack.end() {
                stack_cursor = layout.stack.base;
            }
            trace.record(stack_cursor, frame as u32, RefKind::Write, phase, fn_ids[i]);
            trace.record(stack_cursor, frame as u32, RefKind::Read, phase, fn_ids[i]);
            stack_cursor += frame;
        }

        // --- Per-layer data references on first-touch phases ----------
        for (li, layer) in Layer::ALL.iter().enumerate() {
            let rep = layer_rep[li];
            let first = DATA_FIRST_PHASE[li];
            // Data is touched in its first phase and every later phase in
            // which the layer's code runs; reads repeat, which only
            // affects reference counts, not the working set.
            let active = FUNCTIONS
                .iter()
                .any(|s| s.layer == *layer && s.phase_lines[phase as usize] > 0);
            if phase < first || !active {
                continue;
            }
            for (line, words) in data_pattern(
                RO_LINES[li],
                1000 + li as u64,
                RO_ADJACENT_NUM,
                RO_SECOND_HALF_NUM,
                RO_SPLIT8_NUM,
            ) {
                for (off, len) in words {
                    trace.record(
                        layout.ro[li].base + line * 32 + off,
                        len as u32,
                        RefKind::Read,
                        phase,
                        rep,
                    );
                }
            }
            for (line, words) in data_pattern(
                MUT_LINES[li],
                2000 + li as u64,
                MUT_ADJACENT_NUM,
                MUT_SECOND_HALF_NUM,
                MUT_SPLIT8_NUM,
            ) {
                for (off, len) in words {
                    let addr = layout.mutable[li].base + line * 32 + off;
                    trace.record(addr, len as u32, RefKind::Read, phase, rep);
                    trace.record(addr, len as u32, RefKind::Write, phase, rep);
                }
            }
        }

        // --- Message contents (excluded from Table 1, visible in the
        //     phase summaries) ------------------------------------------
        match phase {
            1 => {
                // Interrupt: copy device -> mbuf, then checksum the mbuf.
                let dev = layout.device_buf.base;
                let mbuf = layout.mbuf_data.base;
                let cp = trace.function_named("copyfrombuf_gap2").expect("in table");
                let ck = trace.function_named("in_cksum").expect("in table");
                trace.record(dev, MESSAGE_SIZE as u32, RefKind::Read, phase, cp);
                trace.record(mbuf, MESSAGE_SIZE as u32, RefKind::Write, phase, cp);
                trace.record(mbuf, MESSAGE_SIZE as u32, RefKind::Read, phase, ck);
            }
            2 => {
                // Exit: copy mbuf -> user space; build and send the ACK.
                let mbuf = layout.mbuf_data.base;
                let user = layout.user_buf.base;
                let co = trace.function_named("copyout").expect("in table");
                let ck = trace.function_named("in_cksum").expect("in table");
                let tb = trace.function_named("copytobuf_gap2").expect("in table");
                trace.record(mbuf, MESSAGE_SIZE as u32, RefKind::Read, phase, co);
                trace.record(user, MESSAGE_SIZE as u32, RefKind::Write, phase, co);
                // The ACK: 58 bytes of headers written, checksummed, and
                // copied to the device.
                let ack = layout.mbuf_data.base + 1024;
                trace.record(ack, 58, RefKind::Write, phase, tb);
                trace.record(ack, 58, RefKind::Read, phase, ck);
                trace.record(layout.device_buf.base + 768, 58, RefKind::Write, phase, tb);
            }
            _ => {}
        }
    }

    debug_assert!(trace.validate().is_ok());
    trace
}

/// Convenience: build the trace with the default sequential layout.
pub fn build_receive_ack_trace() -> Trace {
    build_trace(&default_layout())
}

/// The paper's published Table 1 totals in bytes at 32-byte lines
/// (code, read-only data, mutable data) — the values the regenerated
/// table is validated against. The code total is the sum of the published
/// per-layer rows.
pub const PAPER_TABLE1_TOTALS: (u64, u64, u64) = (30304, 5088, 3648);

/// The paper's published per-layer code bytes (Table 1, top to bottom).
pub const PAPER_CODE_BYTES: [u64; 10] =
    [4480, 2784, 3168, 5536, 608, 1184, 2208, 5472, 1632, 3232];
/// The paper's published per-layer read-only data bytes.
pub const PAPER_RO_BYTES: [u64; 10] = [864, 480, 448, 544, 32, 256, 1280, 544, 192, 448];
/// The paper's published per-layer mutable data bytes.
pub const PAPER_MUT_BYTES: [u64; 10] = [672, 128, 160, 448, 160, 64, 640, 736, 512, 128];

#[cfg(test)]
mod tests {
    use super::*;
    use memtrace::workingset::working_set;

    #[test]
    fn function_budgets_fit_function_sizes() {
        for spec in FUNCTIONS {
            assert!(
                spec.touched_lines() * 32 <= spec.size.div_ceil(32) * 32,
                "{} budget {} lines exceeds size {}",
                spec.name,
                spec.touched_lines(),
                spec.size
            );
        }
    }

    #[test]
    fn layer_line_budgets_match_table1() {
        for (li, layer) in Layer::ALL.iter().enumerate() {
            let lines: u64 = FUNCTIONS
                .iter()
                .filter(|s| s.layer == *layer)
                .map(|s| s.touched_lines())
                .sum();
            assert_eq!(
                lines * 32,
                PAPER_CODE_BYTES[li],
                "layer {} code budget mismatch",
                Layer::NAMES[li]
            );
        }
    }

    #[test]
    fn trace_reproduces_table1_exactly() {
        let trace = build_receive_ack_trace();
        trace.validate().unwrap();
        let ws = working_set(&trace, 32);
        for (li, row) in ws.rows.iter().enumerate() {
            assert_eq!(row.code.bytes, PAPER_CODE_BYTES[li], "code row {li}");
            assert_eq!(row.ro_data.bytes, PAPER_RO_BYTES[li], "ro row {li}");
            assert_eq!(row.mut_data.bytes, PAPER_MUT_BYTES[li], "mut row {li}");
        }
        assert_eq!(ws.total.code.bytes, PAPER_TABLE1_TOTALS.0);
        assert_eq!(ws.total.ro_data.bytes, PAPER_TABLE1_TOTALS.1);
        assert_eq!(ws.total.mut_data.bytes, PAPER_TABLE1_TOTALS.2);
    }

    #[test]
    fn phases_have_the_papers_shape() {
        // Entry is small; the interrupt and exit phases carry most of the
        // code. (Exact byte totals are modelled; see EXPERIMENTS.md.)
        let trace = build_receive_ack_trace();
        let phases = memtrace::phases::phase_summaries(&trace);
        assert_eq!(phases.len(), 3);
        assert!(phases[0].code.bytes < phases[1].code.bytes);
        assert!(phases[0].code.bytes < phases[2].code.bytes);
        // Re-executed loop code makes interrupt-phase refs far exceed
        // its unique bytes.
        assert!(phases[1].code.refs as f64 > phases[1].code.bytes as f64 / 16.0);
    }

    #[test]
    fn dilution_is_near_25_percent() {
        let trace = build_receive_ack_trace();
        let d = memtrace::dilution::code_dilution(&trace, 32);
        assert!(
            (0.15..0.35).contains(&d.dilution()),
            "dilution {} outside the paper's ~25% neighbourhood",
            d.dilution()
        );
    }

    #[test]
    fn layout_regions_are_disjoint() {
        let l = default_layout();
        let mut all: Vec<Region> = l.code.clone();
        all.extend(l.ro.iter().copied());
        all.extend(l.mutable.iter().copied());
        all.extend([l.device_buf, l.mbuf_data, l.user_buf, l.stack]);
        for (i, a) in all.iter().enumerate() {
            for b in &all[i + 1..] {
                assert!(!a.overlaps(b), "{a:?} overlaps {b:?}");
            }
        }
    }

    #[test]
    fn trace_is_deterministic() {
        let a = build_receive_ack_trace();
        let b = build_receive_ack_trace();
        assert_eq!(a.refs.len(), b.refs.len());
        assert_eq!(a.refs, b.refs);
    }
}
