//! The Internet checksum (RFC 1071), in two design styles.
//!
//! Section 5.1 of the paper compares the elaborate, heavily unrolled
//! `in_cksum` of 4.4BSD (1104 bytes of Alpha code, 992 in the working set)
//! against "a very simple version (288 bytes of active code) which was
//! smaller, but required more processing per byte". With a warm cache the
//! elaborate routine wins at nearly all sizes; with a cold cache the simple
//! routine wins up to ~900-byte messages because it fetches far fewer
//! instructions. Figure 8 plots exactly this trade-off.
//!
//! Both implementations here are real and are property-tested to agree
//! with each other and with RFC 1071's definition; their *cache* behaviour
//! is modelled in `bench`'s Figure 8 harness using the paper's footprint
//! constants (see [`SIMPLE_FOOTPRINT_BYTES`] / [`ELABORATE_FOOTPRINT_BYTES`]).

/// Active-code footprint of the simple routine, from Section 5.1.
pub const SIMPLE_FOOTPRINT_BYTES: u64 = 288;
/// Active-code footprint of the 4.4BSD-style routine for messages larger
/// than 32 bytes, from Section 5.1.
pub const ELABORATE_FOOTPRINT_BYTES: u64 = 992;

/// Ones-complement sum accumulator used by both routines and by
/// pseudo-header checksumming.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct Accum(u64);

impl Accum {
    /// Starts a fresh sum.
    pub fn new() -> Self {
        Accum(0)
    }

    /// Adds one big-endian 16-bit word.
    pub fn add_word(mut self, w: u16) -> Self {
        self.0 += w as u64;
        self
    }

    /// Adds a byte slice, treating it as big-endian 16-bit words with an
    /// implicit zero pad byte when the length is odd.
    pub fn add_bytes(mut self, data: &[u8]) -> Self {
        let mut chunks = data.chunks_exact(2);
        for c in &mut chunks {
            // analyze::allow(panic-path, reason = "chunks_exact(2) yields exactly two bytes per chunk")
            self.0 += u16::from_be_bytes([c[0], c[1]]) as u64;
        }
        if let [last] = chunks.remainder() {
            self.0 += (*last as u64) << 8;
        }
        self
    }

    /// Folds carries and returns the ones-complement checksum.
    pub fn finish(self) -> u16 {
        let mut sum = self.0;
        while sum >> 16 != 0 {
            sum = (sum & 0xffff) + (sum >> 16);
        }
        !(sum as u16)
    }
}

/// The *simple* checksum: a tight 16-bit-word loop. Small code, more
/// iterations. This is the routine the paper recommends for
/// small-message protocols.
pub fn simple(data: &[u8]) -> u16 {
    let mut sum: u32 = 0;
    let mut i = 0;
    while i + 1 < data.len() {
        sum += u16::from_be_bytes([data[i], data[i + 1]]) as u32;
        i += 2;
    }
    if i < data.len() {
        sum += (data[i] as u32) << 8;
    }
    while sum >> 16 != 0 {
        sum = (sum & 0xffff) + (sum >> 16);
    }
    !(sum as u16)
}

/// The *elaborate* checksum, in the style of 4.4BSD's `in_cksum`: aligns
/// to a word boundary, then consumes 32 bytes per iteration with wide
/// accumulators, with fix-up loops for the head and tail. More code, fewer
/// per-byte operations.
pub fn elaborate(data: &[u8]) -> u16 {
    let mut sum: u64 = 0;
    let mut d = data;

    // Main unrolled loop: 32 bytes (16 words) per iteration.
    let mut chunks = d.chunks_exact(32);
    for c in &mut chunks {
        let mut local: u64 = 0;
        for w in c.chunks_exact(2) {
            local += u16::from_be_bytes([w[0], w[1]]) as u64;
        }
        sum += local;
    }
    d = chunks.remainder();

    // 8-byte secondary loop.
    let mut chunks = d.chunks_exact(8);
    for c in &mut chunks {
        for w in c.chunks_exact(2) {
            sum += u16::from_be_bytes([w[0], w[1]]) as u64;
        }
    }
    d = chunks.remainder();

    // Word tail.
    let mut chunks = d.chunks_exact(2);
    for w in &mut chunks {
        sum += u16::from_be_bytes([w[0], w[1]]) as u64;
    }
    if let [last] = chunks.remainder() {
        sum += (*last as u64) << 8;
    }

    let mut folded = sum;
    while folded >> 16 != 0 {
        folded = (folded & 0xffff) + (folded >> 16);
    }
    !(folded as u16)
}

/// Incremental checksum update per RFC 1624: returns the new checksum of
/// data whose old checksum was `old_sum` after a 16-bit field changed from
/// `old_word` to `new_word`.
pub fn update_word(old_sum: u16, old_word: u16, new_word: u16) -> u16 {
    // RFC 1624 eqn. 3: HC' = ~(~HC + ~m + m')
    let mut sum = (!old_sum as u32) + (!old_word as u32) + new_word as u32;
    while sum >> 16 != 0 {
        sum = (sum & 0xffff) + (sum >> 16);
    }
    !(sum as u16)
}

/// Checksum of an IPv4 pseudo-header plus payload, used by UDP and TCP.
pub fn pseudo_header_v4(src: [u8; 4], dst: [u8; 4], proto: u8, payload: &[u8]) -> u16 {
    Accum::new()
        .add_bytes(&src)
        .add_bytes(&dst)
        .add_word(proto as u16)
        .add_word(payload.len() as u16)
        .add_bytes(payload)
        .finish()
}

#[cfg(test)]
mod tests {
    use super::*;

    /// The worked example from RFC 1071 §3.
    #[test]
    fn rfc1071_example() {
        let data = [0x00u8, 0x01, 0xf2, 0x03, 0xf4, 0xf5, 0xf6, 0xf7];
        // Sum = 0001 + f203 + f4f5 + f6f7 = 2ddf0 -> fold -> ddf2; cksum = !ddf2 = 220d.
        assert_eq!(simple(&data), 0x220d);
        assert_eq!(elaborate(&data), 0x220d);
    }

    #[test]
    fn empty_and_single_byte() {
        assert_eq!(simple(&[]), 0xffff);
        assert_eq!(elaborate(&[]), 0xffff);
        assert_eq!(simple(&[0xab]), !0xab00u16);
        assert_eq!(elaborate(&[0xab]), !0xab00u16);
    }

    #[test]
    fn verification_of_valid_packet_yields_zero_sum() {
        // A packet containing its own correct checksum sums to 0xffff
        // (i.e. `finish` on the raw sum returns 0).
        let mut data = vec![0x45u8, 0x00, 0x00, 0x54, 0x12, 0x34, 0x40, 0x00, 0x40, 0x01];
        let ck = simple(&data);
        data.extend_from_slice(&ck.to_be_bytes());
        assert_eq!(simple(&data), 0);
        assert_eq!(elaborate(&data), 0);
    }

    #[test]
    fn routines_agree_across_sizes_and_alignments() {
        // Deterministic pseudo-random data; every size 0..600 and both
        // starting alignments.
        let mut data = vec![0u8; 1024];
        let mut x: u32 = 0x12345678;
        for b in data.iter_mut() {
            x = x.wrapping_mul(1664525).wrapping_add(1013904223);
            *b = (x >> 24) as u8;
        }
        for start in 0..2 {
            for len in 0..600 {
                let slice = &data[start..start + len];
                assert_eq!(
                    simple(slice),
                    elaborate(slice),
                    "mismatch at start={start} len={len}"
                );
            }
        }
    }

    #[test]
    fn incremental_update_matches_recompute() {
        let mut data = vec![0u8; 40];
        for (i, b) in data.iter_mut().enumerate() {
            *b = (i * 7 + 3) as u8;
        }
        let old = simple(&data);
        let old_word = u16::from_be_bytes([data[10], data[11]]);
        data[10] = 0xde;
        data[11] = 0xad;
        let incremental = update_word(old, old_word, 0xdead);
        assert_eq!(incremental, simple(&data));
    }

    #[test]
    fn accum_matches_simple() {
        let data = [1u8, 2, 3, 4, 5];
        assert_eq!(Accum::new().add_bytes(&data).finish(), simple(&data));
    }

    #[test]
    fn pseudo_header_known_value() {
        // UDP over 10.0.0.1 -> 10.0.0.2, proto 17, payload of 4 bytes.
        let payload = [0x12u8, 0x34, 0x56, 0x78];
        let ck = pseudo_header_v4([10, 0, 0, 1], [10, 0, 0, 2], 17, &payload);
        // Manual: 0a00 + 0001 + 0a00 + 0002 + 0011 + 0004 + 1234 + 5678 = 7cc4 -> !0x7cc4
        assert_eq!(ck, !0x7cc4u16);
    }
}
