//! Property tests for the open-addressing lookup tables.
//!
//! * Model agreement: `OaTable` behaves exactly like a `BTreeMap`
//!   reference under arbitrary insert/remove/lookup interleavings —
//!   including backward-shift deletion, which must never strand a key.
//! * Cache transparency: routing lookups through a `LookupCache` (any
//!   eviction scheme, any depth) returns exactly what the bare table
//!   returns; the cache changes cost, never answers.
//! * Probe-log sanity: every recorded probe sequence is non-empty and
//!   the table's mean probe count stays at least one.

use std::collections::BTreeMap;

use netstack::table::{mix64, CacheScheme, LookupCache, OaTable};
use proptest::prelude::*;

proptest! {
    /// The OA table and a BTreeMap reference stay in lockstep under a
    /// random op tape: same return values, same length, and at the end
    /// the same full key → value mapping (iteration included).
    #[test]
    fn oa_table_matches_btreemap_model(
        ops in proptest::collection::vec((0u8..3, 0u16..200, 0u32..10_000), 1..400),
    ) {
        let mut table: OaTable<u16, u32> = OaTable::new();
        let mut model: BTreeMap<u16, u32> = BTreeMap::new();
        for &(op, key, value) in &ops {
            match op {
                0 => prop_assert_eq!(table.insert(key, value), model.insert(key, value)),
                1 => prop_assert_eq!(table.remove(&key), model.remove(&key)),
                _ => prop_assert_eq!(table.get(&key), model.get(&key)),
            }
            prop_assert_eq!(table.len(), model.len());
        }
        for (k, v) in &model {
            prop_assert_eq!(table.get(k), Some(v), "key {} lost after churn", k);
        }
        let mut seen: Vec<(u16, u32)> = table.iter().map(|(k, v)| (*k, *v)).collect();
        seen.sort_unstable();
        let want: Vec<(u16, u32)> = model.iter().map(|(k, v)| (*k, *v)).collect();
        prop_assert_eq!(seen, want);
    }

    /// A lookup cache in front of the table — LRU, FIFO, or random
    /// eviction, any depth — never changes a lookup's answer, and its
    /// hit/miss counters account for every probe of it.
    #[test]
    fn lookup_cache_is_transparent(
        keys in proptest::collection::vec(0u16..64, 1..300),
        slots in 1usize..8,
        seed in 1u64..1000,
    ) {
        let mut table: OaTable<u16, u32> = OaTable::new();
        for k in 0u16..48 {
            table.insert(k, k as u32 * 3 + 1);
        }
        for scheme in [CacheScheme::Lru, CacheScheme::Fifo, CacheScheme::Random] {
            let mut cache: LookupCache<u16, u32> = LookupCache::new(scheme, slots, seed);
            for &k in &keys {
                let cached = match cache.get(&k) {
                    Some(v) => Some(v),
                    None => match table.get(&k).copied() {
                        Some(v) => {
                            cache.insert(k, v);
                            Some(v)
                        }
                        None => None,
                    },
                };
                prop_assert_eq!(cached, table.get(&k).copied(), "scheme {:?}", scheme);
            }
            let stats = cache.stats();
            prop_assert_eq!(stats.hits + stats.misses, keys.len() as u64);
        }
    }

    /// Probe logs are recorded for every mutating lookup, and strided
    /// backward-shift removals keep all survivors reachable.
    #[test]
    fn probe_log_and_backward_shift_survive_churn(
        n in 1usize..200,
        remove_stride in 1usize..7,
        seed in 1u64..1000,
    ) {
        let mut table: OaTable<u64, usize> = OaTable::with_capacity(n);
        for i in 0..n {
            table.insert(mix64(seed ^ i as u64), i);
            prop_assert!(!table.last_probes().is_empty(), "insert {} logged no probes", i);
        }
        for i in (0..n).step_by(remove_stride) {
            prop_assert_eq!(table.remove(&mix64(seed ^ i as u64)), Some(i));
        }
        for i in 0..n {
            let got = table.get_mut(&mix64(seed ^ i as u64)).map(|v| *v);
            if i % remove_stride == 0 {
                prop_assert_eq!(got, None, "removed key {} still resolves", i);
            } else {
                prop_assert_eq!(got, Some(i), "survivor {} lost to backward shift", i);
                prop_assert!(!table.last_probes().is_empty());
            }
        }
        prop_assert!(table.mean_probes() >= 1.0);
    }
}
