//! # analyze — static determinism & hot-path invariant analyzer
//!
//! The workspace's headline guarantees — CSVs byte-identical across
//! any worker count, impairment fates replayable from the seed with a
//! fixed RNG-draw budget — are runtime-tested but easy to break
//! silently: one `HashMap` iteration, one `Instant::now()`, one
//! conditional RNG draw, and a refactor ships a nondeterminism bug the
//! goldens only catch later (or never, if the goldens get
//! regenerated). This crate scans the workspace sources and fails CI
//! when an unjustified hazard appears.
//!
//! The rule catalog (see `DESIGN.md` §5.3):
//!
//! | id | rule |
//! |----|------|
//! | R1 `nondeterminism`     | no wall clock / `thread_rng` / hash-order containers in sim crates |
//! | R2 `rng-draw-budget`    | `simnet::impair` fns declare `// draws: N`, checked against call sites |
//! | R3 `unsafe-safety`      | every `unsafe` carries a `// SAFETY:` comment |
//! | R4 `panic-free-library` | no `unwrap`/`expect`/`panic!`/literal-index in core/simnet/cachesim libs |
//! | R5 `float-reduction`    | no ad-hoc `f64` folds in par-consuming files |
//! | G1 `panic-path`         | may-panic facts reachable from `hot_path` roots (call graph) |
//! | G2 `alloc-path`         | may-allocate facts reachable from `hot_path` roots |
//! | G3 `charge-coverage`    | charged-structure touches in measured windows reach a cachesim charge |
//! | — `graph-config`        | missing roots / dangling annotations / stale config (unsuppressible) |
//!
//! R1–R5 are per-line; G1–G3 propagate leaf facts across function
//! boundaries over the workspace call graph (`graph` module, see
//! `DESIGN.md` §5.8). Roots are marked
//! `// analyze::hot_path(<name>[, rules = "..."])` above a `fn`.
//!
//! Escape hatch (reviewed, justified, reported):
//! `// analyze::allow(<rule>, reason = "...")` — suppresses the rule
//! on its own line or the next code line; the reason is carried into
//! `results/analyze_report.json` so the inventory of accepted hazards
//! stays visible. A `panic-free-library` allow also covers
//! `panic-path` findings at the same line — one reviewed invariant
//! justifies both the local and the reachability view of the same
//! hazard.

pub mod graph;
pub mod rules;
pub mod source;

pub use rules::graph_rules::GraphConfig;

use rules::{RULE_ALLOW_GRAMMAR, RULE_GRAPH_CONFIG, RULE_PANIC_FREE, RULE_PANIC_PATH};
use source::{FileRole, SourceFile};
use std::fmt::Write as _;
use std::path::{Path, PathBuf};

/// Outcome of one rule hit after allow-annotations are applied.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum Status {
    /// A live violation: fails `--check`.
    Violation,
    /// Suppressed by an `analyze::allow` with this justification.
    Allowed(String),
}

/// One reportable finding.
#[derive(Debug, Clone)]
pub struct Finding {
    /// Rule id.
    pub rule: String,
    /// Workspace-relative path.
    pub path: String,
    /// 1-based line.
    pub line: usize,
    /// Explanation of the hazard.
    pub message: String,
    /// Violation or justified.
    pub status: Status,
}

/// Applies the allow-annotation policy to one raw hit. `panic-path`
/// findings accept a `panic-free-library` allow at the same line: the
/// two rules see the same hazard from different directions, and one
/// reviewed justification covers both.
fn apply_allows(file: &SourceFile, rule: &str, line: usize) -> Status {
    if let Some(a) = file.allow_for(rule, line) {
        return Status::Allowed(a.reason.clone());
    }
    if rule == RULE_PANIC_PATH {
        if let Some(a) = file.allow_for(RULE_PANIC_FREE, line) {
            return Status::Allowed(a.reason.clone());
        }
    }
    Status::Violation
}

/// Runs the per-file rules (R1–R5 plus the annotation-grammar checks)
/// over one parsed file. Graph rules need the whole workspace; see
/// [`scan_sources`].
pub fn scan_file(file: &SourceFile) -> Vec<Finding> {
    let path = file.path.to_string_lossy().replace('\\', "/");
    let mut out = Vec::new();
    for raw in rules::run_all(file) {
        out.push(Finding {
            rule: raw.rule.to_string(),
            path: path.clone(),
            line: raw.line,
            message: raw.message,
            status: apply_allows(file, raw.rule, raw.line),
        });
    }
    for bad in &file.bad_allows {
        out.push(Finding {
            rule: RULE_ALLOW_GRAMMAR.to_string(),
            path: path.clone(),
            line: bad.line,
            message: bad.what.clone(),
            status: Status::Violation,
        });
    }
    for bad in &file.bad_hot_paths {
        out.push(Finding {
            rule: RULE_GRAPH_CONFIG.to_string(),
            path: path.clone(),
            line: bad.line,
            message: bad.what.clone(),
            status: Status::Violation,
        });
    }
    out
}

/// Scans one in-memory source file with the per-file rules. Public so
/// the fixture tests (and the `--path` CLI mode) can run rules against
/// arbitrary snippets.
pub fn scan_source(path: &str, crate_dir: &str, role: FileRole, text: &str) -> Vec<Finding> {
    let file = SourceFile::parse(PathBuf::from(path), crate_dir.to_string(), role, text);
    let mut out = scan_file(&file);
    out.sort_by(|a, b| (a.line, &a.rule).cmp(&(b.line, &b.rule)));
    out
}

/// Scans a whole set of parsed files: per-file rules on each file,
/// then the call-graph taint rules and configuration checks over the
/// set. This is the full analysis `scan_workspace` runs; tests call it
/// with synthetic file sets and custom configs.
pub fn scan_sources(files: &[SourceFile], cfg: &GraphConfig) -> Vec<Finding> {
    let mut out = Vec::new();
    for file in files {
        out.extend(scan_file(file));
    }
    let g = graph::build(files);
    for gf in rules::graph_rules::check(files, &g, cfg) {
        let (path, status) = match gf.file {
            Some(fi) => {
                let file = &files[fi];
                let status = if gf.raw.rule == RULE_GRAPH_CONFIG {
                    Status::Violation // config errors are not suppressible
                } else {
                    apply_allows(file, gf.raw.rule, gf.raw.line)
                };
                (file.path.to_string_lossy().replace('\\', "/"), status)
            }
            None => ("<workspace>".to_string(), Status::Violation),
        };
        out.push(Finding {
            rule: gf.raw.rule.to_string(),
            path,
            line: gf.raw.line,
            message: gf.raw.message,
            status,
        });
    }
    out.sort_by(|a, b| (&a.path, a.line, &a.rule, &a.message).cmp(&(&b.path, b.line, &b.rule, &b.message)));
    out
}

/// Classifies a file path inside a crate directory.
fn role_of(rel_in_crate: &Path) -> FileRole {
    let s = rel_in_crate.to_string_lossy().replace('\\', "/");
    if s.starts_with("tests/") {
        FileRole::Test
    } else if s.starts_with("benches/") {
        FileRole::Bench
    } else if s.starts_with("src/bin/") || s == "src/main.rs" {
        FileRole::Bin
    } else {
        FileRole::Lib
    }
}

/// Recursively collects `.rs` files under `dir`.
fn collect_rs(dir: &Path, out: &mut Vec<PathBuf>) -> std::io::Result<()> {
    let mut entries: Vec<_> = std::fs::read_dir(dir)?
        .collect::<Result<Vec<_>, _>>()?
        .into_iter()
        .map(|e| e.path())
        .collect();
    entries.sort();
    for path in entries {
        if path.is_dir() {
            // `fixtures/` trees hold deliberate known-bad snippets for
            // the analyzer's own tests; they are not compiled and must
            // not fail the workspace gate.
            if path.file_name().is_some_and(|n| n == "fixtures") {
                continue;
            }
            collect_rs(&path, out)?;
        } else if path.extension().is_some_and(|e| e == "rs") {
            out.push(path);
        }
    }
    Ok(())
}

/// Parses every `.rs` file of every crate under `<root>/crates`, plus
/// the root-level `tests/` and `examples/` trees (which belong to
/// `crates/core` via path-mapped targets). `third_party/` stand-ins
/// are outside the determinism boundary and are not collected.
pub fn collect_workspace(root: &Path) -> std::io::Result<Vec<SourceFile>> {
    let crates_dir = root.join("crates");
    if !crates_dir.is_dir() {
        return Err(std::io::Error::new(
            std::io::ErrorKind::NotFound,
            format!("{} is not a workspace root (no crates/ dir)", root.display()),
        ));
    }
    let mut sources = Vec::new();
    let mut crate_dirs: Vec<_> = std::fs::read_dir(&crates_dir)?
        .collect::<Result<Vec<_>, _>>()?
        .into_iter()
        .map(|e| e.path())
        .filter(|p| p.is_dir())
        .collect();
    crate_dirs.sort();
    for crate_dir in crate_dirs {
        let crate_name = crate_dir
            .file_name()
            .map(|n| n.to_string_lossy().into_owned())
            .unwrap_or_default();
        let mut files = Vec::new();
        collect_rs(&crate_dir, &mut files)?;
        for f in files {
            let rel_in_crate = f.strip_prefix(&crate_dir).unwrap_or(&f).to_path_buf();
            let role = role_of(&rel_in_crate);
            let rel = f.strip_prefix(root).unwrap_or(&f);
            let text = std::fs::read_to_string(&f)?;
            sources.push(SourceFile::parse(
                PathBuf::from(rel.to_string_lossy().replace('\\', "/")),
                crate_name.clone(),
                role,
                &text,
            ));
        }
    }
    // Root-level integration tests and examples: path-mapped targets of
    // crates/core. Scanned as Test/Bin roles so only the universally
    // scoped rules (R3, allow-grammar) apply, and they stay out of the
    // call graph (graph covers Lib files only).
    for (dir, role) in [("tests", FileRole::Test), ("examples", FileRole::Bin)] {
        let d = root.join(dir);
        if !d.is_dir() {
            continue;
        }
        let mut files = Vec::new();
        collect_rs(&d, &mut files)?;
        for f in files {
            let rel = f.strip_prefix(root).unwrap_or(&f);
            let text = std::fs::read_to_string(&f)?;
            sources.push(SourceFile::parse(
                PathBuf::from(rel.to_string_lossy().replace('\\', "/")),
                "core".to_string(),
                role,
                &text,
            ));
        }
    }
    Ok(sources)
}

/// Scans the whole workspace: per-file rules plus the call-graph taint
/// rules with the production [`GraphConfig`].
pub fn scan_workspace(root: &Path) -> std::io::Result<Vec<Finding>> {
    let sources = collect_workspace(root)?;
    Ok(scan_sources(&sources, &GraphConfig::default()))
}

/// Serialises findings as the `results/analyze_report.json` document.
/// Hand-rolled (the workspace has no serde) but strict: all strings
/// are escaped.
pub fn report_json(findings: &[Finding]) -> String {
    fn esc(s: &str) -> String {
        let mut out = String::with_capacity(s.len() + 2);
        for c in s.chars() {
            match c {
                '"' => out.push_str("\\\""),
                '\\' => out.push_str("\\\\"),
                '\n' => out.push_str("\\n"),
                '\t' => out.push_str("\\t"),
                c if (c as u32) < 0x20 => {
                    let _ = write!(out, "\\u{:04x}", c as u32);
                }
                c => out.push(c),
            }
        }
        out
    }
    let violations = findings
        .iter()
        .filter(|f| f.status == Status::Violation)
        .count();
    let allowed = findings.len() - violations;
    let mut out = String::new();
    let _ = writeln!(out, "{{");
    let _ = writeln!(
        out,
        "  \"summary\": {{ \"total\": {}, \"violations\": {}, \"allowed\": {} }},",
        findings.len(),
        violations,
        allowed
    );
    let _ = writeln!(out, "  \"findings\": [");
    for (i, f) in findings.iter().enumerate() {
        let comma = if i + 1 == findings.len() { "" } else { "," };
        let (status, reason) = match &f.status {
            Status::Violation => ("violation", String::new()),
            Status::Allowed(r) => ("allowed", format!(", \"reason\": \"{}\"", esc(r))),
        };
        let _ = writeln!(
            out,
            "    {{ \"rule\": \"{}\", \"file\": \"{}\", \"line\": {}, \"status\": \"{}\"{}, \
             \"message\": \"{}\" }}{}",
            esc(&f.rule),
            esc(&f.path),
            f.line,
            status,
            reason,
            esc(&f.message),
            comma
        );
    }
    let _ = writeln!(out, "  ]");
    let _ = writeln!(out, "}}");
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn allowed_findings_do_not_fail_but_are_reported() {
        let text = "// analyze::allow(nondeterminism, reason = \"lookup-only map\")\n\
                    use std::collections::HashMap;\n";
        let fs = scan_source("crates/simnet/src/x.rs", "simnet", FileRole::Lib, text);
        assert_eq!(fs.len(), 1);
        assert!(matches!(&fs[0].status, Status::Allowed(r) if r == "lookup-only map"));
    }

    #[test]
    fn report_json_escapes_and_counts() {
        let fs = vec![Finding {
            rule: "nondeterminism".into(),
            path: "a\"b.rs".into(),
            line: 3,
            message: "quote \" and backslash \\".into(),
            status: Status::Violation,
        }];
        let j = report_json(&fs);
        assert!(j.contains("\"violations\": 1"));
        assert!(j.contains("a\\\"b.rs"));
        assert!(j.contains("backslash \\\\"));
    }
}
