//! The per-file source model every rule runs against.
//!
//! A [`SourceFile`] splits a `.rs` file into three parallel views with
//! identical line structure:
//!
//! * `code` — the source with every comment and every string/char
//!   literal blanked to spaces, so token searches cannot match inside
//!   doc text or format strings;
//! * `comments` — the comment text per line (and nothing else), which
//!   is where `SAFETY:`, `draws: N`, and `analyze::allow(...)`
//!   annotations live;
//! * `lines` — the raw text, used only for messages.
//!
//! On top of that it marks `#[cfg(test)]` / `#[test]` regions (rules
//! that exempt test code consult [`SourceFile::is_test`]) and parses
//! the allow-annotation grammar:
//!
//! ```text
//! // analyze::allow(<rule>, reason = "<non-empty justification>")
//! ```
//!
//! An allow suppresses findings of `<rule>` on the annotation's own
//! line and on the next line that contains code (so it works both as a
//! trailing comment and as a standalone comment above the hazard). A
//! missing or empty `reason` is itself reported, as rule
//! `allow-grammar` — an unjustified escape hatch never passes.

use std::path::PathBuf;

/// Where a file sits in its crate, which decides rule applicability.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum FileRole {
    /// Library source under `src/` (not `src/bin/`, not `main.rs`).
    Lib,
    /// A binary: `src/bin/*` or `src/main.rs`.
    Bin,
    /// Integration tests under `tests/`.
    Test,
    /// Criterion-style benches under `benches/`.
    Bench,
}

/// One parsed allow annotation.
#[derive(Debug, Clone)]
pub struct Allow {
    /// Rule id the annotation names, e.g. `nondeterminism`.
    pub rule: String,
    /// The justification string (non-empty by construction).
    pub reason: String,
    /// 1-based line of the annotation.
    pub line: usize,
}

/// A malformed allow annotation (reported as rule `allow-grammar`).
#[derive(Debug, Clone)]
pub struct BadAllow {
    /// 1-based line of the annotation.
    pub line: usize,
    /// What was wrong with it.
    pub what: String,
}

/// One parsed hot-path root annotation:
///
/// ```text
/// // analyze::hot_path(<name>)
/// // analyze::hot_path(<name>, rules = "panic-path, alloc-path")
/// ```
///
/// Marks the next `fn` definition as a taint-propagation root for the
/// call-graph rules (all three when `rules` is empty). See
/// `DESIGN.md` §5.8.
#[derive(Debug, Clone)]
pub struct HotPath {
    /// Root name, e.g. `engine-batch-loop`.
    pub name: String,
    /// Graph rules this root seeds; empty means all graph rules.
    pub rules: Vec<String>,
    /// 1-based line of the annotation.
    pub line: usize,
}

/// A `.rs` file prepared for rule scanning.
#[derive(Debug)]
pub struct SourceFile {
    /// Workspace-relative path, e.g. `crates/simnet/src/impair.rs`.
    pub path: PathBuf,
    /// Directory name under `crates/` (`core`, `simnet`, ...). Note
    /// this is the directory, not the package name (`crates/core` is
    /// package `ldlp`).
    pub crate_dir: String,
    /// Role of the file inside its crate.
    pub role: FileRole,
    /// Raw lines.
    pub lines: Vec<String>,
    /// Lines with comments and string/char literals blanked.
    pub code: Vec<String>,
    /// Comment text per line (block comments contribute per line).
    pub comments: Vec<String>,
    /// True for lines inside `#[cfg(test)]` items or `#[test]` fns.
    test_mask: Vec<bool>,
    /// Well-formed allow annotations, in line order.
    pub allows: Vec<Allow>,
    /// Malformed allow annotations.
    pub bad_allows: Vec<BadAllow>,
    /// Well-formed hot-path root annotations, in line order.
    pub hot_paths: Vec<HotPath>,
    /// Malformed hot-path annotations (reported as `graph-config`).
    pub bad_hot_paths: Vec<BadAllow>,
}

impl SourceFile {
    /// Parses `text` as the file at `path` (workspace-relative).
    pub fn parse(path: PathBuf, crate_dir: String, role: FileRole, text: &str) -> Self {
        let lines: Vec<String> = text.lines().map(str::to_owned).collect();
        let (code, comments) = scrub(&lines);
        let test_mask = mark_test_regions(&code);
        let (allows, bad_allows) = parse_allows(&comments);
        let (hot_paths, bad_hot_paths) = parse_hot_paths(&comments);
        SourceFile {
            path,
            crate_dir,
            role,
            lines,
            code,
            comments,
            test_mask,
            allows,
            bad_allows,
            hot_paths,
            bad_hot_paths,
        }
    }

    /// Number of lines.
    pub fn len(&self) -> usize {
        self.lines.len()
    }

    /// True if the file has no lines.
    pub fn is_empty(&self) -> bool {
        self.lines.is_empty()
    }

    /// True if 1-based `line` is inside test-only code (or the whole
    /// file is a `tests/`-style target).
    pub fn is_test(&self, line: usize) -> bool {
        self.role == FileRole::Test
            || self
                .test_mask
                .get(line.saturating_sub(1))
                .copied()
                .unwrap_or(false)
    }

    /// The allow annotation (if any) covering 1-based `line` for
    /// `rule`: one on the same line, or one on the nearest annotation
    /// line directly above (walking up through comment-only lines).
    pub fn allow_for(&self, rule: &str, line: usize) -> Option<&Allow> {
        // Trailing on the same line wins.
        if let Some(a) = self.allows.iter().find(|a| a.line == line && a.rule == rule) {
            return Some(a);
        }
        // Standalone annotation above: the annotation's line must have
        // no code, and every line strictly between it and `line` must
        // be code-free or an attribute (`#[...]` lines are part of the
        // annotated item's header, e.g. a scoped clippy allow).
        let mut l = line.saturating_sub(1);
        while l >= 1 {
            let idx = l - 1;
            let trimmed = self.code[idx].trim();
            let is_attr = trimmed.starts_with("#[") || trimmed.starts_with("#![");
            let has_code = !trimmed.is_empty() && !is_attr;
            if let Some(a) = self.allows.iter().find(|a| a.line == l && a.rule == rule) {
                if !has_code {
                    return Some(a);
                }
                return None;
            }
            if has_code {
                return None;
            }
            l -= 1;
        }
        None
    }

    /// Walks upward from the line before 1-based `line` through the
    /// item's contiguous header (comments, attributes, blank lines are
    /// NOT allowed — the header stops at the first blank or code line)
    /// and returns true if any comment in it satisfies `pred`. Also
    /// checks the trailing comment on `line` itself.
    pub fn header_comment_matches(&self, line: usize, mut pred: impl FnMut(&str) -> bool) -> bool {
        if pred(&self.comments[line - 1]) {
            return true;
        }
        let mut l = line.saturating_sub(1);
        while l >= 1 {
            let idx = l - 1;
            let code = self.code[idx].trim();
            let comment = self.comments[idx].trim();
            let is_attr = code.starts_with("#[") || code.starts_with("#![");
            if !code.is_empty() && !is_attr {
                return false;
            }
            if code.is_empty() && comment.is_empty() {
                // Blank line terminates the header block.
                return false;
            }
            if pred(comment) {
                return true;
            }
            l -= 1;
        }
        false
    }
}

/// Blanks comments and string/char literals, preserving line structure.
/// Returns `(code, comments)` where `comments[i]` is the concatenated
/// comment text of line `i`.
fn scrub(lines: &[String]) -> (Vec<String>, Vec<String>) {
    #[derive(Clone, Copy, PartialEq)]
    enum St {
        Normal,
        /// Inside `/* ... */`, with nesting depth.
        Block(u32),
        /// Inside a normal string literal.
        Str,
        /// Inside a raw string literal with N hashes.
        Raw(u32),
    }

    let mut code = Vec::with_capacity(lines.len());
    let mut comments = vec![String::new(); lines.len()];
    let mut st = St::Normal;

    for (li, line) in lines.iter().enumerate() {
        let b: Vec<char> = line.chars().collect();
        let mut out = String::with_capacity(b.len());
        let mut i = 0usize;
        while i < b.len() {
            match st {
                St::Block(depth) => {
                    if b[i] == '/' && i + 1 < b.len() && b[i + 1] == '*' {
                        st = St::Block(depth + 1);
                        out.push_str("  ");
                        i += 2;
                    } else if b[i] == '*' && i + 1 < b.len() && b[i + 1] == '/' {
                        st = if depth == 1 { St::Normal } else { St::Block(depth - 1) };
                        out.push_str("  ");
                        i += 2;
                    } else {
                        comments[li].push(b[i]);
                        out.push(' ');
                        i += 1;
                    }
                }
                St::Str => {
                    if b[i] == '\\' && i + 1 < b.len() {
                        out.push_str("  ");
                        i += 2;
                    } else if b[i] == '"' {
                        out.push('"');
                        st = St::Normal;
                        i += 1;
                    } else {
                        out.push(' ');
                        i += 1;
                    }
                }
                St::Raw(hashes) => {
                    // Close on `"` followed by exactly `hashes` hashes.
                    if b[i] == '"'
                        && b[i + 1..].iter().take(hashes as usize).filter(|&&c| c == '#').count()
                            == hashes as usize
                    {
                        out.push('"');
                        for _ in 0..hashes {
                            out.push('#');
                        }
                        st = St::Normal;
                        i += 1 + hashes as usize;
                    } else {
                        out.push(' ');
                        i += 1;
                    }
                }
                St::Normal => {
                    let c = b[i];
                    if c == '/' && i + 1 < b.len() && b[i + 1] == '/' {
                        // Line comment: rest of the line is comment text.
                        let text: String = b[i + 2..].iter().collect();
                        // Doc comments start with another / or !.
                        comments[li].push_str(text.trim_start_matches(['/', '!']));
                        while out.len() < b.len() {
                            out.push(' ');
                        }
                        i = b.len();
                    } else if c == '/' && i + 1 < b.len() && b[i + 1] == '*' {
                        st = St::Block(1);
                        out.push_str("  ");
                        i += 2;
                    } else if c == '"' {
                        out.push('"');
                        st = St::Str;
                        i += 1;
                    } else if c == 'r'
                        && i + 1 < b.len()
                        && (b[i + 1] == '"' || b[i + 1] == '#')
                        && !prev_is_ident(&b, i)
                    {
                        // Raw string r"..." / r#"..."#.
                        let mut j = i + 1;
                        let mut hashes = 0u32;
                        while j < b.len() && b[j] == '#' {
                            hashes += 1;
                            j += 1;
                        }
                        if j < b.len() && b[j] == '"' {
                            out.push('r');
                            for _ in 0..hashes {
                                out.push('#');
                            }
                            out.push('"');
                            st = St::Raw(hashes);
                            i = j + 1;
                        } else {
                            out.push(c);
                            i += 1;
                        }
                    } else if c == '\'' {
                        // Char literal vs. lifetime. A char literal is
                        // 'x' or an escape '\..'; anything else (e.g.
                        // 'static, 'a,) is a lifetime and passes through.
                        if i + 1 < b.len() && b[i + 1] == '\\' {
                            // Escape: skip to the closing quote.
                            let mut j = i + 2;
                            while j < b.len() && b[j] != '\'' {
                                j += 1;
                            }
                            for _ in i..=j.min(b.len() - 1) {
                                out.push(' ');
                            }
                            i = j + 1;
                        } else if i + 2 < b.len() && b[i + 2] == '\'' {
                            out.push_str("   ");
                            i += 3;
                        } else {
                            out.push(c);
                            i += 1;
                        }
                    } else {
                        out.push(c);
                        i += 1;
                    }
                }
            }
        }
        code.push(out);
    }
    (code, comments)
}

fn prev_is_ident(b: &[char], i: usize) -> bool {
    i > 0 && (b[i - 1].is_alphanumeric() || b[i - 1] == '_')
}

/// Marks the body of every `#[cfg(test)]`-gated item and every
/// `#[test]` fn by matching braces on the scrubbed code.
fn mark_test_regions(code: &[String]) -> Vec<bool> {
    let mut mask = vec![false; code.len()];
    for (i, line) in code.iter().enumerate() {
        let t = line.trim();
        if !(t.starts_with("#[cfg(test)]") || t.starts_with("#[test]")) {
            continue;
        }
        // Find the item's opening brace from the next line on (the
        // attribute line itself never opens the body).
        let mut depth = 0i32;
        let mut opened = false;
        for (j, l) in code.iter().enumerate().skip(i) {
            mask[j] = true;
            for c in l.chars() {
                match c {
                    '{' => {
                        depth += 1;
                        opened = true;
                    }
                    '}' => depth -= 1,
                    _ => {}
                }
            }
            if opened && depth <= 0 {
                break;
            }
        }
    }
    mask
}

/// Parses every `analyze::allow(rule, reason = "...")` out of the
/// per-line comment text.
fn parse_allows(comments: &[String]) -> (Vec<Allow>, Vec<BadAllow>) {
    let mut allows = Vec::new();
    let mut bad = Vec::new();
    for (idx, c) in comments.iter().enumerate() {
        let line = idx + 1;
        // A directive is a comment that *starts* with the call form;
        // prose that merely mentions `analyze::allow(...)` mid-sentence
        // (docs, this file) is not an annotation.
        let Some(rest) = c.trim_start().strip_prefix("analyze::allow(") else {
            continue;
        };
        // Grammar: `<rule> , reason = "<text without quotes>" )` — the
        // reason may contain anything but a double quote (parens are
        // fine; invariants like `set.len() == 1` read naturally).
        let Some((rule_part, after_rule)) = rest.split_once(',') else {
            bad.push(BadAllow {
                line,
                what: "analyze::allow needs `rule, reason = \"...\"`".into(),
            });
            continue;
        };
        let rule = rule_part.trim().to_string();
        if rule.is_empty() || rule.contains(')') {
            bad.push(BadAllow {
                line,
                what: "analyze::allow missing rule name".into(),
            });
            continue;
        }
        let reason = after_rule
            .trim_start()
            .strip_prefix("reason")
            .map(str::trim_start)
            .and_then(|r| r.strip_prefix('='))
            .map(str::trim_start)
            .and_then(|r| r.strip_prefix('"'))
            .and_then(|r| r.split_once('"'))
            .filter(|(_, tail)| tail.trim_start().starts_with(')'))
            .map(|(reason, _)| reason.trim());
        match reason {
            Some(r) if !r.is_empty() => allows.push(Allow {
                rule,
                reason: r.to_string(),
                line,
            }),
            _ => bad.push(BadAllow {
                line,
                what: format!(
                    "analyze::allow({rule}) needs a non-empty reason = \"...\" justification \
                     closed by `)`"
                ),
            }),
        }
    }
    (allows, bad)
}

/// Parses every `analyze::hot_path(name[, rules = "a, b"])` out of the
/// per-line comment text. Names are kebab-case identifiers; the
/// optional `rules` list restricts which graph rules treat the
/// annotated fn as a root (validated against the rule catalog by the
/// graph checker, not here).
fn parse_hot_paths(comments: &[String]) -> (Vec<HotPath>, Vec<BadAllow>) {
    let mut roots = Vec::new();
    let mut bad = Vec::new();
    for (idx, c) in comments.iter().enumerate() {
        let line = idx + 1;
        let Some(rest) = c.trim_start().strip_prefix("analyze::hot_path(") else {
            continue;
        };
        let name_ok = |s: &str| {
            !s.is_empty()
                && s.bytes()
                    .all(|b| b.is_ascii_alphanumeric() || b == b'-' || b == b'_')
        };
        // Form 1: `name)`.
        if let Some((name, _)) = rest.split_once(')') {
            if !name.contains(',') {
                let name = name.trim();
                if name_ok(name) {
                    roots.push(HotPath {
                        name: name.to_string(),
                        rules: Vec::new(),
                        line,
                    });
                } else {
                    bad.push(BadAllow {
                        line,
                        what: format!("analyze::hot_path name `{name}` must be kebab-case"),
                    });
                }
                continue;
            }
        }
        // Form 2: `name, rules = "a, b")`.
        let parsed = rest.split_once(',').and_then(|(name, after)| {
            let name = name.trim();
            let list = after
                .trim_start()
                .strip_prefix("rules")
                .map(str::trim_start)
                .and_then(|r| r.strip_prefix('='))
                .map(str::trim_start)
                .and_then(|r| r.strip_prefix('"'))
                .and_then(|r| r.split_once('"'))
                .filter(|(_, tail)| tail.trim_start().starts_with(')'))
                .map(|(list, _)| list)?;
            let rules: Vec<String> = list
                .split(',')
                .map(|r| r.trim().to_string())
                .filter(|r| !r.is_empty())
                .collect();
            if name_ok(name) && !rules.is_empty() {
                Some(HotPath {
                    name: name.to_string(),
                    rules,
                    line,
                })
            } else {
                None
            }
        });
        match parsed {
            Some(hp) => roots.push(hp),
            None => bad.push(BadAllow {
                line,
                what: "analyze::hot_path needs `name` or `name, rules = \"rule, rule\"`".into(),
            }),
        }
    }
    (roots, bad)
}

/// True if `hay` contains `needle` as a whole word (neither neighbour
/// is an identifier character).
pub fn contains_word(hay: &str, needle: &str) -> bool {
    find_word(hay, needle).is_some()
}

/// Byte offset of the first whole-word occurrence of `needle`.
pub fn find_word(hay: &str, needle: &str) -> Option<usize> {
    let bytes = hay.as_bytes();
    let mut from = 0;
    while let Some(pos) = hay[from..].find(needle) {
        let at = from + pos;
        let before_ok = at == 0 || !is_ident_byte(bytes[at - 1]);
        let end = at + needle.len();
        let after_ok = end >= bytes.len() || !is_ident_byte(bytes[end]);
        if before_ok && after_ok {
            return Some(at);
        }
        from = at + 1;
    }
    None
}

fn is_ident_byte(b: u8) -> bool {
    b == b'_' || b.is_ascii_alphanumeric()
}

#[cfg(test)]
mod tests {
    use super::*;

    fn parse(text: &str) -> SourceFile {
        SourceFile::parse(
            PathBuf::from("crates/x/src/lib.rs"),
            "x".into(),
            FileRole::Lib,
            text,
        )
    }

    #[test]
    fn strings_and_comments_are_blanked_but_structure_kept() {
        let f = parse("let a = \"HashMap inside\"; // HashMap in comment\nlet b = 1;\n");
        assert!(!f.code[0].contains("HashMap"));
        assert!(f.comments[0].contains("HashMap in comment"));
        assert_eq!(f.code[1], "let b = 1;");
    }

    #[test]
    fn raw_strings_and_char_literals_are_blanked() {
        let f = parse("let s = r#\"HashMap \" quote\"#; let c = '\\n'; let l: &'static str = s;");
        assert!(!f.code[0].contains("HashMap"));
        assert!(f.code[0].contains("&'static str"), "{}", f.code[0]);
    }

    #[test]
    fn block_comments_nest_and_span_lines() {
        let f = parse("/* outer /* inner */ still comment */ let x = 1;\n/* a\nb */ let y = 2;");
        assert!(f.code[0].contains("let x = 1;"));
        assert!(!f.code[0].contains("outer"));
        assert!(f.code[2].contains("let y = 2;"));
        assert!(f.comments[1].contains('a') || f.comments[0].contains('a'));
    }

    #[test]
    fn cfg_test_region_is_marked() {
        let f = parse("fn lib() {}\n#[cfg(test)]\nmod tests {\n    fn t() {}\n}\nfn tail() {}\n");
        assert!(!f.is_test(1));
        assert!(f.is_test(2));
        assert!(f.is_test(4));
        assert!(f.is_test(5));
        assert!(!f.is_test(6));
    }

    #[test]
    fn allow_grammar_requires_reason() {
        let f = parse(
            "// analyze::allow(nondeterminism, reason = \"lookup-only\")\nlet m = 1;\n\
             // analyze::allow(nondeterminism)\nlet n = 2;\n",
        );
        assert_eq!(f.allows.len(), 1);
        assert_eq!(f.allows[0].rule, "nondeterminism");
        assert_eq!(f.allows[0].reason, "lookup-only");
        assert_eq!(f.bad_allows.len(), 1);
        assert!(f.allow_for("nondeterminism", 2).is_some());
        assert!(f.allow_for("nondeterminism", 4).is_none());
    }

    #[test]
    fn trailing_allow_covers_its_own_line_only() {
        let f = parse("let m = 1; // analyze::allow(r, reason = \"x\")\nlet n = 2;\n");
        assert!(f.allow_for("r", 1).is_some());
        assert!(f.allow_for("r", 2).is_none(), "line 1 has code, so it does not project down");
    }

    #[test]
    fn word_matching_respects_identifier_boundaries() {
        assert!(contains_word("use std::collections::HashMap;", "HashMap"));
        assert!(!contains_word("type MyHashMap = ();", "HashMap"));
        assert!(!contains_word("HashMapLike", "HashMap"));
    }
}
