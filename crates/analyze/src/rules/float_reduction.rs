//! R5 `float-reduction` — files that fan work across the parallel
//! sweep executor must not reduce `f64`s ad hoc.
//!
//! Float addition is not associative: a `sum::<f64>()` or `fold` whose
//! operand order depends on scheduling produces different bits on
//! different thread counts, which is exactly what the byte-identical
//! CSV contract forbids. `simnet::par::run_indexed` already hands
//! results back in index order, and the blessed seed-order reduction
//! helpers (`SimReport::average` and friends in `simnet::stats`) fold
//! them left-to-right; everything else in a par-consuming file is a
//! hazard until reviewed.
//!
//! Scope: non-test library code, in the simulation crates plus
//! `bench` (whose `sweep`/`impair` modules are the main consumers),
//! restricted to files that reference the parallel executor at all.
//! `crates/simnet/src/stats.rs` is the blessed reduction module and is
//! exempt.

use super::{RawFinding, RULE_FLOAT_REDUCTION};
use crate::source::{FileRole, SourceFile};

/// Files providing the blessed seed-order reduction helpers.
const BLESSED: &[&str] = &["crates/simnet/src/stats.rs"];

const SCOPE_CRATES: &[&str] = &["simnet", "core", "cachesim", "netstack", "signaling", "bench", "smp"];

const REDUCTIONS: &[&str] = &["sum::<f64>", ".fold("];

/// Runs R5 over one file.
pub fn check(file: &SourceFile) -> Vec<RawFinding> {
    if !SCOPE_CRATES.contains(&file.crate_dir.as_str()) || file.role != FileRole::Lib {
        return Vec::new();
    }
    let path = file.path.to_string_lossy().replace('\\', "/");
    if BLESSED.iter().any(|b| path.ends_with(b) || path == *b) {
        return Vec::new();
    }
    // Only files that touch the parallel executor are in scope.
    let uses_par = file
        .code
        .iter()
        .any(|l| l.contains("run_indexed") || l.contains("par::"));
    if !uses_par {
        return Vec::new();
    }
    let mut out = Vec::new();
    for (idx, code) in file.code.iter().enumerate() {
        let line = idx + 1;
        if file.is_test(line) {
            continue;
        }
        for pat in REDUCTIONS {
            if code.contains(pat) {
                out.push(RawFinding {
                    rule: RULE_FLOAT_REDUCTION,
                    line,
                    message: format!(
                        "`{pat}` in a par-consuming file; reduce via the seed-order helpers in \
                         simnet::stats (SimReport::average) or justify"
                    ),
                });
            }
        }
    }
    out
}
