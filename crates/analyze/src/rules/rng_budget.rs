//! R2 `rng-draw-budget` — every function in `simnet::impair` and
//! `workload::stream` that consumes randomness must declare its
//! per-call draw count with a `// draws: N` header comment, and N must
//! equal the number of RNG call sites in the body.
//!
//! The impairment channel's replayability contract is "a fixed number
//! of RNG draws per packet, regardless of outcome" (PR 2): if a
//! refactor adds a conditional draw, fates of later packets start to
//! depend on earlier outcomes and every golden breaks. The annotation
//! makes the budget part of the reviewed source, and this rule keeps
//! the annotation honest by counting the draw call sites statically.
//!
//! The count is of *call sites*, the shape the fixed-draw discipline
//! enforces: draws inside loops would defeat the contract and also get
//! flagged in review, since the annotation is right next to the code.

use super::{RawFinding, RULE_RNG_BUDGET};
use crate::source::{FileRole, SourceFile};

/// RNG-consuming method call patterns of the vendored `rand` API.
const DRAW_CALLS: &[&str] = &[
    ".random()",
    ".random::<",
    ".random_range(",
    ".random_bool(",
    ".next_u32(",
    ".next_u64(",
    ".fill_bytes(",
    ".sample_from(",
];

/// Runs R2 over one file. In scope: `simnet`'s `impair` module and
/// `workload`'s `stream` module — the two fixed-draw-budget surfaces
/// (the impairment channel and the mixed-stream generator).
pub fn check(file: &SourceFile) -> Vec<RawFinding> {
    let path = file.path.to_string_lossy();
    let in_scope = (file.crate_dir == "simnet" && path.contains("impair"))
        || (file.crate_dir == "workload" && path.contains("stream"));
    if !in_scope || file.role != FileRole::Lib {
        return Vec::new();
    }
    let mut out = Vec::new();
    for func in functions(file) {
        if file.is_test(func.sig_line) {
            continue;
        }
        let draws: usize = (func.body_start..=func.body_end)
            .map(|l| count_draws(&file.code[l - 1]))
            .sum();
        if draws == 0 {
            continue;
        }
        let declared = declared_draws(file, func.sig_line);
        match declared {
            None => out.push(RawFinding {
                rule: RULE_RNG_BUDGET,
                line: func.sig_line,
                message: format!(
                    "fn `{}` makes {draws} RNG draw(s) but has no `// draws: N` annotation",
                    func.name
                ),
            }),
            Some(n) if n != draws => out.push(RawFinding {
                rule: RULE_RNG_BUDGET,
                line: func.sig_line,
                message: format!(
                    "fn `{}` declares `draws: {n}` but the body has {draws} RNG call site(s)",
                    func.name
                ),
            }),
            Some(_) => {}
        }
    }
    out
}

fn count_draws(code: &str) -> usize {
    DRAW_CALLS.iter().map(|p| code.matches(p).count()).sum()
}

/// Looks for `draws: N` in the function's header comment block.
fn declared_draws(file: &SourceFile, sig_line: usize) -> Option<usize> {
    let mut found = None;
    file.header_comment_matches(sig_line, |c| {
        if let Some(pos) = c.find("draws:") {
            let tail = c[pos + "draws:".len()..].trim();
            let digits: String = tail.chars().take_while(char::is_ascii_digit).collect();
            if let Ok(n) = digits.parse::<usize>() {
                found = Some(n);
                return true;
            }
        }
        false
    });
    found
}

struct Func {
    name: String,
    sig_line: usize,
    body_start: usize,
    body_end: usize,
}

/// Finds every `fn` item with a body, via brace matching on the
/// scrubbed code.
fn functions(file: &SourceFile) -> Vec<Func> {
    let mut out = Vec::new();
    for (idx, code) in file.code.iter().enumerate() {
        let Some(pos) = crate::source::find_word(code, "fn") else {
            continue;
        };
        let name: String = code[pos + 2..]
            .trim_start()
            .chars()
            .take_while(|c| c.is_alphanumeric() || *c == '_')
            .collect();
        if name.is_empty() {
            continue;
        }
        // Walk forward to the opening brace of the body (a `;` first
        // means a bodyless declaration, e.g. in a trait).
        let mut depth = 0i32;
        let mut started = false;
        let mut body_start = 0usize;
        'scan: for (j, l) in file.code.iter().enumerate().skip(idx) {
            let chars: Vec<char> = l.chars().collect();
            let from = if j == idx { pos } else { 0 };
            for &c in &chars[from.min(chars.len())..] {
                match c {
                    ';' if !started && depth == 0 => break 'scan,
                    '{' => {
                        if !started {
                            started = true;
                            body_start = j + 1;
                        }
                        depth += 1;
                    }
                    '}' => {
                        depth -= 1;
                        if started && depth == 0 {
                            out.push(Func {
                                name: name.clone(),
                                sig_line: idx + 1,
                                body_start,
                                body_end: j + 1,
                            });
                            break 'scan;
                        }
                    }
                    // Parenthesised/general nesting is irrelevant: we
                    // only track braces, and generic `{}` inside the
                    // signature (impl Trait blocks) is not a thing.
                    _ => {}
                }
            }
        }
    }
    out
}
