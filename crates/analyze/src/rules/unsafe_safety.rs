//! R3 `unsafe-safety` — every `unsafe` block, fn, impl, or trait must
//! carry a `// SAFETY:` comment: trailing on the same line, or in the
//! contiguous comment/attribute header directly above.
//!
//! Applies to every file in every crate, tests included: a safety
//! argument is documentation of an obligation the compiler stopped
//! checking, and that obligation exists in test code too (the
//! counting-allocator test implements `GlobalAlloc`, for instance).

use super::{RawFinding, RULE_UNSAFE_SAFETY};
use crate::source::{find_word, SourceFile};

/// Runs R3 over one file.
pub fn check(file: &SourceFile) -> Vec<RawFinding> {
    let mut out = Vec::new();
    for (idx, code) in file.code.iter().enumerate() {
        let line = idx + 1;
        // `unsafe` in a signature (`unsafe fn`, `unsafe impl`, `unsafe
        // trait`) and `unsafe {` blocks all need the comment; there is
        // no other legal position for the keyword, so every occurrence
        // counts. One finding per line is enough.
        if find_word(code, "unsafe").is_some()
            && !file.header_comment_matches(line, |c| c.contains("SAFETY:"))
        {
            out.push(RawFinding {
                rule: RULE_UNSAFE_SAFETY,
                line,
                message: "`unsafe` without a `// SAFETY:` comment explaining the obligation".into(),
            });
        }
    }
    out
}
