//! The call-graph taint rules (`panic-path`, `alloc-path`,
//! `charge-coverage`) plus the `graph-config` validity checks that
//! keep the rule configuration itself from rotting.
//!
//! All three rules share one mechanism: [`crate::graph::build`]
//! extracts function definitions, resolved call edges, and leaf facts;
//! this module BFS-propagates the facts to the functions marked
//! `// analyze::hot_path(<name>)` and reports every fact a hot path
//! can reach. The finding lands on the *fact's* line (the leaf), not
//! the root: that is where the fix or the `analyze::allow` belongs,
//! and one justified leaf neutralises every path through it.
//!
//! `charge-coverage` inverts the direction: for every function
//! reachable from a measured-window root that *touches* a charged
//! structure (see [`crate::graph::CHARGED_TYPES`]), some `cachesim`
//! charge call ([`crate::graph::CHARGE_FNS`]) must be forward-reachable
//! from it — through its own body or its callees. A touch whose
//! function can never reach a charge is an un-costed data-structure
//! access: the D-miss numbers silently lie about it.
//!
//! `graph-config` findings are not suppressible (like `allow-grammar`):
//! they mean the *configuration* is wrong — a required root that no
//! annotation provides, an annotation that attaches to no `fn`, a
//! `rules = "..."` list naming an unknown rule, or a stale
//! `PANIC_FREE_FILES`/crate-list entry pointing at a path that no
//! longer exists. Stale config must fail loudly, not rot silently.

use super::{
    RawFinding, RULE_ALLOC_PATH, RULE_CHARGE_COVERAGE, RULE_GRAPH_CONFIG, RULE_PANIC_PATH,
};
use crate::graph::{CodeGraph, Fact, FactKind, FnId};
use crate::source::SourceFile;
use std::collections::BTreeMap;

/// The graph rules a `hot_path` annotation may name in its
/// `rules = "..."` list. An annotation without a list seeds all three.
pub const GRAPH_RULES: &[&str] = &[RULE_PANIC_PATH, RULE_ALLOC_PATH, RULE_CHARGE_COVERAGE];

/// Root names that must exist somewhere in the workspace. If a
/// refactor renames or deletes an annotated function, the build fails
/// here instead of silently analyzing nothing.
pub const REQUIRED_ROOTS: &[&str] = &[
    "engine-batch-loop",
    "smp-event-loop",
    "netstack-rx",
    "oatable-probe",
    "simnet-measured-window",
    "smp-closed-loop",
    "signaling-call-path",
    "workload-dispatch",
];

/// Configuration for the graph rules, split out so tests and fixtures
/// can run with their own root/path lists while `scan_workspace` uses
/// the production [`GraphConfig::default`].
#[derive(Debug, Clone)]
pub struct GraphConfig {
    /// Root names that must be attached to at least one `fn`.
    pub required_roots: Vec<String>,
    /// `panic-free-library` single-file entries; each must name an
    /// existing scanned file.
    pub panic_free_files: Vec<String>,
    /// `panic-free-library` crate list; each must name a scanned crate.
    pub panic_free_crates: Vec<String>,
    /// `nondeterminism` crate list; each must name a scanned crate.
    pub sim_crates: Vec<String>,
    /// Path substrings other rules scope by (e.g. `rng-draw-budget`
    /// applies to `impair` files); each must match at least one
    /// scanned library file so the scope cannot silently go empty.
    pub path_markers: Vec<String>,
}

impl Default for GraphConfig {
    fn default() -> Self {
        GraphConfig {
            required_roots: REQUIRED_ROOTS.iter().map(|s| s.to_string()).collect(),
            panic_free_files: super::panic_free::PANIC_FREE_FILES
                .iter()
                .map(|s| s.to_string())
                .collect(),
            panic_free_crates: super::panic_free::PANIC_FREE_CRATES
                .iter()
                .map(|s| s.to_string())
                .collect(),
            sim_crates: super::nondeterminism::SIM_CRATES
                .iter()
                .map(|s| s.to_string())
                .collect(),
            path_markers: vec!["impair".to_string(), "stream".to_string()],
        }
    }
}

/// A graph-level finding: `file` indexes into the scanned file slice,
/// or is `None` for workspace-level configuration errors.
#[derive(Debug, Clone)]
pub struct GraphFinding {
    /// Index into the file slice the graph was built from.
    pub file: Option<usize>,
    /// The finding itself.
    pub raw: RawFinding,
}

fn gf(file: Option<usize>, rule: &'static str, line: usize, message: String) -> GraphFinding {
    GraphFinding {
        file,
        raw: RawFinding { rule, line, message },
    }
}

/// Runs the configuration validity checks (`graph-config`).
pub fn check_config(
    files: &[SourceFile],
    graph: &CodeGraph,
    cfg: &GraphConfig,
) -> Vec<GraphFinding> {
    let mut out = Vec::new();

    // Malformed hot_path annotations.
    for (fi, file) in files.iter().enumerate() {
        for bad in &file.bad_hot_paths {
            out.push(gf(Some(fi), RULE_GRAPH_CONFIG, bad.line, bad.what.clone()));
        }
        // `rules = "..."` lists must name known graph rules.
        for hp in &file.hot_paths {
            for r in &hp.rules {
                if !GRAPH_RULES.contains(&r.as_str()) {
                    out.push(gf(
                        Some(fi),
                        RULE_GRAPH_CONFIG,
                        hp.line,
                        format!(
                            "hot_path `{}` names unknown graph rule `{r}` (known: {})",
                            hp.name,
                            GRAPH_RULES.join(", ")
                        ),
                    ));
                }
            }
        }
    }

    // Annotations that attached to no function.
    for (fi, line, name) in &graph.unattached_roots {
        out.push(gf(
            Some(*fi),
            RULE_GRAPH_CONFIG,
            *line,
            format!(
                "hot_path `{name}` attaches to no library `fn` below it \
                 (deleted, moved, or now test-only?)"
            ),
        ));
    }

    // Required roots must exist.
    let mut attached: BTreeMap<&str, usize> = BTreeMap::new();
    for f in &graph.fns {
        for r in &f.roots {
            *attached.entry(r.name.as_str()).or_default() += 1;
        }
    }
    for req in &cfg.required_roots {
        if !attached.contains_key(req.as_str()) {
            out.push(gf(
                None,
                RULE_GRAPH_CONFIG,
                0,
                format!(
                    "required hot-path root `{req}` is annotated nowhere in the workspace \
                     — re-annotate the function or update REQUIRED_ROOTS"
                ),
            ));
        }
    }

    // Stale file/crate/scope configuration entries.
    let lib_paths: Vec<String> = files
        .iter()
        .map(|f| f.path.to_string_lossy().replace('\\', "/"))
        .collect();
    let crates: Vec<&str> = files.iter().map(|f| f.crate_dir.as_str()).collect();
    for p in &cfg.panic_free_files {
        if !lib_paths.iter().any(|lp| lp == p) {
            out.push(gf(
                None,
                RULE_GRAPH_CONFIG,
                0,
                format!("PANIC_FREE_FILES entry `{p}` matches no scanned file — stale path"),
            ));
        }
    }
    for (list, name) in [
        (&cfg.panic_free_crates, "PANIC_FREE_CRATES"),
        (&cfg.sim_crates, "SIM_CRATES"),
    ] {
        for c in list {
            if !crates.iter().any(|k| k == c) {
                out.push(gf(
                    None,
                    RULE_GRAPH_CONFIG,
                    0,
                    format!("{name} entry `{c}` matches no scanned crate — stale crate name"),
                ));
            }
        }
    }
    for m in &cfg.path_markers {
        if !lib_paths.iter().any(|lp| lp.contains(m.as_str())) {
            out.push(gf(
                None,
                RULE_GRAPH_CONFIG,
                0,
                format!(
                    "scoped-rule path marker `{m}` matches no scanned file — \
                     a path-scoped rule now covers nothing"
                ),
            ));
        }
    }
    out
}

/// Roots seeding `rule`: `(root name, fn)` pairs, name-sorted so
/// finding messages are deterministic.
fn roots_for(graph: &CodeGraph, rule: &str) -> Vec<(String, FnId)> {
    let mut out = Vec::new();
    for (id, f) in graph.fns.iter().enumerate() {
        for hp in &f.roots {
            if hp.rules.is_empty() || hp.rules.iter().any(|r| r == rule) {
                out.push((hp.name.clone(), id));
            }
        }
    }
    out.sort();
    out
}

/// BFS from `root`; returns a parent map over reached fns
/// (`parent[root] == root`).
fn reach_from(graph: &CodeGraph, root: FnId) -> BTreeMap<FnId, FnId> {
    let mut parent = BTreeMap::new();
    parent.insert(root, root);
    let mut queue = std::collections::VecDeque::from([root]);
    while let Some(f) = queue.pop_front() {
        for &callee in &graph.calls[f] {
            if let std::collections::btree_map::Entry::Vacant(e) = parent.entry(callee) {
                e.insert(f);
                queue.push_back(callee);
            }
        }
    }
    parent
}

/// Reconstructs `root → ... → target` as qualified names, eliding the
/// middle of long chains.
fn path_string(graph: &CodeGraph, parent: &BTreeMap<FnId, FnId>, target: FnId) -> String {
    let mut chain = vec![target];
    let mut cur = target;
    while let Some(&p) = parent.get(&cur) {
        if p == cur {
            break;
        }
        chain.push(p);
        cur = p;
    }
    chain.reverse();
    let names: Vec<String> = chain.iter().map(|&id| graph.fns[id].qual_name()).collect();
    if names.len() > 7 {
        let head = names[..3].join(" -> ");
        let tail = names[names.len() - 3..].join(" -> ");
        format!("{head} -> ... -> {tail}")
    } else {
        names.join(" -> ")
    }
}

/// For each fn reachable from any root of `rule`, the first root
/// (name-sorted) reaching it and that root's BFS parent map index.
fn reachable_map(
    graph: &CodeGraph,
    rule: &str,
) -> BTreeMap<FnId, (String, BTreeMap<FnId, FnId>)> {
    let mut out: BTreeMap<FnId, (String, BTreeMap<FnId, FnId>)> = BTreeMap::new();
    for (name, root) in roots_for(graph, rule) {
        let parent = reach_from(graph, root);
        for &f in parent.keys() {
            out.entry(f)
                .or_insert_with(|| (name.clone(), parent.clone()));
        }
    }
    out
}

/// Runs `panic-path` and `alloc-path`: every may-panic / may-allocate
/// fact inside a function reachable from a matching root is reported
/// at the fact's line.
pub fn check_taint(graph: &CodeGraph) -> Vec<GraphFinding> {
    let mut out = Vec::new();
    for (rule, kind, verb) in [
        (RULE_PANIC_PATH, FactKind::MayPanic, "may panic"),
        (RULE_ALLOC_PATH, FactKind::MayAlloc, "may allocate"),
    ] {
        let reach = reachable_map(graph, rule);
        for (&f, (root, parent)) in &reach {
            for fact in graph.facts[f].iter().filter(|fa| fa.kind == kind) {
                out.push(gf(
                    Some(graph.fns[f].file),
                    rule,
                    fact.line,
                    format!(
                        "{what} {verb} on hot path `{root}` \
                         (via {path})",
                        what = fact.what,
                        path = path_string(graph, parent, f),
                    ),
                ));
            }
        }
    }
    out
}

/// Runs `charge-coverage`: a function reachable from a
/// `charge-coverage` root that touches a charged structure must be
/// able to reach a cachesim charge call (its own body or a callee's).
pub fn check_charge_coverage(graph: &CodeGraph) -> Vec<GraphFinding> {
    let n = graph.fns.len();
    // Forward fixpoint: can `f` reach a Charge fact?
    let mut charges: Vec<bool> = (0..n)
        .map(|f| graph.facts[f].iter().any(|fa| fa.kind == FactKind::Charge))
        .collect();
    loop {
        let mut changed = false;
        for f in 0..n {
            if !charges[f] && graph.calls[f].iter().any(|&c| charges[c]) {
                charges[f] = true;
                changed = true;
            }
        }
        if !changed {
            break;
        }
    }

    let reach = reachable_map(graph, RULE_CHARGE_COVERAGE);
    let mut out = Vec::new();
    for (&f, (root, parent)) in &reach {
        if charges[f] {
            continue;
        }
        let touches: Vec<&Fact> = graph.facts[f]
            .iter()
            .filter(|fa| fa.kind == FactKind::Touch)
            .collect();
        for t in touches {
            out.push(gf(
                Some(graph.fns[f].file),
                RULE_CHARGE_COVERAGE,
                t.line,
                format!(
                    "`{}` touches `{touched}` inside measured window `{root}` \
                     (via {path}) but reaches no cachesim charge \
                     (read_data_probes/write_data_slot/stall) — un-costed access",
                    graph.fns[f].qual_name(),
                    touched = t.what,
                    path = path_string(graph, parent, f),
                ),
            ));
        }
    }
    out
}

/// Runs every graph-level check. Findings are returned unsorted; the
/// driver merges them with per-file findings and applies allows.
pub fn check(files: &[SourceFile], graph: &CodeGraph, cfg: &GraphConfig) -> Vec<GraphFinding> {
    let mut out = check_config(files, graph, cfg);
    out.extend(check_taint(graph));
    out.extend(check_charge_coverage(graph));
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::graph;
    use crate::source::FileRole;
    use std::path::PathBuf;

    fn lib(path: &str, crate_dir: &str, text: &str) -> SourceFile {
        SourceFile::parse(PathBuf::from(path), crate_dir.into(), FileRole::Lib, text)
    }

    /// A config with nothing required, for focused taint tests.
    fn empty_cfg() -> GraphConfig {
        GraphConfig {
            required_roots: vec![],
            panic_free_files: vec![],
            panic_free_crates: vec![],
            sim_crates: vec![],
            path_markers: vec![],
        }
    }

    fn run(texts: &[(&str, &str, &str)], cfg: &GraphConfig) -> Vec<GraphFinding> {
        let files: Vec<SourceFile> = texts.iter().map(|(p, c, t)| lib(p, c, t)).collect();
        let g = graph::build(&files);
        check(&files, &g, cfg)
    }

    fn rules_of(fs: &[GraphFinding]) -> Vec<&str> {
        fs.iter().map(|f| f.raw.rule).collect()
    }

    #[test]
    fn panic_path_propagates_through_calls() {
        let fs = run(
            &[(
                "crates/x/src/lib.rs",
                "x",
                "// analyze::hot_path(loop-root, rules = \"panic-path\")\n\
                 pub fn root(v: &[u64]) -> u64 { middle(v) }\n\
                 fn middle(v: &[u64]) -> u64 { leaf(v) }\n\
                 fn leaf(v: &[u64]) -> u64 { *v.first().unwrap() }\n\
                 pub fn cold(v: &[u64]) -> u64 { *v.last().unwrap() }\n",
            )],
            &empty_cfg(),
        );
        let hits: Vec<_> = fs.iter().filter(|f| f.raw.rule == RULE_PANIC_PATH).collect();
        assert_eq!(hits.len(), 1, "{fs:?}");
        assert_eq!(hits[0].raw.line, 4, "the finding lands on the leaf fact");
        assert!(hits[0].raw.message.contains("loop-root"));
        assert!(hits[0].raw.message.contains("root -> middle -> leaf"));
    }

    #[test]
    fn alloc_path_only_fires_for_its_rule_filter() {
        let fs = run(
            &[(
                "crates/x/src/lib.rs",
                "x",
                "// analyze::hot_path(loop-root, rules = \"panic-path\")\n\
                 pub fn root(out: &mut Vec<u64>) { out.push(1) }\n",
            )],
            &empty_cfg(),
        );
        assert!(
            !rules_of(&fs).contains(&RULE_ALLOC_PATH),
            "root seeds only panic-path, so the push is not reported: {fs:?}"
        );
        let fs = run(
            &[(
                "crates/x/src/lib.rs",
                "x",
                "// analyze::hot_path(loop-root)\n\
                 pub fn root(out: &mut Vec<u64>) { out.push(1) }\n",
            )],
            &empty_cfg(),
        );
        assert!(
            rules_of(&fs).contains(&RULE_ALLOC_PATH),
            "an unfiltered root seeds all rules: {fs:?}"
        );
    }

    #[test]
    fn charge_coverage_flags_uncharged_touch_and_passes_charged() {
        let bad = "\
pub struct OaTable { n: u64 }\n\
impl OaTable {\n    pub fn get(&self) -> u64 { self.n }\n}\n\
pub struct Machine;\n\
impl Machine {\n    pub fn read_data_probes(&mut self, _n: u64) {}\n}\n\
pub struct Sim { t: OaTable, m: Machine }\n\
impl Sim {\n\
    // analyze::hot_path(win, rules = \"charge-coverage\")\n\
    pub fn run(&mut self) -> u64 { self.t.get() }\n\
}\n";
        let fs = run(&[("crates/x/src/lib.rs", "x", bad)], &empty_cfg());
        let hits: Vec<_> = fs
            .iter()
            .filter(|f| f.raw.rule == RULE_CHARGE_COVERAGE)
            .collect();
        assert_eq!(hits.len(), 1, "{fs:?}");
        assert!(hits[0].raw.message.contains("OaTable::get"));

        let good = bad.replace(
            "pub fn run(&mut self) -> u64 { self.t.get() }",
            "pub fn run(&mut self) -> u64 { let v = self.t.get(); self.m.read_data_probes(1); v }",
        );
        let fs = run(&[("crates/x/src/lib.rs", "x", &good)], &empty_cfg());
        assert!(
            !rules_of(&fs).contains(&RULE_CHARGE_COVERAGE),
            "a charge in the same fn covers the touch: {fs:?}"
        );
    }

    #[test]
    fn charge_in_callee_covers_the_touch() {
        let text = "\
pub struct OaTable { n: u64 }\n\
impl OaTable {\n    pub fn get(&self) -> u64 { self.n }\n}\n\
pub struct Machine;\n\
impl Machine {\n    pub fn stall(&mut self, _n: u64) {}\n}\n\
pub struct Sim { t: OaTable, m: Machine }\n\
impl Sim {\n\
    fn cost(&mut self) { self.m.stall(3) }\n\
    // analyze::hot_path(win, rules = \"charge-coverage\")\n\
    pub fn run(&mut self) -> u64 { let v = self.t.get(); self.cost(); v }\n\
}\n";
        let fs = run(&[("crates/x/src/lib.rs", "x", text)], &empty_cfg());
        assert!(
            !rules_of(&fs).contains(&RULE_CHARGE_COVERAGE),
            "charge reached through a callee counts: {fs:?}"
        );
    }

    #[test]
    fn missing_required_root_and_stale_paths_fail_loudly() {
        let cfg = GraphConfig {
            required_roots: vec!["engine-batch-loop".into()],
            panic_free_files: vec!["crates/gone/src/table.rs".into()],
            panic_free_crates: vec!["gone".into()],
            sim_crates: vec!["x".into()],
            path_markers: vec!["impair".into()],
        };
        let fs = run(
            &[("crates/x/src/lib.rs", "x", "pub fn f() {}\n")],
            &cfg,
        );
        let msgs: Vec<&str> = fs
            .iter()
            .filter(|f| f.raw.rule == RULE_GRAPH_CONFIG)
            .map(|f| f.raw.message.as_str())
            .collect();
        assert!(
            msgs.iter().any(|m| m.contains("engine-batch-loop")),
            "missing root reported: {msgs:?}"
        );
        assert!(
            msgs.iter().any(|m| m.contains("crates/gone/src/table.rs")),
            "stale file entry reported: {msgs:?}"
        );
        assert!(
            msgs.iter().any(|m| m.contains("PANIC_FREE_CRATES entry `gone`")),
            "stale crate entry reported: {msgs:?}"
        );
        assert!(
            msgs.iter().any(|m| m.contains("`impair`")),
            "empty scope marker reported: {msgs:?}"
        );
        assert!(
            !msgs.iter().any(|m| m.contains("SIM_CRATES")),
            "crate `x` exists, SIM_CRATES is fine: {msgs:?}"
        );
    }

    #[test]
    fn dangling_annotation_and_unknown_rule_are_config_errors() {
        let fs = run(
            &[(
                "crates/x/src/lib.rs",
                "x",
                "// analyze::hot_path(tail-root)\n\
                 // (no fn follows)\n",
            )],
            &empty_cfg(),
        );
        assert!(
            fs.iter()
                .any(|f| f.raw.rule == RULE_GRAPH_CONFIG && f.raw.message.contains("tail-root")),
            "{fs:?}"
        );

        let fs = run(
            &[(
                "crates/x/src/lib.rs",
                "x",
                "// analyze::hot_path(r, rules = \"no-such-rule\")\n\
                 pub fn f() {}\n",
            )],
            &empty_cfg(),
        );
        assert!(
            fs.iter()
                .any(|f| f.raw.rule == RULE_GRAPH_CONFIG
                    && f.raw.message.contains("no-such-rule")),
            "{fs:?}"
        );
    }
}
