//! R4 `panic-free-library` — non-test library code of `core`,
//! `simnet`, and `cachesim` must not contain casual panic paths:
//! `.unwrap()`, `.expect(...)`, `panic!`, `todo!`, `unimplemented!`,
//! or indexing a collection by an integer literal.
//!
//! These are the crates on the simulated hot path; a panic there kills
//! a whole sweep mid-run. Invariant-backed `expect`s are fine *when
//! reviewed*: annotate them with
//! `analyze::allow(panic-free-library, reason = "<the invariant>")`
//! and the reason lands in `results/analyze_report.json` where the
//! next reviewer sees it. Tests and binaries are exempt (a test
//! failing loudly is the point).
//!
//! `unwrap_or`/`unwrap_or_else`/`unwrap_or_default` and `expect_err`
//! do not panic and are not matched. `assert!`/`debug_assert!` are
//! deliberate contract checks and stay allowed.

use super::{RawFinding, RULE_PANIC_FREE};
use crate::source::{FileRole, SourceFile};

/// Crates held to the panic-free standard.
pub const PANIC_FREE_CRATES: &[&str] = &["core", "simnet", "cachesim", "obs", "smp"];

/// Individual files held to the standard even though their crate is
/// not. Empty today: the former sole entry
/// (`crates/netstack/src/table.rs`) is now covered precisely by the
/// `panic-path` graph rule via its `oatable-probe` hot-path roots,
/// which follows calls instead of blanketing the file. The mechanism
/// stays for future out-of-crate hot modules; every entry is validated
/// against the scanned file set by the `graph-config` rule, so a
/// renamed or deleted path fails the build instead of silently
/// un-covering the file.
pub const PANIC_FREE_FILES: &[&str] = &[];

const CALLS: &[&str] = &[".unwrap()", ".expect(", "panic!", "todo!(", "unimplemented!("];

/// True when R4 applies to this file: a library file of a hot-path
/// crate, or an explicitly listed hot-path module.
pub fn covers(file: &SourceFile) -> bool {
    if file.role != FileRole::Lib {
        return false;
    }
    PANIC_FREE_CRATES.contains(&file.crate_dir.as_str())
        || PANIC_FREE_FILES
            .iter()
            .any(|p| file.path.as_path() == std::path::Path::new(p))
}

/// Runs R4 over one file.
pub fn check(file: &SourceFile) -> Vec<RawFinding> {
    if !covers(file) {
        return Vec::new();
    }
    let mut out = Vec::new();
    for (idx, code) in file.code.iter().enumerate() {
        let line = idx + 1;
        if file.is_test(line) {
            continue;
        }
        for pat in CALLS {
            if code.contains(pat) {
                out.push(RawFinding {
                    rule: RULE_PANIC_FREE,
                    line,
                    message: format!("`{pat}` in library code can panic on the hot path"),
                });
            }
        }
        if let Some(ix) = literal_index(code) {
            out.push(RawFinding {
                rule: RULE_PANIC_FREE,
                line,
                message: format!("indexing by literal `{ix}` can panic; use .get() or justify"),
            });
        }
    }
    out
}

/// Finds `expr[<integer literal>]` — an index whose base ends in an
/// identifier/`)`/`]` character and whose bracket content is only
/// digits (and `_`). Array type/literal syntax (`[u8; 4]`, `[0, 1]`)
/// never matches because nothing indexable precedes the bracket.
/// Shared with the `panic-path` graph rule's fact extractor.
pub fn literal_index(code: &str) -> Option<String> {
    let b = code.as_bytes();
    let mut i = 0;
    while i < b.len() {
        if b[i] == b'[' {
            let prev = b[..i].iter().rev().find(|c| !c.is_ascii_whitespace());
            let indexable = matches!(prev, Some(c) if c.is_ascii_alphanumeric() || matches!(c, b'_' | b')' | b']'));
            if indexable {
                let close = b[i + 1..].iter().position(|&c| c == b']').map(|p| i + 1 + p);
                if let Some(j) = close {
                    let inner = code[i + 1..j].trim();
                    if !inner.is_empty()
                        && inner.bytes().all(|c| c.is_ascii_digit() || c == b'_')
                    {
                        return Some(inner.to_string());
                    }
                }
            }
        }
        i += 1;
    }
    None
}

#[cfg(test)]
mod tests {
    use super::{check, covers, literal_index};
    use crate::source::{FileRole, SourceFile};
    use std::path::PathBuf;

    fn file(path: &str, crate_dir: &str, role: FileRole, text: &str) -> SourceFile {
        SourceFile::parse(PathBuf::from(path), crate_dir.to_string(), role, text)
    }

    #[test]
    fn coverage_is_crate_scoped_with_empty_file_list() {
        let hot = file(
            "crates/core/src/engine.rs",
            "core",
            FileRole::Lib,
            "let x = v.unwrap();\n",
        );
        assert!(covers(&hot), "panic-free crate library files are in scope");
        assert_eq!(check(&hot).len(), 1, "unwrap in a covered crate is flagged");

        let other = file(
            "crates/netstack/src/table.rs",
            "netstack",
            FileRole::Lib,
            "let x = v.unwrap();\n",
        );
        assert!(
            !covers(&other),
            "netstack is exempt from blanket R4; the panic-path graph rule covers its hot paths"
        );
        assert!(check(&other).is_empty());

        let test_role = file(
            "crates/core/src/engine.rs",
            "core",
            FileRole::Test,
            "let x = v.unwrap();\n",
        );
        assert!(!covers(&test_role), "tests are exempt even in covered crates");
    }

    #[test]
    fn literal_index_shapes() {
        assert_eq!(literal_index("let x = w[0];"), Some("0".into()));
        assert_eq!(literal_index("foo.bar()[12]"), Some("12".into()));
        assert_eq!(literal_index("let a: [u8; 4] = [0, 1, 2, 3];"), None);
        assert_eq!(literal_index("&buf[..4]"), None);
        assert_eq!(literal_index("v[i]"), None);
        assert_eq!(literal_index("#[cfg(test)]"), None);
    }
}
