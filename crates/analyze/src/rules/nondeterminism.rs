//! R1 `nondeterminism` — the simulation crates must not touch the wall
//! clock, the OS entropy pool, or hash-order-dependent containers.
//!
//! Scope: non-test library code of the five simulation crates
//! (`simnet`, `core`, `cachesim`, `netstack`, `signaling`). Bench
//! binaries keep their wall-clock timing, and test code may use
//! reference `HashSet`s: neither feeds the simulated outputs the
//! determinism goldens pin.
//!
//! Flagged hazards:
//! * `std::time::Instant` / `std::time::SystemTime` (and `::now()`
//!   calls) — wall-clock reads. `netstack`'s own `type Instant = u64`
//!   simulated clock is *not* flagged: only `std::time` paths and
//!   `::now()` calls match.
//! * `thread_rng` — OS-seeded randomness; sims must thread a seeded
//!   `StdRng`.
//! * `HashMap` / `HashSet` — iteration order varies per process
//!   (`RandomState`); use `BTreeMap`/`BTreeSet`, or justify a
//!   lookup-only map with `analyze::allow(nondeterminism, reason=..)`.

use super::{RawFinding, RULE_NONDETERMINISM};
use crate::source::{contains_word, FileRole, SourceFile};

/// The crates whose outputs must replay byte-identically.
pub const SIM_CRATES: &[&str] = &[
    "simnet", "core", "cachesim", "netstack", "signaling", "obs", "smp", "workload",
];

/// Substring hazards (qualified paths and calls). Public so the
/// clippy.toml sync test can assert this list is a superset of the
/// clippy disallowed-methods list.
pub const PATH_PATTERNS: &[(&str, &str)] = &[
    ("std::time::Instant", "wall-clock type in simulation code"),
    ("std::time::SystemTime", "wall-clock type in simulation code"),
    ("Instant::now", "wall-clock read in simulation code"),
    ("SystemTime::now", "wall-clock read in simulation code"),
];

/// Whole-word hazards.
pub const WORD_PATTERNS: &[(&str, &str)] = &[
    ("thread_rng", "OS-seeded RNG; thread a seeded StdRng instead"),
    ("HashMap", "iteration order is per-process random; use BTreeMap"),
    ("HashSet", "iteration order is per-process random; use BTreeSet"),
];

/// Runs R1 over one file.
pub fn check(file: &SourceFile) -> Vec<RawFinding> {
    if !SIM_CRATES.contains(&file.crate_dir.as_str()) || file.role != FileRole::Lib {
        return Vec::new();
    }
    let mut out = Vec::new();
    for (idx, code) in file.code.iter().enumerate() {
        let line = idx + 1;
        if file.is_test(line) {
            continue;
        }
        for (pat, why) in PATH_PATTERNS {
            if code.contains(pat) {
                out.push(RawFinding {
                    rule: RULE_NONDETERMINISM,
                    line,
                    message: format!("`{pat}`: {why}"),
                });
            }
        }
        for (pat, why) in WORD_PATTERNS {
            if contains_word(code, pat) {
                out.push(RawFinding {
                    rule: RULE_NONDETERMINISM,
                    line,
                    message: format!("`{pat}`: {why}"),
                });
            }
        }
    }
    out
}
