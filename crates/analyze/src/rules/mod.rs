//! The rule catalog. Each rule is a pure function from a
//! [`SourceFile`] to raw findings; the driver in `lib.rs` applies the
//! allow-annotations afterwards so every rule stays oblivious to the
//! escape hatch (and the escape hatch works uniformly).

use crate::source::SourceFile;

pub mod float_reduction;
pub mod graph_rules;
pub mod nondeterminism;
pub mod panic_free;
pub mod rng_budget;
pub mod unsafe_safety;

/// A raw rule hit, before allow-annotations are applied.
#[derive(Debug, Clone)]
pub struct RawFinding {
    /// Rule id (`nondeterminism`, `rng-draw-budget`, ...).
    pub rule: &'static str,
    /// 1-based line.
    pub line: usize,
    /// Human-readable explanation of the hazard.
    pub message: String,
}

/// Stable rule ids, used in reports and in `analyze::allow(<rule>,..)`.
pub const RULE_NONDETERMINISM: &str = "nondeterminism";
/// See [`RULE_NONDETERMINISM`].
pub const RULE_RNG_BUDGET: &str = "rng-draw-budget";
/// See [`RULE_NONDETERMINISM`].
pub const RULE_UNSAFE_SAFETY: &str = "unsafe-safety";
/// See [`RULE_NONDETERMINISM`].
pub const RULE_PANIC_FREE: &str = "panic-free-library";
/// See [`RULE_NONDETERMINISM`].
pub const RULE_FLOAT_REDUCTION: &str = "float-reduction";
/// Malformed `analyze::allow` annotations (not suppressible).
pub const RULE_ALLOW_GRAMMAR: &str = "allow-grammar";
/// G1 — may-panic facts reachable from a `hot_path` root.
pub const RULE_PANIC_PATH: &str = "panic-path";
/// G2 — may-allocate facts reachable from a `hot_path` root.
pub const RULE_ALLOC_PATH: &str = "alloc-path";
/// G3 — charged-structure touches in a measured window must reach a
/// cachesim charge call.
pub const RULE_CHARGE_COVERAGE: &str = "charge-coverage";
/// Graph/rule configuration errors: missing required roots, dangling
/// annotations, stale path/crate lists (not suppressible).
pub const RULE_GRAPH_CONFIG: &str = "graph-config";

/// Runs every rule over `file`.
pub fn run_all(file: &SourceFile) -> Vec<RawFinding> {
    let mut out = Vec::new();
    out.extend(nondeterminism::check(file));
    out.extend(rng_budget::check(file));
    out.extend(unsafe_safety::check(file));
    out.extend(panic_free::check(file));
    out.extend(float_reduction::check(file));
    out.sort_by_key(|f| f.line);
    out
}
