//! The workspace-wide symbol/call-graph model behind the taint rules
//! (`panic-path`, `alloc-path`, `charge-coverage` — see
//! `rules::graph_rules` and `DESIGN.md` §5.8).
//!
//! A light token-level parser (no `syn`, keeping the crate
//! zero-dependency) walks the scrubbed code of every **library** file
//! and extracts:
//!
//! * `fn` definitions, with their impl/trait context and body span;
//! * call sites, classified by receiver (free, `Type::method`, or a
//!   method call whose receiver type is recovered from struct fields,
//!   typed `let` bindings, and parameter lists);
//! * leaf facts per function: may-panic tokens, may-allocate tokens,
//!   `cachesim` charge calls, and touches of charged data structures;
//! * `// analyze::hot_path(<name>)` root annotations, attached to the
//!   next `fn` below them.
//!
//! ## Resolution policy (conservative, documented)
//!
//! This is a may-analysis: edges over-approximate, so reachability
//! never misses a real path at the cost of some impossible ones.
//!
//! * `f(...)` / `module::f(...)` → every top-level `fn f` in the
//!   caller's crate; if the crate has none, every one in the
//!   workspace.
//! * `Type::m(...)` / `Self::m(...)` → every `fn m` in an `impl` of
//!   `Type` (or of a trait named `Type`, covering `dyn`/generic
//!   dispatch through trait methods).
//! * `recv.m(...)` with a recoverable receiver type `T` (a typed
//!   `let`, a parameter, `self`, or a struct field — `self.f.m()`
//!   resolves `f` against the impl's own struct first, then a
//!   workspace-wide field-name map) → every `fn m` in impls of `T`.
//!   When `T` has no workspace impls (std containers), the call gets
//!   **no** edges: std is assumed panic-documented and its allocation
//!   behaviour is matched by token facts instead.
//! * `recv.m(...)` with an unrecoverable receiver → every impl
//!   `fn m` in the caller's crate; if none, every one in the
//!   workspace. This is the ambiguity hot spot: method-name
//!   collisions across types add impossible edges, accepted as
//!   over-approximation (suppress at the *leaf* fact with
//!   `analyze::allow`, which neutralises every path through it).
//!
//! Known blind spots (under-approximation, kept deliberate):
//! function pointers / closures passed as values, macro-*generated*
//! callees (calls written inside macro arguments are seen), trait
//! method declarations without bodies, and `#[cfg(test)]`-masked
//! definitions (excluded from the graph entirely, so a hot path can
//! never launder a hazard through test-only code — pinned by the
//! fixture tests).

use crate::source::{FileRole, SourceFile};
use std::collections::{BTreeMap, BTreeSet};

/// Data structures whose probe/slot touches must be charged to the
/// cache model inside a measured window (`charge-coverage`).
pub const CHARGED_TYPES: &[&str] = &[
    "OaTable",
    "LookupCache",
    "DescRing",
    "Reassembler",
    "SignalingSwitch",
];

/// The `cachesim::Machine` entry points that constitute a charge.
pub const CHARGE_FNS: &[&str] = &["read_data_probes", "write_data_slot", "stall"];

/// Owned std collection types whose `.clone()` allocates.
const COLLECTION_TYPES: &[&str] = &[
    "Vec", "VecDeque", "String", "BTreeMap", "BTreeSet", "HashMap", "HashSet",
];

/// Index of a function in [`CodeGraph::fns`].
pub type FnId = usize;

/// `(impl type, trait name)` of the innermost enclosing impl block.
type ImplCtx = (Option<String>, Option<String>);

/// What a leaf fact asserts about its line.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum FactKind {
    /// The line can panic (unwrap/expect/panic!/literal index/...).
    MayPanic,
    /// The line can allocate (push/Box::new/format!/collect/...).
    MayAlloc,
    /// The line charges the cache model (read_data_probes/...).
    Charge,
    /// The line calls into a charged data structure.
    Touch,
}

/// One leaf fact inside a function body.
#[derive(Debug, Clone)]
pub struct Fact {
    /// What kind of fact.
    pub kind: FactKind,
    /// 1-based line.
    pub line: usize,
    /// The matched token / call, for messages.
    pub what: String,
}

/// One function definition in the graph.
#[derive(Debug, Clone)]
pub struct FnDef {
    /// Bare name (no path).
    pub name: String,
    /// `impl` block's Self type (last path segment), if any.
    pub impl_type: Option<String>,
    /// Trait being implemented (or defined, for default methods).
    pub trait_name: Option<String>,
    /// Index into the file list the graph was built from.
    pub file: usize,
    /// 1-based line of the `fn` keyword.
    pub sig_line: usize,
    /// 1-based inclusive body span (opening to closing brace line).
    pub body: (usize, usize),
    /// Crate directory the file belongs to.
    pub crate_dir: String,
    /// True for `#[cfg(test)]`/`#[test]`-masked definitions.
    pub is_test: bool,
    /// Hot-path root annotations attached to this fn.
    pub roots: Vec<crate::source::HotPath>,
}

impl FnDef {
    /// `Type::name` or bare `name`, for path strings in messages.
    pub fn qual_name(&self) -> String {
        match &self.impl_type {
            Some(t) => format!("{t}::{}", self.name),
            None => self.name.clone(),
        }
    }
}

/// The resolved call graph plus per-function facts.
#[derive(Debug)]
pub struct CodeGraph {
    /// All function definitions, in (file, line) order.
    pub fns: Vec<FnDef>,
    /// Resolved callees per function (sorted, deduplicated).
    pub calls: Vec<Vec<FnId>>,
    /// Leaf facts per function.
    pub facts: Vec<Vec<Fact>>,
    /// Hot-path annotations that attached to no function:
    /// (file index, line, name).
    pub unattached_roots: Vec<(usize, usize, String)>,
}

// ---------------------------------------------------------------
// Tokenizer
// ---------------------------------------------------------------

#[derive(Debug, Clone, PartialEq, Eq)]
enum TokKind {
    Ident,
    Num,
    Punct,
}

#[derive(Debug, Clone)]
struct Tok {
    s: String,
    line: usize,
    kind: TokKind,
}

impl Tok {
    fn is(&self, s: &str) -> bool {
        self.s == s
    }
    fn is_ident(&self) -> bool {
        self.kind == TokKind::Ident
    }
}

/// Tokenizes scrubbed code: identifiers, numeric literals, and
/// punctuation (with `::`, `->`, `..`, `=>` kept as single tokens).
fn tokenize(code: &[String]) -> Vec<Tok> {
    let mut out = Vec::new();
    for (idx, line) in code.iter().enumerate() {
        let ln = idx + 1;
        let b: Vec<char> = line.chars().collect();
        let mut i = 0;
        while i < b.len() {
            let c = b[i];
            if c.is_whitespace() {
                i += 1;
            } else if c.is_ascii_alphabetic() || c == '_' {
                let start = i;
                while i < b.len() && (b[i].is_ascii_alphanumeric() || b[i] == '_') {
                    i += 1;
                }
                out.push(Tok {
                    s: b[start..i].iter().collect(),
                    line: ln,
                    kind: TokKind::Ident,
                });
            } else if c.is_ascii_digit() {
                let start = i;
                while i < b.len() && (b[i].is_ascii_alphanumeric() || b[i] == '_' || b[i] == '.') {
                    // Numbers absorb `.` only when it is not `..`.
                    if b[i] == '.' && (i + 1 >= b.len() || b[i + 1] == '.' || !b[i + 1].is_ascii_alphanumeric()) {
                        break;
                    }
                    i += 1;
                }
                out.push(Tok {
                    s: b[start..i].iter().collect(),
                    line: ln,
                    kind: TokKind::Num,
                });
            } else {
                let two: String = b[i..(i + 2).min(b.len())].iter().collect();
                let tok = match two.as_str() {
                    "::" | "->" | ".." | "=>" => {
                        i += 2;
                        two
                    }
                    _ => {
                        i += 1;
                        c.to_string()
                    }
                };
                out.push(Tok {
                    s: tok,
                    line: ln,
                    kind: TokKind::Punct,
                });
            }
        }
    }
    out
}

// ---------------------------------------------------------------
// Item parsing
// ---------------------------------------------------------------

#[derive(Debug, Clone)]
enum Scope {
    Impl {
        ty: Option<String>,
        tr: Option<String>,
    },
    Fn(FnId),
    Other,
}

/// How a call's receiver was classified.
#[derive(Debug, Clone)]
enum Recv {
    /// Plain `f(...)` or `module::f(...)`.
    Free,
    /// `Type::m(...)` (or `Self::`, resolved to the impl type).
    Qualified(String),
    /// `recv.m(...)` with a recovered receiver type.
    Typed(String),
    /// `recv.m(...)` with an unknown receiver type.
    Unknown,
}

#[derive(Debug, Clone)]
struct RawCall {
    caller: FnId,
    name: String,
    recv: Recv,
    line: usize,
}

/// Per-file parse output folded into the graph builder.
#[derive(Debug, Default)]
struct ParseOut {
    raw_calls: Vec<RawCall>,
    /// struct name -> field name -> base type.
    struct_fields: BTreeMap<String, BTreeMap<String, String>>,
    /// per-fn typed bindings (params + typed lets): name -> base type.
    fn_locals: BTreeMap<FnId, BTreeMap<String, String>>,
}

const KEYWORDS: &[&str] = &[
    "if", "while", "for", "match", "return", "loop", "else", "move", "in", "as", "break",
    "continue", "unsafe", "where", "ref", "mut", "box", "await", "yield", "let", "fn",
];

/// Pointer-like wrappers that are looked *through* when recovering a
/// receiver type: a method called on a `Box<dyn LookupCache>` field
/// dispatches to `LookupCache` impls, not to `Box`.
const TRANSPARENT_WRAPPERS: &[&str] = &["Box", "Rc", "Arc", "Option", "RefCell", "Cell", "Mutex"];

/// Extracts the base type name from a type token slice: strips
/// references, lifetimes, `mut`, `dyn`, `impl`, looks through
/// [`TRANSPARENT_WRAPPERS`], then takes the last path segment before
/// any remaining generic argument list. Tuples, slices and fn-pointer
/// types yield `None`.
fn type_base(toks: &[Tok]) -> Option<String> {
    let mut i = 0;
    loop {
        let t = toks.get(i)?;
        match t.s.as_str() {
            "&" | "'" | "*" => i += 1,
            "mut" | "dyn" | "impl" | "const" => i += 1,
            _ if t.kind == TokKind::Ident && i > 0 && toks[i - 1].is("'") => {
                i += 1; // lifetime name
            }
            _ => break,
        }
    }
    // Path: ident (:: ident)*; keep the last segment.
    let mut last: Option<String> = None;
    while let Some(t) = toks.get(i) {
        if t.is_ident() {
            last = Some(t.s.clone());
            i += 1;
            if toks.get(i).is_some_and(|n| n.is("::")) {
                i += 1;
                continue;
            }
        }
        break;
    }
    let last = last?;
    if TRANSPARENT_WRAPPERS.contains(&last.as_str()) && toks.get(i).is_some_and(|t| t.is("<")) {
        // Recurse into the generic payload (up to the matching `>`).
        let start = i + 1;
        let mut depth = 1i32;
        let mut j = start;
        while j < toks.len() && depth > 0 {
            match toks[j].s.as_str() {
                "<" => depth += 1,
                ">" => depth -= 1,
                _ => {}
            }
            j += 1;
        }
        let end = j.saturating_sub(1).max(start);
        if let Some(inner) = type_base(&toks[start..end]) {
            return Some(inner);
        }
    }
    Some(last)
}

/// Builds the code graph from every library-role file in `files`
/// (tests, benches and binaries are outside the hot-path contract).
pub fn build(files: &[SourceFile]) -> CodeGraph {
    let mut fns: Vec<FnDef> = Vec::new();
    let mut out = ParseOut::default();

    for (fi, file) in files.iter().enumerate() {
        if file.role != FileRole::Lib {
            continue;
        }
        parse_file(fi, file, &mut fns, &mut out);
    }

    // Attach hot-path annotations: each annotation binds to the first
    // fn defined at/after its line in the same file, provided no other
    // fn starts in between (the annotation sits in the fn's header).
    let mut unattached = Vec::new();
    for (fi, file) in files.iter().enumerate() {
        for hp in &file.hot_paths {
            let target = fns
                .iter_mut()
                .filter(|f| f.file == fi && f.sig_line >= hp.line)
                .min_by_key(|f| f.sig_line);
            match target {
                Some(f) if !f.is_test => f.roots.push(hp.clone()),
                _ => unattached.push((fi, hp.line, hp.name.clone())),
            }
        }
    }

    // Resolution index tables (test definitions excluded: a call can
    // never resolve into cfg(test)-masked code).
    let mut top_by_name: BTreeMap<&str, Vec<FnId>> = BTreeMap::new();
    let mut method_by_name: BTreeMap<&str, Vec<FnId>> = BTreeMap::new();
    let mut by_type_method: BTreeMap<(&str, &str), Vec<FnId>> = BTreeMap::new();
    let mut by_trait_method: BTreeMap<(&str, &str), Vec<FnId>> = BTreeMap::new();
    let mut field_types: BTreeMap<&str, BTreeSet<&str>> = BTreeMap::new();
    for (sname, sfields) in &out.struct_fields {
        let _ = sname;
        for (fname, ftype) in sfields {
            field_types.entry(fname).or_default().insert(ftype);
        }
    }
    for (id, f) in fns.iter().enumerate() {
        if f.is_test {
            continue;
        }
        match &f.impl_type {
            None => top_by_name.entry(&f.name).or_default().push(id),
            Some(ty) => {
                method_by_name.entry(&f.name).or_default().push(id);
                by_type_method.entry((ty, &f.name)).or_default().push(id);
                if let Some(tr) = &f.trait_name {
                    by_trait_method.entry((tr, &f.name)).or_default().push(id);
                }
            }
        }
    }

    let mut calls: Vec<Vec<FnId>> = vec![Vec::new(); fns.len()];
    let mut facts: Vec<Vec<Fact>> = vec![Vec::new(); fns.len()];

    let resolve_type_method = |ty: &str, name: &str| -> Vec<FnId> {
        let mut v: Vec<FnId> = by_type_method
            .get(&(ty, name))
            .cloned()
            .unwrap_or_default();
        v.extend(by_trait_method.get(&(ty, name)).cloned().unwrap_or_default());
        v
    };

    for rc in &out.raw_calls {
        let caller = &fns[rc.caller];
        if caller.is_test {
            continue;
        }
        // Charge facts: a call to a cachesim charge entry point, by
        // any receiver form.
        if CHARGE_FNS.contains(&rc.name.as_str()) {
            facts[rc.caller].push(Fact {
                kind: FactKind::Charge,
                line: rc.line,
                what: rc.name.clone(),
            });
        }
        let crate_filter = |ids: Vec<FnId>| -> Vec<FnId> {
            let local: Vec<FnId> = ids
                .iter()
                .copied()
                .filter(|&id| fns[id].crate_dir == caller.crate_dir)
                .collect();
            if local.is_empty() {
                ids
            } else {
                local
            }
        };
        let (targets, touch_type): (Vec<FnId>, Option<String>) = match &rc.recv {
            Recv::Free => (
                crate_filter(top_by_name.get(rc.name.as_str()).cloned().unwrap_or_default()),
                None,
            ),
            Recv::Qualified(ty) | Recv::Typed(ty) => {
                let t = resolve_type_method(ty, &rc.name);
                let touch = CHARGED_TYPES.contains(&ty.as_str()).then(|| ty.clone());
                (t, touch)
            }
            Recv::Unknown => (
                crate_filter(
                    method_by_name
                        .get(rc.name.as_str())
                        .cloned()
                        .unwrap_or_default(),
                ),
                None,
            ),
        };
        // A touch only counts when the caller is *outside* the charged
        // structure itself: internal helper calls are the structure's
        // own implementation, not a sim-code access to be costed.
        if let Some(ty) = touch_type {
            let caller_is_charged = caller
                .impl_type
                .as_deref()
                .is_some_and(|t| CHARGED_TYPES.contains(&t));
            if !caller_is_charged {
                facts[rc.caller].push(Fact {
                    kind: FactKind::Touch,
                    line: rc.line,
                    what: format!("{ty}::{}", rc.name),
                });
            }
        }
        calls[rc.caller].extend(targets);
    }
    for c in &mut calls {
        c.sort_unstable();
        c.dedup();
    }

    // Line-based token facts, attributed to the innermost enclosing fn.
    for (fi, file) in files.iter().enumerate() {
        if file.role != FileRole::Lib {
            continue;
        }
        let mut file_fns: Vec<FnId> = (0..fns.len()).filter(|&id| fns[id].file == fi).collect();
        file_fns.sort_by_key(|&id| fns[id].body.1 - fns[id].body.0);
        for (idx, code) in file.code.iter().enumerate() {
            let line = idx + 1;
            if file.is_test(line) {
                continue;
            }
            // Innermost fn containing this line (smallest span first).
            let Some(&owner) = file_fns
                .iter()
                .find(|&&id| fns[id].body.0 <= line && line <= fns[id].body.1)
            else {
                continue;
            };
            if fns[owner].is_test {
                continue;
            }
            let locals = out.fn_locals.get(&owner);
            line_facts(code, line, locals, &field_types, &mut facts[owner]);
        }
    }
    for f in &mut facts {
        f.sort_by(|a, b| (a.line, &a.what).cmp(&(b.line, &b.what)));
        f.dedup_by(|a, b| a.line == b.line && a.what == b.what && a.kind == b.kind);
    }

    CodeGraph {
        fns,
        calls,
        facts,
        unattached_roots: unattached,
    }
}

/// Parses one file's items into `fns`/`out`.
fn parse_file(fi: usize, file: &SourceFile, fns: &mut Vec<FnDef>, out: &mut ParseOut) {
    let toks = tokenize(&file.code);
    let mut stack: Vec<Scope> = Vec::new();
    let mut pending: Option<Scope> = None;
    let mut i = 0usize;

    // Innermost enclosing fn on the scope stack.
    fn current_fn(stack: &[Scope]) -> Option<FnId> {
        stack.iter().rev().find_map(|s| match s {
            Scope::Fn(id) => Some(*id),
            _ => None,
        })
    }
    fn current_impl(stack: &[Scope]) -> (Option<String>, Option<String>) {
        for s in stack.iter().rev() {
            if let Scope::Impl { ty, tr } = s {
                return (ty.clone(), tr.clone());
            }
        }
        (None, None)
    }
    /// Skips a balanced `<...>` group starting at `i` (which must be `<`).
    fn skip_angles(toks: &[Tok], mut i: usize) -> usize {
        let mut depth = 0i32;
        while i < toks.len() {
            match toks[i].s.as_str() {
                "<" => depth += 1,
                ">" => {
                    depth -= 1;
                    if depth == 0 {
                        return i + 1;
                    }
                }
                _ => {}
            }
            i += 1;
        }
        i
    }
    /// Skips a balanced brace/paren/bracket group starting at the
    /// opener `i`; returns the index after the closer.
    fn skip_group(toks: &[Tok], mut i: usize, open: &str, close: &str) -> usize {
        let mut depth = 0i32;
        while i < toks.len() {
            if toks[i].is(open) {
                depth += 1;
            } else if toks[i].is(close) {
                depth -= 1;
                if depth == 0 {
                    return i + 1;
                }
            }
            i += 1;
        }
        i
    }
    /// Reads a `path::like::This` at `i`; returns (last segment, next index).
    fn read_path(toks: &[Tok], mut i: usize) -> (Option<String>, usize) {
        let mut last = None;
        while i < toks.len() && toks[i].is_ident() {
            last = Some(toks[i].s.clone());
            i += 1;
            if i + 1 < toks.len() && toks[i].is("::") {
                i += 1;
            } else {
                break;
            }
        }
        (last, i)
    }

    while i < toks.len() {
        let t = &toks[i];
        match t.s.as_str() {
            "{" => {
                stack.push(pending.take().unwrap_or(Scope::Other));
                i += 1;
            }
            "}" => {
                if let Some(Scope::Fn(id)) = stack.pop() {
                    fns[id].body.1 = t.line;
                }
                i += 1;
            }
            "impl" if t.is_ident() => {
                let mut j = i + 1;
                if toks.get(j).is_some_and(|t| t.is("<")) {
                    j = skip_angles(&toks, j);
                }
                let (first, mut k) = read_path(&toks, j);
                if toks.get(k).is_some_and(|t| t.is("<")) {
                    k = skip_angles(&toks, k);
                }
                let (ty, tr) = if toks.get(k).is_some_and(|t| t.is("for")) {
                    let (second, mut m) = read_path(&toks, k + 1);
                    if toks.get(m).is_some_and(|t| t.is("<")) {
                        m = skip_angles(&toks, m);
                    }
                    k = m;
                    (second, first)
                } else {
                    (first, None)
                };
                pending = Some(Scope::Impl { ty, tr });
                i = k; // continue scanning until the `{` (where clauses pass through)
            }
            "trait" if t.is_ident() => {
                let name = toks.get(i + 1).filter(|t| t.is_ident()).map(|t| t.s.clone());
                pending = Some(Scope::Impl {
                    ty: name.clone(),
                    tr: name,
                });
                i += 2;
            }
            "struct" if t.is_ident() => {
                i = parse_struct(&toks, i, out);
            }
            "enum" | "union" if t.is_ident() => {
                // Skip the whole item: variant payloads look like types
                // and must not be read as calls.
                let mut j = i + 1;
                while j < toks.len() && !toks[j].is("{") && !toks[j].is(";") {
                    j += 1;
                }
                i = if toks.get(j).is_some_and(|t| t.is("{")) {
                    skip_group(&toks, j, "{", "}")
                } else {
                    j + 1
                };
            }
            "macro_rules" if t.is_ident() => {
                let mut j = i + 1;
                while j < toks.len() && !toks[j].is("{") {
                    j += 1;
                }
                i = skip_group(&toks, j, "{", "}");
            }
            "fn" if t.is_ident() => {
                i = parse_fn(fi, file, &toks, i, &mut stack, &mut pending, fns, out, &current_impl);
            }
            "let" if t.is_ident() && current_fn(&stack).is_some() => {
                // `let [mut] name : Type` — record the typed binding.
                let mut j = i + 1;
                if toks.get(j).is_some_and(|t| t.is("mut")) {
                    j += 1;
                }
                if toks.get(j).is_some_and(|t| t.is_ident())
                    && toks.get(j + 1).is_some_and(|t| t.is(":"))
                {
                    let name = toks[j].s.clone();
                    let start = j + 2;
                    let mut k = start;
                    let mut depth = 0i32;
                    while k < toks.len() {
                        match toks[k].s.as_str() {
                            "<" | "(" | "[" => depth += 1,
                            ">" | ")" | "]" => depth -= 1,
                            "=" | ";" if depth <= 0 => break,
                            _ => {}
                        }
                        k += 1;
                    }
                    if let Some(base) = type_base(&toks[start..k]) {
                        if let Some(id) = current_fn(&stack) {
                            out.fn_locals.entry(id).or_default().insert(name, base);
                        }
                    }
                    i = k;
                } else {
                    i += 1;
                }
            }
            _ if t.is_ident()
                && !KEYWORDS.contains(&t.s.as_str())
                && toks.get(i + 1).is_some_and(|n| n.is("(")) =>
            {
                if let Some(caller) = current_fn(&stack) {
                    let recv = classify_receiver(&toks, i, caller, &stack, out, &current_impl);
                    out.raw_calls.push(RawCall {
                        caller,
                        name: t.s.clone(),
                        recv,
                        line: t.line,
                    });
                }
                i += 1;
            }
            _ => i += 1,
        }
    }
}

/// Classifies the receiver of the call whose name token is at `i`.
fn classify_receiver(
    toks: &[Tok],
    i: usize,
    caller: FnId,
    stack: &[Scope],
    out: &ParseOut,
    current_impl: &dyn Fn(&[Scope]) -> ImplCtx,
) -> Recv {
    let prev = |k: usize| -> Option<&Tok> { i.checked_sub(k).and_then(|j| toks.get(j)) };
    let impl_ty = || current_impl(stack).0;
    let field_lookup = |owner: Option<String>, field: &str| -> Option<String> {
        // The impl's own struct first, then the workspace field map
        // (unique only): ambiguity degrades to Unknown, never a wrong
        // single binding.
        if let Some(owner) = owner {
            if let Some(t) = out
                .struct_fields
                .get(&owner)
                .and_then(|fs| fs.get(field))
            {
                return Some(t.clone());
            }
        }
        let mut hits: BTreeSet<&String> = BTreeSet::new();
        for fs in out.struct_fields.values() {
            if let Some(t) = fs.get(field) {
                hits.insert(t);
            }
        }
        match hits.len() {
            1 => hits.into_iter().next().cloned(),
            _ => None,
        }
    };
    match prev(1) {
        Some(p) if p.is(".") => {
            match prev(2) {
                Some(r) if r.is_ident() => {
                    let rname = &r.s;
                    let via_dot = prev(3).is_some_and(|t| t.is("."));
                    if via_dot {
                        // `<something>.r.m(` — r is a field.
                        let owner = match prev(4) {
                            Some(s) if s.is("self") => impl_ty(),
                            _ => None,
                        };
                        match field_lookup(owner, rname) {
                            Some(t) => Recv::Typed(t),
                            None => Recv::Unknown,
                        }
                    } else if rname == "self" {
                        match impl_ty() {
                            Some(t) => Recv::Typed(t),
                            None => Recv::Unknown,
                        }
                    } else {
                        // Plain binding: typed let / param, else a
                        // field of the impl's struct (method bodies
                        // often alias `let x = &mut self.x` — not
                        // tracked; see module docs).
                        match out
                            .fn_locals
                            .get(&caller)
                            .and_then(|m| m.get(rname))
                            .cloned()
                        {
                            Some(t) => Recv::Typed(t),
                            None => Recv::Unknown,
                        }
                    }
                }
                _ => Recv::Unknown,
            }
        }
        Some(p) if p.is("::") => match prev(2) {
            Some(q) if q.is_ident() => {
                let qn = &q.s;
                if qn == "Self" {
                    match impl_ty() {
                        Some(t) => Recv::Qualified(t),
                        None => Recv::Free,
                    }
                } else if qn.chars().next().is_some_and(|c| c.is_ascii_uppercase()) {
                    Recv::Qualified(qn.clone())
                } else {
                    Recv::Free
                }
            }
            _ => Recv::Free,
        },
        _ => Recv::Free,
    }
}

/// Parses a `struct` item starting at token `i` (the `struct`
/// keyword); records named fields' base types; returns the index
/// after the item.
fn parse_struct(toks: &[Tok], i: usize, out: &mut ParseOut) -> usize {
    let Some(name) = toks.get(i + 1).filter(|t| t.is_ident()).map(|t| t.s.clone()) else {
        return i + 1;
    };
    let mut j = i + 2;
    if toks.get(j).is_some_and(|t| t.is("<")) {
        let mut depth = 0i32;
        while j < toks.len() {
            match toks[j].s.as_str() {
                "<" => depth += 1,
                ">" => {
                    depth -= 1;
                    if depth == 0 {
                        j += 1;
                        break;
                    }
                }
                _ => {}
            }
            j += 1;
        }
    }
    match toks.get(j).map(|t| t.s.as_str()) {
        Some("(") => {
            // Tuple struct: skip to `;`.
            while j < toks.len() && !toks[j].is(";") {
                j += 1;
            }
            j + 1
        }
        Some("{") => {
            // Named fields: `[pub [(..)]] name : Type ,`.
            let mut k = j + 1;
            let mut depth = 1i32;
            let fields = out.struct_fields.entry(name).or_default();
            while k < toks.len() && depth > 0 {
                match toks[k].s.as_str() {
                    "{" => {
                        depth += 1;
                        k += 1;
                    }
                    "}" => {
                        depth -= 1;
                        k += 1;
                    }
                    "pub" if depth == 1 => {
                        k += 1;
                        if toks.get(k).is_some_and(|t| t.is("(")) {
                            let mut pd = 0i32;
                            while k < toks.len() {
                                match toks[k].s.as_str() {
                                    "(" => pd += 1,
                                    ")" => {
                                        pd -= 1;
                                        if pd == 0 {
                                            k += 1;
                                            break;
                                        }
                                    }
                                    _ => {}
                                }
                                k += 1;
                            }
                        }
                    }
                    _ if depth == 1
                        && toks[k].is_ident()
                        && toks.get(k + 1).is_some_and(|t| t.is(":")) =>
                    {
                        let fname = toks[k].s.clone();
                        let start = k + 2;
                        let mut e = start;
                        let mut td = 0i32;
                        while e < toks.len() {
                            match toks[e].s.as_str() {
                                "<" | "(" | "[" => td += 1,
                                ">" | ")" | "]" => {
                                    if td == 0 && toks[e].is("}") {
                                        break;
                                    }
                                    td -= 1;
                                    if td < 0 {
                                        break;
                                    }
                                }
                                "," if td == 0 => break,
                                "}" if td == 0 => break,
                                _ => {}
                            }
                            e += 1;
                        }
                        if let Some(base) = type_base(&toks[start..e]) {
                            fields.insert(fname, base);
                        }
                        k = e;
                    }
                    _ => k += 1,
                }
            }
            k
        }
        _ => j + 1, // unit struct `struct X;`
    }
}

/// Parses a `fn` item starting at token `i` (the `fn` keyword):
/// registers the definition, records typed params, and returns the
/// index of the body `{` (so the main loop pushes the scope) or just
/// past the `;` for body-less declarations.
#[allow(clippy::too_many_arguments)]
fn parse_fn(
    fi: usize,
    file: &SourceFile,
    toks: &[Tok],
    i: usize,
    stack: &mut [Scope],
    pending: &mut Option<Scope>,
    fns: &mut Vec<FnDef>,
    out: &mut ParseOut,
    current_impl: &dyn Fn(&[Scope]) -> ImplCtx,
) -> usize {
    let Some(name_tok) = toks.get(i + 1).filter(|t| t.is_ident()) else {
        return i + 1; // `fn(` type position
    };
    let name = name_tok.s.clone();
    let sig_line = toks[i].line;
    let mut j = i + 2;
    // Generics.
    if toks.get(j).is_some_and(|t| t.is("<")) {
        let mut depth = 0i32;
        while j < toks.len() {
            match toks[j].s.as_str() {
                "<" => depth += 1,
                ">" => {
                    depth -= 1;
                    if depth == 0 {
                        j += 1;
                        break;
                    }
                }
                _ => {}
            }
            j += 1;
        }
    }
    // Params.
    let mut params: Vec<(String, String)> = Vec::new();
    if toks.get(j).is_some_and(|t| t.is("(")) {
        let start = j + 1;
        let mut depth = 1i32;
        let mut k = start;
        let mut param_start = start;
        let flush = |s: usize, e: usize, params: &mut Vec<(String, String)>| {
            let p = &toks[s..e];
            if p.iter().any(|t| t.is("self")) {
                return;
            }
            // pattern : type — split at the first top-level `:`.
            let mut d = 0i32;
            for (ci, t) in p.iter().enumerate() {
                match t.s.as_str() {
                    "<" | "(" | "[" => d += 1,
                    ">" | ")" | "]" => d -= 1,
                    ":" if d == 0 => {
                        let pname = p[..ci]
                            .iter()
                            .rev()
                            .find(|t| t.is_ident() && !t.is("mut") && !t.is("ref"));
                        if let (Some(pn), Some(base)) = (pname, type_base(&p[ci + 1..])) {
                            params.push((pn.s.clone(), base));
                        }
                        return;
                    }
                    _ => {}
                }
            }
        };
        while k < toks.len() {
            match toks[k].s.as_str() {
                "(" | "[" => depth += 1,
                ")" | "]" => {
                    depth -= 1;
                    if depth == 0 {
                        flush(param_start, k, &mut params);
                        k += 1;
                        break;
                    }
                }
                "," if depth == 1 => {
                    flush(param_start, k, &mut params);
                    param_start = k + 1;
                }
                _ => {}
            }
            k += 1;
        }
        j = k;
    }
    // Return type / where clause: scan to the body `{` or `;`.
    while j < toks.len() && !toks[j].is("{") && !toks[j].is(";") {
        j += 1;
    }
    if !toks.get(j).is_some_and(|t| t.is("{")) {
        return j + 1; // declaration without a body
    }
    let (impl_type, trait_name) = current_impl(stack);
    let id = fns.len();
    fns.push(FnDef {
        name,
        impl_type,
        trait_name,
        file: fi,
        sig_line,
        body: (toks[j].line, file.len().max(toks[j].line)),
        crate_dir: file.crate_dir.clone(),
        is_test: file.is_test(sig_line),
        roots: Vec::new(),
    });
    if !params.is_empty() {
        out.fn_locals.entry(id).or_default().extend(params);
    }
    *pending = Some(Scope::Fn(id));
    j // the main loop consumes this `{` and pushes the scope
}

// ---------------------------------------------------------------
// Line-based token facts
// ---------------------------------------------------------------

const PANIC_TOKENS: &[&str] = &[".unwrap()", ".expect(", "panic!", "todo!(", "unimplemented!("];

const ALLOC_TOKENS: &[&str] = &[
    "Box::new",
    "vec![",
    "format!(",
    ".to_string()",
    ".to_owned()",
    ".to_vec()",
    "String::from(",
    ".collect(",
    ".collect::<",
    "with_capacity(",
    ".push(",
    ".push_back(",
    ".push_front(",
    ".insert(",
    ".extend(",
    ".reserve(",
    ".resize(",
];

/// Extracts may-panic / may-allocate token facts from one scrubbed
/// line belonging to a function with typed bindings `locals`.
fn line_facts(
    code: &str,
    line: usize,
    locals: Option<&BTreeMap<String, String>>,
    field_types: &BTreeMap<&str, BTreeSet<&str>>,
    out: &mut Vec<Fact>,
) {
    for pat in PANIC_TOKENS {
        if code.contains(pat) {
            out.push(Fact {
                kind: FactKind::MayPanic,
                line,
                what: format!("`{pat}`"),
            });
        }
    }
    if let Some(ix) = crate::rules::panic_free::literal_index(code) {
        out.push(Fact {
            kind: FactKind::MayPanic,
            line,
            what: format!("indexing by literal `{ix}`"),
        });
    }
    if let Some(r) = range_slice_index(code) {
        out.push(Fact {
            kind: FactKind::MayPanic,
            line,
            what: format!("range-slice indexing `[{r}]`"),
        });
    }
    if let Some(d) = int_div_by_ident(code) {
        out.push(Fact {
            kind: FactKind::MayPanic,
            line,
            what: format!("integer division/remainder by `{d}`"),
        });
    }
    for pat in ALLOC_TOKENS {
        if code.contains(pat) {
            out.push(Fact {
                kind: FactKind::MayAlloc,
                line,
                what: format!("`{pat}`"),
            });
        }
    }
    // `.clone()` of a binding/field whose type is an owned collection.
    let mut from = 0;
    while let Some(pos) = code[from..].find(".clone()") {
        let at = from + pos;
        let recv: String = code[..at]
            .chars()
            .rev()
            .take_while(|c| c.is_ascii_alphanumeric() || *c == '_')
            .collect::<Vec<_>>()
            .into_iter()
            .rev()
            .collect();
        let ty = locals
            .and_then(|m| m.get(&recv))
            .map(|t| t.as_str())
            .or_else(|| {
                field_types
                    .get(recv.as_str())
                    .filter(|s| s.len() == 1)
                    .and_then(|s| s.iter().next().copied())
            });
        if ty.is_some_and(|t| COLLECTION_TYPES.contains(&t)) {
            out.push(Fact {
                kind: FactKind::MayAlloc,
                line,
                what: format!("`{recv}.clone()` of a collection"),
            });
        }
        from = at + 1;
    }
}

/// Finds `expr[a..b]`-style range slicing (any range with at least one
/// bound; the full-range `[..]` cannot panic and is ignored). Returns
/// the bracket content.
fn range_slice_index(code: &str) -> Option<String> {
    let b = code.as_bytes();
    let mut i = 0;
    while i < b.len() {
        if b[i] == b'[' {
            let prev = b[..i].iter().rev().find(|c| !c.is_ascii_whitespace());
            let indexable = matches!(prev, Some(c) if c.is_ascii_alphanumeric() || matches!(c, b'_' | b')' | b']'));
            if indexable {
                if let Some(j) = b[i + 1..].iter().position(|&c| c == b']').map(|p| i + 1 + p) {
                    let inner = code[i + 1..j].trim();
                    if inner.contains("..") && inner != ".." && !inner.contains('=') {
                        return Some(inner.to_string());
                    }
                    // `..=` ranges can also panic; catch them too.
                    if inner.contains("..=") {
                        return Some(inner.to_string());
                    }
                }
            }
        }
        i += 1;
    }
    None
}

/// Finds `lhs / ident` or `lhs % ident` — integer division/remainder
/// whose divisor is a runtime value. Heuristics, documented in
/// `DESIGN.md` §5.8: lines with a float hint (`f64`/`f32`/a float
/// literal) are skipped (float division cannot panic), and
/// `SCREAMING_CASE` const divisors are skipped (a constant zero
/// divisor fails the build via the `unconditional_panic` lint).
fn int_div_by_ident(code: &str) -> Option<String> {
    if code.contains("f64") || code.contains("f32") {
        return None;
    }
    let b = code.as_bytes();
    // Float literal hint: digit '.' digit.
    for w in b.windows(3) {
        if w[1] == b'.' && w[0].is_ascii_digit() && w[2].is_ascii_digit() {
            return None;
        }
    }
    let mut i = 0;
    while i < b.len() {
        let c = b[i];
        if (c == b'/' || c == b'%')
            && (i == 0 || b[i - 1] != b'/')
            && b.get(i + 1) != Some(&b'/')
            && b.get(i + 1) != Some(&b'=')
        {
            // LHS must end an expression (ident, `)`, `]`, or a digit).
            let lhs = b[..i].iter().rev().find(|c| !c.is_ascii_whitespace());
            let lhs_ok =
                matches!(lhs, Some(c) if c.is_ascii_alphanumeric() || matches!(c, b'_' | b')' | b']'));
            if lhs_ok {
                let mut j = i + 1;
                while j < b.len() && b[j].is_ascii_whitespace() {
                    j += 1;
                }
                let start = j;
                while j < b.len() && (b[j].is_ascii_alphanumeric() || b[j] == b'_') {
                    j += 1;
                }
                if j > start && !b[start].is_ascii_digit() {
                    // `x / y.max(1)` cannot divide by zero.
                    let clamped = code[j..].starts_with(".max(")
                        && code.as_bytes().get(j + 5).is_some_and(|c| (b'1'..=b'9').contains(c));
                    if clamped {
                        i = j;
                        continue;
                    }
                    let ident = &code[start..j];
                    let screaming = ident
                        .chars()
                        .all(|c| c.is_ascii_uppercase() || c.is_ascii_digit() || c == '_');
                    if !screaming && ident != "self" {
                        return Some(ident.to_string());
                    }
                    // `self.CONST`? impossible; `x / self.field` —
                    // treat `self` like any other runtime divisor by
                    // reading the field name after it.
                    if ident == "self" && b.get(j) == Some(&b'.') {
                        let fs = j + 1;
                        let mut fe = fs;
                        while fe < b.len() && (b[fe].is_ascii_alphanumeric() || b[fe] == b'_') {
                            fe += 1;
                        }
                        if fe > fs {
                            return Some(format!("self.{}", &code[fs..fe]));
                        }
                    }
                }
            }
        }
        i += 1;
    }
    None
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::path::PathBuf;

    fn lib(path: &str, crate_dir: &str, text: &str) -> SourceFile {
        SourceFile::parse(PathBuf::from(path), crate_dir.into(), FileRole::Lib, text)
    }

    fn graph_of(texts: &[(&str, &str, &str)]) -> (CodeGraph, Vec<SourceFile>) {
        let files: Vec<SourceFile> = texts
            .iter()
            .map(|(p, c, t)| lib(p, c, t))
            .collect();
        (build(&files), files)
    }

    fn fn_named<'g>(g: &'g CodeGraph, name: &str) -> &'g FnDef {
        g.fns
            .iter()
            .find(|f| f.name == name)
            .unwrap_or_else(|| panic!("no fn {name}"))
    }
    fn id_named(g: &CodeGraph, name: &str) -> FnId {
        g.fns
            .iter()
            .position(|f| f.name == name)
            .unwrap_or_else(|| panic!("no fn {name}"))
    }

    #[test]
    fn fns_and_impl_context_are_extracted() {
        let (g, _) = graph_of(&[(
            "crates/x/src/lib.rs",
            "x",
            "pub struct T { v: u32 }\n\
             impl T {\n    pub fn m(&self) -> u32 { self.v }\n}\n\
             impl Clone for T {\n    fn clone(&self) -> T { T { v: self.v } }\n}\n\
             pub fn free() {}\n",
        )]);
        let m = fn_named(&g, "m");
        assert_eq!(m.impl_type.as_deref(), Some("T"));
        assert!(m.trait_name.is_none());
        let c = fn_named(&g, "clone");
        assert_eq!(c.impl_type.as_deref(), Some("T"));
        assert_eq!(c.trait_name.as_deref(), Some("Clone"));
        assert!(fn_named(&g, "free").impl_type.is_none());
    }

    #[test]
    fn typed_receivers_resolve_and_std_gets_no_edges() {
        let (g, _) = graph_of(&[(
            "crates/x/src/lib.rs",
            "x",
            "pub struct Ring { n: u64 }\n\
             impl Ring {\n    pub fn pop(&mut self) -> u64 { self.n }\n}\n\
             pub struct Owner { ring: Ring }\n\
             impl Owner {\n    pub fn step(&mut self, v: Vec<u64>) -> u64 {\n        let x = v.len() as u64;\n        self.ring.pop() + x\n    }\n}\n",
        )]);
        let step = id_named(&g, "step");
        let pop = id_named(&g, "pop");
        assert_eq!(g.calls[step], vec![pop], "field-typed call resolves; Vec::len has no workspace target");
    }

    #[test]
    fn untyped_method_calls_bind_same_crate_first() {
        let (g, _) = graph_of(&[
            (
                "crates/a/src/lib.rs",
                "a",
                "pub struct A;\nimpl A {\n    pub fn work(&self) {}\n}\n\
                 pub fn drive(x: &A) { x.work() }\n\
                 pub fn blind() { helper().work() }\nfn helper() -> A { A }\n",
            ),
            (
                "crates/b/src/lib.rs",
                "b",
                "pub struct B;\nimpl B {\n    pub fn work(&self) { panic!(\"boom\") }\n}\n",
            ),
        ]);
        let blind = id_named(&g, "blind");
        let a_work = g
            .fns
            .iter()
            .position(|f| f.name == "work" && f.crate_dir == "a")
            .unwrap();
        assert!(
            g.calls[blind].contains(&a_work),
            "unknown receiver binds same-crate impl"
        );
        let b_work = g
            .fns
            .iter()
            .position(|f| f.name == "work" && f.crate_dir == "b")
            .unwrap();
        assert!(
            !g.calls[blind].contains(&b_work),
            "same-crate candidates shadow cross-crate ones"
        );
    }

    #[test]
    fn facts_panic_alloc_charge_touch() {
        let (g, _) = graph_of(&[(
            "crates/x/src/lib.rs",
            "x",
            "pub struct OaTable { n: u64 }\n\
             impl OaTable {\n    pub fn get(&self) -> u64 { self.n }\n}\n\
             pub struct M;\nimpl M {\n    pub fn stall(&mut self, _n: u64) {}\n}\n\
             pub struct S { table: OaTable, m: M }\n\
             impl S {\n    pub fn hot(&mut self, v: &[u64], k: u64) -> u64 {\n\
                 let x = v.first().unwrap();\n\
                 let mut out: Vec<u64> = Vec::new();\n\
                 out.push(*x);\n\
                 let t = self.table.get();\n\
                 self.m.stall(1);\n\
                 t % k\n    }\n}\n",
        )]);
        let hot = id_named(&g, "hot");
        let kinds: Vec<(FactKind, &str)> = g.facts[hot]
            .iter()
            .map(|f| (f.kind, f.what.as_str()))
            .collect();
        assert!(kinds.iter().any(|(k, w)| *k == FactKind::MayPanic && w.contains("unwrap")));
        assert!(kinds.iter().any(|(k, w)| *k == FactKind::MayAlloc && w.contains("push")));
        assert!(kinds.iter().any(|(k, w)| *k == FactKind::Charge && w.contains("stall")));
        assert!(kinds.iter().any(|(k, w)| *k == FactKind::Touch && w.contains("OaTable::get")));
        assert!(
            kinds.iter().any(|(k, w)| *k == FactKind::MayPanic && w.contains("remainder")),
            "{kinds:?}"
        );
    }

    #[test]
    fn touches_inside_the_charged_type_do_not_count() {
        let (g, _) = graph_of(&[(
            "crates/x/src/lib.rs",
            "x",
            "pub struct OaTable { n: u64 }\n\
             impl OaTable {\n    fn probe(&self) -> u64 { self.n }\n    pub fn get(&self) -> u64 { self.probe() }\n}\n",
        )]);
        let get = id_named(&g, "get");
        assert!(
            g.facts[get].iter().all(|f| f.kind != FactKind::Touch),
            "internal helper calls are not touches"
        );
    }

    #[test]
    fn hot_path_annotations_attach_to_the_next_fn() {
        let (g, _) = graph_of(&[(
            "crates/x/src/lib.rs",
            "x",
            "// analyze::hot_path(my-root)\npub fn rooted() {}\n\
             // analyze::hot_path(dangling)\n",
        )]);
        assert_eq!(fn_named(&g, "rooted").roots.len(), 1);
        assert_eq!(fn_named(&g, "rooted").roots[0].name, "my-root");
        assert_eq!(g.unattached_roots.len(), 1);
        assert_eq!(g.unattached_roots[0].2, "dangling");
    }

    #[test]
    fn cfg_test_fns_are_excluded_from_the_graph() {
        let (g, _) = graph_of(&[(
            "crates/x/src/lib.rs",
            "x",
            "pub fn caller() { helper() }\n\
             #[cfg(test)]\nmod tests {\n    pub fn helper() { panic!(\"test only\") }\n}\n",
        )]);
        let caller = id_named(&g, "caller");
        assert!(
            g.calls[caller].is_empty(),
            "calls never resolve into cfg(test) code"
        );
    }

    #[test]
    fn calls_inside_closures_and_macro_args_belong_to_the_enclosing_fn() {
        let (g, _) = graph_of(&[(
            "crates/x/src/lib.rs",
            "x",
            "fn leaf() {}\n\
             pub fn outer(v: &[u64]) -> u64 {\n\
                 let s: u64 = v.iter().map(|x| { leaf(); *x }).sum();\n\
                 assert!(s > 0, \"{}\", check(s));\n    s\n}\n\
             fn check(x: u64) -> u64 { x }\n",
        )]);
        let outer = id_named(&g, "outer");
        assert!(g.calls[outer].contains(&id_named(&g, "leaf")), "closure body call");
        assert!(g.calls[outer].contains(&id_named(&g, "check")), "macro-arg call");
    }

    #[test]
    fn div_heuristics_skip_floats_and_consts() {
        assert_eq!(int_div_by_ident("let a = x / y;"), Some("y".into()));
        assert_eq!(int_div_by_ident("let a = x % cap;"), Some("cap".into()));
        assert_eq!(int_div_by_ident("let a = x as f64 / rate;"), None);
        assert_eq!(int_div_by_ident("let a = 1.5 / rate;"), None);
        assert_eq!(int_div_by_ident("let a = x / DESC_BYTES;"), None);
        assert_eq!(int_div_by_ident("let a = x / 4;"), None);
        assert_eq!(int_div_by_ident("// not code"), None);
        assert_eq!(
            int_div_by_ident("let s = n / self.cap;"),
            Some("self.cap".into())
        );
    }

    #[test]
    fn range_slice_shapes() {
        assert_eq!(range_slice_index("&buf[..4]"), Some("..4".into()));
        assert_eq!(range_slice_index("&buf[a..b]"), Some("a..b".into()));
        assert_eq!(range_slice_index("&buf[..]"), None, "full range cannot panic");
        assert_eq!(range_slice_index("for i in 0..n {"), None);
        assert_eq!(range_slice_index("let x: [u8; 4];"), None);
    }
}
