//! CLI for the static invariant analyzer.
//!
//! ```text
//! cargo run -p analyze -- --check                 # gate: exit 1 on any violation
//! cargo run -p analyze -- --fix-inventory         # also write results/analyze_report.json
//! cargo run -p analyze -- --check --path f.rs \
//!     --crate-name simnet --role lib              # scan one file (fixture tests)
//! ```

use analyze::source::FileRole;
use analyze::{scan_source, scan_workspace, Finding, Status};
use std::path::PathBuf;
use std::process::ExitCode;

/// Violation output format: `plain` for local runs, `github` for CI
/// (`::error file=...,line=...::` workflow commands render inline on
/// the PR diff).
#[derive(Clone, Copy, PartialEq)]
enum Format {
    Plain,
    Github,
}

struct Opts {
    check: bool,
    fix_inventory: bool,
    root: Option<PathBuf>,
    path: Option<PathBuf>,
    crate_name: String,
    role: FileRole,
    format: Format,
}

fn usage() -> ! {
    eprintln!(
        "usage: analyze [--check] [--fix-inventory] [--root DIR] [--format plain|github]\n\
         \x20      [--path FILE --crate-name NAME --role lib|bin|test|bench]"
    );
    std::process::exit(2);
}

fn parse_args() -> Opts {
    let mut opts = Opts {
        check: false,
        fix_inventory: false,
        root: None,
        path: None,
        crate_name: "simnet".to_string(),
        role: FileRole::Lib,
        format: Format::Plain,
    };
    let mut args = std::env::args().skip(1);
    while let Some(a) = args.next() {
        match a.as_str() {
            "--check" => opts.check = true,
            "--fix-inventory" => opts.fix_inventory = true,
            "--root" => opts.root = Some(PathBuf::from(args.next().unwrap_or_else(|| usage()))),
            "--path" => opts.path = Some(PathBuf::from(args.next().unwrap_or_else(|| usage()))),
            "--crate-name" => opts.crate_name = args.next().unwrap_or_else(|| usage()),
            "--role" => {
                opts.role = match args.next().as_deref() {
                    Some("lib") => FileRole::Lib,
                    Some("bin") => FileRole::Bin,
                    Some("test") => FileRole::Test,
                    Some("bench") => FileRole::Bench,
                    _ => usage(),
                }
            }
            "--format" => {
                opts.format = match args.next().as_deref() {
                    Some("plain") => Format::Plain,
                    Some("github") => Format::Github,
                    _ => usage(),
                }
            }
            _ => usage(),
        }
    }
    if !opts.check && !opts.fix_inventory {
        opts.check = true;
    }
    opts
}

/// Escapes a message for a GitHub Actions workflow-command value:
/// `%`, CR and LF must be percent-encoded.
fn gh_escape(s: &str) -> String {
    s.replace('%', "%25").replace('\r', "%0D").replace('\n', "%0A")
}

/// The workspace root: `--root` if given, else the manifest's
/// grandparent (`crates/analyze/../..`), which works from any cwd.
fn workspace_root(opts: &Opts) -> PathBuf {
    opts.root.clone().unwrap_or_else(|| {
        PathBuf::from(env!("CARGO_MANIFEST_DIR"))
            .ancestors()
            .nth(2)
            .map(PathBuf::from)
            .unwrap_or_else(|| PathBuf::from("."))
    })
}

fn main() -> ExitCode {
    let opts = parse_args();

    let findings: Vec<Finding> = if let Some(path) = &opts.path {
        let text = match std::fs::read_to_string(path) {
            Ok(t) => t,
            Err(e) => {
                eprintln!("analyze: cannot read {}: {e}", path.display());
                return ExitCode::from(2);
            }
        };
        scan_source(&path.to_string_lossy(), &opts.crate_name, opts.role, &text)
    } else {
        match scan_workspace(&workspace_root(&opts)) {
            Ok(f) => f,
            Err(e) => {
                eprintln!("analyze: {e}");
                return ExitCode::from(2);
            }
        }
    };

    let violations: Vec<&Finding> = findings
        .iter()
        .filter(|f| f.status == Status::Violation)
        .collect();
    let allowed = findings.len() - violations.len();

    if opts.fix_inventory {
        let root = workspace_root(&opts);
        let results = root.join("results");
        let out = results.join("analyze_report.json");
        if let Err(e) = std::fs::create_dir_all(&results)
            .and_then(|()| std::fs::write(&out, analyze::report_json(&findings)))
        {
            eprintln!("analyze: cannot write {}: {e}", out.display());
            return ExitCode::from(2);
        }
        println!("analyze: wrote {} ({} findings)", out.display(), findings.len());
    }

    for v in &violations {
        match opts.format {
            Format::Plain => println!("{}:{}: [{}] {}", v.path, v.line, v.rule, v.message),
            Format::Github => println!(
                "::error file={},line={},title=analyze {}::{}",
                v.path,
                v.line.max(1),
                v.rule,
                gh_escape(&v.message)
            ),
        }
    }
    println!(
        "analyze: {} violation(s), {} justified hazard(s) across {} finding(s)",
        violations.len(),
        allowed,
        findings.len()
    );
    if opts.check && !violations.is_empty() {
        return ExitCode::FAILURE;
    }
    ExitCode::SUCCESS
}
