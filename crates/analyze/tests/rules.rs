//! The analyzer's own acceptance suite: every rule has at least one
//! known-good and one known-bad fixture, the CLI exits nonzero on each
//! bad fixture and zero on each good one, and the real workspace scans
//! clean.

use analyze::source::FileRole;
use analyze::{scan_source, scan_workspace, Finding, Status};
use std::path::{Path, PathBuf};
use std::process::Command;

fn fixture(name: &str) -> (PathBuf, String) {
    let path = Path::new(env!("CARGO_MANIFEST_DIR"))
        .join("tests/fixtures")
        .join(name);
    let text = std::fs::read_to_string(&path)
        .unwrap_or_else(|e| panic!("fixture {name}: {e}"));
    (path, text)
}

/// Scans a fixture under a virtual crate/role.
fn scan_fixture(name: &str, crate_dir: &str, role: FileRole) -> Vec<Finding> {
    let (path, text) = fixture(name);
    scan_source(&path.to_string_lossy(), crate_dir, role, &text)
}

fn violations<'a>(findings: &'a [Finding], rule: &str) -> Vec<&'a Finding> {
    findings
        .iter()
        .filter(|f| f.rule == rule && f.status == Status::Violation)
        .collect()
}

fn assert_clean(findings: &[Finding], ctx: &str) {
    let bad: Vec<_> = findings
        .iter()
        .filter(|f| f.status == Status::Violation)
        .collect();
    assert!(bad.is_empty(), "{ctx} should be clean, got {bad:#?}");
}

// ------------------------------------------------------------------
// Per-rule fixture tests (lib API)
// ------------------------------------------------------------------

#[test]
fn r1_nondeterminism_bad_fixture_fails() {
    let f = scan_fixture("nondeterminism_bad.rs", "simnet", FileRole::Lib);
    let v = violations(&f, "nondeterminism");
    // HashMap + HashSet uses/fields, two wall-clock types, thread_rng.
    assert!(v.len() >= 6, "expected >=6 R1 violations, got {v:#?}");
    assert!(v.iter().any(|f| f.message.contains("thread_rng")));
    assert!(v.iter().any(|f| f.message.contains("Instant")));
}

#[test]
fn r1_nondeterminism_good_fixture_passes_and_reports_justifications() {
    let f = scan_fixture("nondeterminism_good.rs", "simnet", FileRole::Lib);
    assert_clean(&f, "nondeterminism_good.rs");
    let allowed: Vec<_> = f
        .iter()
        .filter(|x| matches!(x.status, Status::Allowed(_)))
        .collect();
    assert_eq!(allowed.len(), 2, "both justified HashMaps reported: {f:#?}");
}

#[test]
fn r1_only_applies_to_sim_crate_library_code() {
    let (_, text) = fixture("nondeterminism_bad.rs");
    // Same hazards in a non-sim crate, a bench binary, or test code are
    // out of scope.
    assert_clean(
        &scan_source("crates/layout/src/x.rs", "layout", FileRole::Lib, &text),
        "non-sim crate",
    );
    assert_clean(
        &scan_source("crates/bench/src/bin/x.rs", "bench", FileRole::Bin, &text),
        "bench binary",
    );
    assert_clean(
        &scan_source("crates/simnet/tests/x.rs", "simnet", FileRole::Test, &text),
        "test target",
    );
}

#[test]
fn r2_rng_budget_bad_fixture_fails_both_ways() {
    let f = scan_fixture("rng_budget_bad_impair.rs", "simnet", FileRole::Lib);
    let v = violations(&f, "rng-draw-budget");
    assert_eq!(v.len(), 2, "{v:#?}");
    assert!(v.iter().any(|f| f.message.contains("no `// draws: N`")));
    assert!(v
        .iter()
        .any(|f| f.message.contains("declares `draws: 2`") && f.message.contains("3 RNG")));
}

#[test]
fn r2_rng_budget_good_fixture_passes() {
    let f = scan_fixture("rng_budget_good_impair.rs", "simnet", FileRole::Lib);
    assert_clean(&f, "rng_budget_good_impair.rs");
}

#[test]
fn r3_unsafe_bad_fixture_fails() {
    let f = scan_fixture("unsafe_bad.rs", "netstack", FileRole::Lib);
    assert_eq!(violations(&f, "unsafe-safety").len(), 2, "{f:#?}");
}

#[test]
fn r3_unsafe_good_fixture_passes_even_in_tests() {
    // R3 applies to tests too, so scan as a test target to prove the
    // good fixture's comments satisfy it there as well.
    let f = scan_fixture("unsafe_good.rs", "netstack", FileRole::Test);
    assert_clean(&f, "unsafe_good.rs");
}

#[test]
fn r4_panic_free_bad_fixture_fails() {
    let f = scan_fixture("panic_free_bad.rs", "core", FileRole::Lib);
    let v = violations(&f, "panic-free-library");
    assert!(v.len() >= 5, "unwrap/expect/panic/todo/index: {v:#?}");
    assert!(v.iter().any(|f| f.message.contains("indexing by literal")));
}

#[test]
fn r4_panic_free_good_fixture_passes() {
    let f = scan_fixture("panic_free_good.rs", "core", FileRole::Lib);
    assert_clean(&f, "panic_free_good.rs");
}

#[test]
fn r4_is_scoped_to_the_hot_path_crates() {
    let (_, text) = fixture("panic_free_bad.rs");
    assert_clean(
        &scan_source("crates/signaling/src/x.rs", "signaling", FileRole::Lib, &text),
        "signaling is not in the panic-free set",
    );
}

#[test]
fn r5_float_reduction_bad_fixture_fails() {
    let f = scan_fixture("float_reduction_bad.rs", "bench", FileRole::Lib);
    let v = violations(&f, "float-reduction");
    assert_eq!(v.len(), 2, "sum::<f64> and .fold: {v:#?}");
}

#[test]
fn r5_float_reduction_good_fixture_passes() {
    let f = scan_fixture("float_reduction_good.rs", "bench", FileRole::Lib);
    assert_clean(&f, "float_reduction_good.rs");
}

#[test]
fn r5_ignores_files_that_do_not_touch_the_parallel_executor() {
    let text = "pub fn mean(xs: &[f64]) -> f64 { xs.iter().sum::<f64>() / xs.len() as f64 }\n";
    assert_clean(
        &scan_source("crates/simnet/src/x.rs", "simnet", FileRole::Lib, text),
        "serial f64 sum",
    );
}

#[test]
fn allow_grammar_bad_fixture_fails() {
    let f = scan_fixture("allow_grammar_bad.rs", "simnet", FileRole::Lib);
    let v = violations(&f, "allow-grammar");
    assert_eq!(v.len(), 2, "missing reason and empty reason: {v:#?}");
    // And the unjustified hazard underneath stays a violation.
    assert!(!violations(&f, "nondeterminism").is_empty());
}

// ------------------------------------------------------------------
// CLI exit codes (the CI contract)
// ------------------------------------------------------------------

fn run_cli(fixture_name: &str, crate_dir: &str, role: &str) -> std::process::ExitStatus {
    let (path, _) = fixture(fixture_name);
    Command::new(env!("CARGO_BIN_EXE_analyze"))
        .args(["--check", "--path"])
        .arg(&path)
        .args(["--crate-name", crate_dir, "--role", role])
        .output()
        .expect("spawn analyze binary")
        .status
}

#[test]
fn cli_exits_nonzero_on_every_bad_fixture() {
    for (name, crate_dir) in [
        ("nondeterminism_bad.rs", "simnet"),
        ("rng_budget_bad_impair.rs", "simnet"),
        ("unsafe_bad.rs", "netstack"),
        ("panic_free_bad.rs", "core"),
        ("float_reduction_bad.rs", "bench"),
        ("allow_grammar_bad.rs", "simnet"),
    ] {
        let status = run_cli(name, crate_dir, "lib");
        assert!(!status.success(), "{name} must fail the gate");
    }
}

#[test]
fn cli_exits_zero_on_every_good_fixture() {
    for (name, crate_dir) in [
        ("nondeterminism_good.rs", "simnet"),
        ("rng_budget_good_impair.rs", "simnet"),
        ("unsafe_good.rs", "netstack"),
        ("panic_free_good.rs", "core"),
        ("float_reduction_good.rs", "bench"),
    ] {
        let status = run_cli(name, crate_dir, "lib");
        assert!(status.success(), "{name} must pass the gate");
    }
}

// ------------------------------------------------------------------
// The real workspace passes clean
// ------------------------------------------------------------------

#[test]
fn workspace_scans_clean() {
    let root = Path::new(env!("CARGO_MANIFEST_DIR"))
        .ancestors()
        .nth(2)
        .expect("workspace root");
    let findings = scan_workspace(root).expect("scan workspace");
    let bad: Vec<_> = findings
        .iter()
        .filter(|f| f.status == Status::Violation)
        .collect();
    assert!(
        bad.is_empty(),
        "workspace must have zero unjustified hazards, got {bad:#?}"
    );
    // The justified-hazard inventory is non-empty (the replay memoizer
    // keeps its HashMaps, invariant-backed expects stay): the report
    // must carry their reasons.
    assert!(findings
        .iter()
        .any(|f| matches!(&f.status, Status::Allowed(r) if !r.is_empty())));
}
