//! The analyzer's own acceptance suite: every rule has at least one
//! known-good and one known-bad fixture, the CLI exits nonzero on each
//! bad fixture and zero on each good one, and the real workspace scans
//! clean.

use analyze::source::FileRole;
use analyze::{scan_source, scan_workspace, Finding, Status};
use std::path::{Path, PathBuf};
use std::process::Command;

fn fixture(name: &str) -> (PathBuf, String) {
    let path = Path::new(env!("CARGO_MANIFEST_DIR"))
        .join("tests/fixtures")
        .join(name);
    let text = std::fs::read_to_string(&path)
        .unwrap_or_else(|e| panic!("fixture {name}: {e}"));
    (path, text)
}

/// Scans a fixture under a virtual crate/role.
fn scan_fixture(name: &str, crate_dir: &str, role: FileRole) -> Vec<Finding> {
    let (path, text) = fixture(name);
    scan_source(&path.to_string_lossy(), crate_dir, role, &text)
}

fn violations<'a>(findings: &'a [Finding], rule: &str) -> Vec<&'a Finding> {
    findings
        .iter()
        .filter(|f| f.rule == rule && f.status == Status::Violation)
        .collect()
}

fn assert_clean(findings: &[Finding], ctx: &str) {
    let bad: Vec<_> = findings
        .iter()
        .filter(|f| f.status == Status::Violation)
        .collect();
    assert!(bad.is_empty(), "{ctx} should be clean, got {bad:#?}");
}

// ------------------------------------------------------------------
// Per-rule fixture tests (lib API)
// ------------------------------------------------------------------

#[test]
fn r1_nondeterminism_bad_fixture_fails() {
    let f = scan_fixture("nondeterminism_bad.rs", "simnet", FileRole::Lib);
    let v = violations(&f, "nondeterminism");
    // HashMap + HashSet uses/fields, two wall-clock types, thread_rng.
    assert!(v.len() >= 6, "expected >=6 R1 violations, got {v:#?}");
    assert!(v.iter().any(|f| f.message.contains("thread_rng")));
    assert!(v.iter().any(|f| f.message.contains("Instant")));
}

#[test]
fn r1_nondeterminism_good_fixture_passes_and_reports_justifications() {
    let f = scan_fixture("nondeterminism_good.rs", "simnet", FileRole::Lib);
    assert_clean(&f, "nondeterminism_good.rs");
    let allowed: Vec<_> = f
        .iter()
        .filter(|x| matches!(x.status, Status::Allowed(_)))
        .collect();
    assert_eq!(allowed.len(), 2, "both justified HashMaps reported: {f:#?}");
}

#[test]
fn r1_only_applies_to_sim_crate_library_code() {
    let (_, text) = fixture("nondeterminism_bad.rs");
    // Same hazards in a non-sim crate, a bench binary, or test code are
    // out of scope.
    assert_clean(
        &scan_source("crates/layout/src/x.rs", "layout", FileRole::Lib, &text),
        "non-sim crate",
    );
    assert_clean(
        &scan_source("crates/bench/src/bin/x.rs", "bench", FileRole::Bin, &text),
        "bench binary",
    );
    assert_clean(
        &scan_source("crates/simnet/tests/x.rs", "simnet", FileRole::Test, &text),
        "test target",
    );
}

#[test]
fn r2_rng_budget_bad_fixture_fails_both_ways() {
    let f = scan_fixture("rng_budget_bad_impair.rs", "simnet", FileRole::Lib);
    let v = violations(&f, "rng-draw-budget");
    assert_eq!(v.len(), 2, "{v:#?}");
    assert!(v.iter().any(|f| f.message.contains("no `// draws: N`")));
    assert!(v
        .iter()
        .any(|f| f.message.contains("declares `draws: 2`") && f.message.contains("3 RNG")));
}

#[test]
fn r2_rng_budget_good_fixture_passes() {
    let f = scan_fixture("rng_budget_good_impair.rs", "simnet", FileRole::Lib);
    assert_clean(&f, "rng_budget_good_impair.rs");
}

#[test]
fn r3_unsafe_bad_fixture_fails() {
    let f = scan_fixture("unsafe_bad.rs", "netstack", FileRole::Lib);
    assert_eq!(violations(&f, "unsafe-safety").len(), 2, "{f:#?}");
}

#[test]
fn r3_unsafe_good_fixture_passes_even_in_tests() {
    // R3 applies to tests too, so scan as a test target to prove the
    // good fixture's comments satisfy it there as well.
    let f = scan_fixture("unsafe_good.rs", "netstack", FileRole::Test);
    assert_clean(&f, "unsafe_good.rs");
}

#[test]
fn r4_panic_free_bad_fixture_fails() {
    let f = scan_fixture("panic_free_bad.rs", "core", FileRole::Lib);
    let v = violations(&f, "panic-free-library");
    assert!(v.len() >= 5, "unwrap/expect/panic/todo/index: {v:#?}");
    assert!(v.iter().any(|f| f.message.contains("indexing by literal")));
}

#[test]
fn r4_panic_free_good_fixture_passes() {
    let f = scan_fixture("panic_free_good.rs", "core", FileRole::Lib);
    assert_clean(&f, "panic_free_good.rs");
}

#[test]
fn r4_is_scoped_to_the_hot_path_crates() {
    let (_, text) = fixture("panic_free_bad.rs");
    assert_clean(
        &scan_source("crates/signaling/src/x.rs", "signaling", FileRole::Lib, &text),
        "signaling is not in the panic-free set",
    );
}

#[test]
fn r5_float_reduction_bad_fixture_fails() {
    let f = scan_fixture("float_reduction_bad.rs", "bench", FileRole::Lib);
    let v = violations(&f, "float-reduction");
    assert_eq!(v.len(), 2, "sum::<f64> and .fold: {v:#?}");
}

#[test]
fn r5_float_reduction_good_fixture_passes() {
    let f = scan_fixture("float_reduction_good.rs", "bench", FileRole::Lib);
    assert_clean(&f, "float_reduction_good.rs");
}

#[test]
fn r5_ignores_files_that_do_not_touch_the_parallel_executor() {
    let text = "pub fn mean(xs: &[f64]) -> f64 { xs.iter().sum::<f64>() / xs.len() as f64 }\n";
    assert_clean(
        &scan_source("crates/simnet/src/x.rs", "simnet", FileRole::Lib, text),
        "serial f64 sum",
    );
}

#[test]
fn allow_grammar_bad_fixture_fails() {
    let f = scan_fixture("allow_grammar_bad.rs", "simnet", FileRole::Lib);
    let v = violations(&f, "allow-grammar");
    assert_eq!(v.len(), 2, "missing reason and empty reason: {v:#?}");
    // And the unjustified hazard underneath stays a violation.
    assert!(!violations(&f, "nondeterminism").is_empty());
}

// ------------------------------------------------------------------
// CLI exit codes (the CI contract)
// ------------------------------------------------------------------

fn run_cli(fixture_name: &str, crate_dir: &str, role: &str) -> std::process::ExitStatus {
    let (path, _) = fixture(fixture_name);
    Command::new(env!("CARGO_BIN_EXE_analyze"))
        .args(["--check", "--path"])
        .arg(&path)
        .args(["--crate-name", crate_dir, "--role", role])
        .output()
        .expect("spawn analyze binary")
        .status
}

#[test]
fn cli_exits_nonzero_on_every_bad_fixture() {
    for (name, crate_dir) in [
        ("nondeterminism_bad.rs", "simnet"),
        ("rng_budget_bad_impair.rs", "simnet"),
        ("unsafe_bad.rs", "netstack"),
        ("panic_free_bad.rs", "core"),
        ("float_reduction_bad.rs", "bench"),
        ("allow_grammar_bad.rs", "simnet"),
    ] {
        let status = run_cli(name, crate_dir, "lib");
        assert!(!status.success(), "{name} must fail the gate");
    }
}

#[test]
fn cli_exits_zero_on_every_good_fixture() {
    for (name, crate_dir) in [
        ("nondeterminism_good.rs", "simnet"),
        ("rng_budget_good_impair.rs", "simnet"),
        ("unsafe_good.rs", "netstack"),
        ("panic_free_good.rs", "core"),
        ("float_reduction_good.rs", "bench"),
    ] {
        let status = run_cli(name, crate_dir, "lib");
        assert!(status.success(), "{name} must pass the gate");
    }
}

// ------------------------------------------------------------------
// The real workspace passes clean
// ------------------------------------------------------------------

#[test]
fn workspace_scans_clean() {
    let root = Path::new(env!("CARGO_MANIFEST_DIR"))
        .ancestors()
        .nth(2)
        .expect("workspace root");
    let findings = scan_workspace(root).expect("scan workspace");
    let bad: Vec<_> = findings
        .iter()
        .filter(|f| f.status == Status::Violation)
        .collect();
    assert!(
        bad.is_empty(),
        "workspace must have zero unjustified hazards, got {bad:#?}"
    );
    // The justified-hazard inventory is non-empty (the replay memoizer
    // keeps its HashMaps, invariant-backed expects stay): the report
    // must carry their reasons.
    assert!(findings
        .iter()
        .any(|f| matches!(&f.status, Status::Allowed(r) if !r.is_empty())));
}

// ------------------------------------------------------------------
// Graph taint rules: fixture pairs (lib API over scan_sources)
// ------------------------------------------------------------------

use analyze::source::SourceFile;
use analyze::{scan_sources, GraphConfig};

/// Parses the named fixtures as library files of one virtual crate and
/// scans them with a GraphConfig requiring exactly `roots`.
fn scan_graph_fixtures(names: &[&str], roots: &[&str]) -> Vec<Finding> {
    let files: Vec<SourceFile> = names
        .iter()
        .map(|n| {
            let (path, text) = fixture(n);
            SourceFile::parse(path, "fixturecrate".to_string(), FileRole::Lib, &text)
        })
        .collect();
    let cfg = GraphConfig {
        required_roots: roots.iter().map(|s| s.to_string()).collect(),
        panic_free_files: Vec::new(),
        panic_free_crates: Vec::new(),
        sim_crates: Vec::new(),
        path_markers: Vec::new(),
    };
    scan_sources(&files, &cfg)
}

#[test]
fn g1_panic_path_bad_fixture_fails_with_call_chain() {
    let f = scan_graph_fixtures(&["graph_panic_path_bad.rs"], &["fixture-rx"]);
    let v = violations(&f, "panic-path");
    assert_eq!(v.len(), 1, "{f:#?}");
    // The finding names the root and spells out the chain from it.
    assert!(v[0].message.contains("fixture-rx"), "{}", v[0].message);
    assert!(
        v[0].message.contains("rx_loop -> classify -> lookup"),
        "chain in message: {}",
        v[0].message
    );
}

#[test]
fn g1_panic_path_good_fixture_passes_and_reports_the_reason() {
    let f = scan_graph_fixtures(&["graph_panic_path_good.rs"], &["fixture-rx"]);
    assert_clean(&f, "graph_panic_path_good.rs");
    assert!(
        f.iter()
            .any(|x| matches!(&x.status, Status::Allowed(r) if r.contains("drawn from TABLE"))),
        "justification lands in the inventory: {f:#?}"
    );
}

#[test]
fn g2_alloc_path_bad_fixture_fails() {
    let f = scan_graph_fixtures(&["graph_alloc_path_bad.rs"], &["fixture-steady"]);
    let v = violations(&f, "alloc-path");
    assert_eq!(v.len(), 1, "{f:#?}");
    assert!(v[0].message.contains(".push("), "{}", v[0].message);
    // The root is scoped to alloc-path only, so no panic-path findings.
    assert!(violations(&f, "panic-path").is_empty());
}

#[test]
fn g2_alloc_path_good_fixture_passes() {
    let f = scan_graph_fixtures(&["graph_alloc_path_good.rs"], &["fixture-steady"]);
    assert_clean(&f, "graph_alloc_path_good.rs");
}

#[test]
fn g3_charge_coverage_bad_fixture_fails() {
    let f = scan_graph_fixtures(&["graph_charge_bad.rs"], &["fixture-window"]);
    let v = violations(&f, "charge-coverage");
    assert_eq!(v.len(), 1, "{f:#?}");
    assert!(
        v[0].message.contains("touches `OaTable::probe`")
            && v[0].message.contains("reaches no cachesim charge"),
        "{}",
        v[0].message
    );
}

#[test]
fn g3_charge_coverage_good_fixture_passes_without_allows() {
    let f = scan_graph_fixtures(&["graph_charge_good.rs"], &["fixture-window"]);
    assert_clean(&f, "graph_charge_good.rs");
    // Clean because the touch reaches Machine::stall, not because it
    // was suppressed: the good fixture carries no allow comments.
    assert!(f
        .iter()
        .all(|x| !matches!(&x.status, Status::Allowed(_)) || x.rule != "charge-coverage"));
}

// ------------------------------------------------------------------
// Loud failure on stale graph configuration (regression)
// ------------------------------------------------------------------

#[test]
fn stale_graph_config_fails_loudly_not_silently() {
    // A required root that no longer exists anywhere must fail the
    // scan even though every real hazard is justified.
    let files: Vec<SourceFile> = [("graph_panic_path_good.rs", "fixturecrate")]
        .iter()
        .map(|(n, c)| {
            let (path, text) = fixture(n);
            SourceFile::parse(path, c.to_string(), FileRole::Lib, &text)
        })
        .collect();
    let cfg = GraphConfig {
        required_roots: vec!["fixture-rx".into(), "renamed-away-loop".into()],
        panic_free_files: vec!["crates/gone/src/table.rs".into()],
        panic_free_crates: vec!["fixturecrate".into(), "deleted_crate".into()],
        sim_crates: Vec::new(),
        path_markers: vec!["impair".into()],
    };
    let f = scan_sources(&files, &cfg);
    let v = violations(&f, "graph-config");
    let msgs: Vec<&str> = v.iter().map(|x| x.message.as_str()).collect();
    assert!(
        msgs.iter().any(|m| m.contains("renamed-away-loop") && m.contains("annotated nowhere")),
        "missing root is loud: {msgs:#?}"
    );
    assert!(
        msgs.iter().any(|m| m.contains("crates/gone/src/table.rs") && m.contains("stale path")),
        "stale PANIC_FREE_FILES entry is loud: {msgs:#?}"
    );
    assert!(
        msgs.iter().any(|m| m.contains("deleted_crate") && m.contains("stale crate")),
        "stale crate entry is loud: {msgs:#?}"
    );
    assert!(
        msgs.iter().any(|m| m.contains("`impair`") && m.contains("matches no scanned file")),
        "empty path-scope is loud: {msgs:#?}"
    );
}

#[test]
fn graph_config_violations_cannot_be_suppressed() {
    // graph-config findings have no file/line to hang an allow on and
    // must stay violations even in a file full of allow comments.
    let f = scan_graph_fixtures(&["graph_panic_path_good.rs"], &["no-such-root"]);
    assert!(!violations(&f, "graph-config").is_empty(), "{f:#?}");
}

// ------------------------------------------------------------------
// clippy.toml stays a subset of the analyzer's determinism ban list
// ------------------------------------------------------------------

#[test]
fn clippy_disallowed_lists_are_subset_of_nondeterminism_rules() {
    use analyze::rules::nondeterminism::{PATH_PATTERNS, WORD_PATTERNS};
    let root = Path::new(env!("CARGO_MANIFEST_DIR"))
        .ancestors()
        .nth(2)
        .expect("workspace root");
    let toml = std::fs::read_to_string(root.join("clippy.toml")).expect("read clippy.toml");
    // Cheap line-level extraction: every disallowed entry is a table
    // with a `path = "..."` key on its own line.
    let paths: Vec<String> = toml
        .lines()
        .filter(|l| !l.trim_start().starts_with('#'))
        .filter_map(|l| {
            let (_, rest) = l.split_once("path = \"")?;
            Some(rest.split('"').next()?.to_string())
        })
        .collect();
    assert!(
        paths.len() >= 4,
        "expected the four known disallowed entries, parsed {paths:#?}"
    );
    for p in &paths {
        let covered = PATH_PATTERNS.iter().any(|(pat, _)| p.contains(pat))
            || WORD_PATTERNS
                .iter()
                .any(|(pat, _)| p.split("::").any(|seg| seg == *pat));
        assert!(
            covered,
            "clippy disallows `{p}` but the analyzer's nondeterminism rule would miss it; \
             add it to PATH_PATTERNS/WORD_PATTERNS so single-file scans agree with clippy"
        );
    }
}

// ------------------------------------------------------------------
// CLI output formats
// ------------------------------------------------------------------

#[test]
fn cli_github_format_emits_error_annotations() {
    let (path, _) = fixture("panic_free_bad.rs");
    let out = Command::new(env!("CARGO_BIN_EXE_analyze"))
        .args(["--check", "--path"])
        .arg(&path)
        .args(["--crate-name", "core", "--role", "lib", "--format", "github"])
        .output()
        .expect("spawn analyze binary");
    assert!(!out.status.success());
    let stdout = String::from_utf8_lossy(&out.stdout);
    assert!(
        stdout.lines().any(|l| l.starts_with("::error file=")
            && l.contains(",line=")
            && l.contains("panic-free-library")),
        "github annotations on stdout: {stdout}"
    );

    // Default (plain) format stays the human-readable one.
    let plain = Command::new(env!("CARGO_BIN_EXE_analyze"))
        .args(["--check", "--path"])
        .arg(&path)
        .args(["--crate-name", "core", "--role", "lib"])
        .output()
        .expect("spawn analyze binary");
    let plain_out = String::from_utf8_lossy(&plain.stdout);
    assert!(
        !plain_out.contains("::error"),
        "plain format must not emit workflow commands: {plain_out}"
    );
}
