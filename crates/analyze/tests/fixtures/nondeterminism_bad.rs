// Known-bad fixture for R1 `nondeterminism` (scanned as crate `simnet`,
// role lib). Never compiled.

use std::collections::HashMap;
use std::collections::HashSet;

pub struct State {
    seen: HashSet<u64>,
    by_id: HashMap<u32, u64>,
}

pub fn stamp() -> u64 {
    let t = std::time::Instant::now();
    let _ = std::time::SystemTime::now();
    let mut rng = thread_rng();
    rng.random::<u64>() ^ (t.elapsed().as_nanos() as u64)
}
