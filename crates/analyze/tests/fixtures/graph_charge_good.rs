//! Good: the same table touch, but the touching function also reaches
//! `Machine::stall`, so the access is costed and the charge-coverage
//! rule is satisfied without any allow.

pub struct OaTable {
    slots: Vec<u64>,
}

impl OaTable {
    pub fn probe(&self, k: u64) -> bool {
        self.slots.iter().any(|s| *s == k)
    }
}

pub struct Machine {
    pub stalls: u64,
}

impl Machine {
    pub fn stall(&mut self, cycles: u64) {
        self.stalls += cycles;
    }
}

// analyze::hot_path(fixture-window, rules = "charge-coverage")
pub fn measured(table: &OaTable, machine: &mut Machine, keys: &[u64]) -> usize {
    let mut hits = 0;
    for k in keys {
        if hit(table, machine, *k) {
            hits += 1;
        }
    }
    hits
}

fn hit(table: &OaTable, machine: &mut Machine, k: u64) -> bool {
    let found = table.probe(k);
    machine.stall(1);
    found
}
