// Known-good fixture for R1 `nondeterminism`: ordered containers, a
// seeded RNG, and one justified hash map. Never compiled.

use std::collections::{BTreeMap, BTreeSet};

// analyze::allow(nondeterminism, reason = "lookup-only memo; iteration order never observed")
use std::collections::HashMap;

pub struct State {
    seen: BTreeSet<u64>,
    by_id: BTreeMap<u32, u64>,
    memo: HashMap<u64, u64>, // analyze::allow(nondeterminism, reason = "get/insert only")
}

pub fn stamp(seed: u64) -> u64 {
    let mut rng = StdRng::seed_from_u64(seed);
    rng.random::<u64>()
}

#[cfg(test)]
mod tests {
    // Test code may keep reference hash sets: exempt from R1.
    use std::collections::HashSet;

    #[test]
    fn reference_model() {
        let _ = HashSet::<u64>::new();
    }
}
