// Known-bad fixture for R3 `unsafe-safety`. Never compiled.

pub fn read_first(v: &[u8]) -> u8 {
    unsafe { *v.get_unchecked(0) }
}

pub unsafe fn undocumented(ptr: *const u8) -> u8 {
    *ptr
}
