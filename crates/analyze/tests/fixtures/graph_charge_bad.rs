//! Bad: a function reachable from a measured-window root touches a
//! charged structure (`OaTable`) but never reaches a cachesim charge
//! site — the table access is simulated for free.

pub struct OaTable {
    slots: Vec<u64>,
}

impl OaTable {
    pub fn probe(&self, k: u64) -> bool {
        self.slots.iter().any(|s| *s == k)
    }
}

pub struct Machine {
    pub stalls: u64,
}

impl Machine {
    pub fn stall(&mut self, cycles: u64) {
        self.stalls += cycles;
    }
}

// analyze::hot_path(fixture-window, rules = "charge-coverage")
pub fn measured(table: &OaTable, keys: &[u64]) -> usize {
    let mut hits = 0;
    for k in keys {
        if hit(table, *k) {
            hits += 1;
        }
    }
    hits
}

fn hit(table: &OaTable, k: u64) -> bool {
    table.probe(k)
}
