// Known-good fixture for R4 `panic-free-library`: graceful handling,
// non-panicking unwrap_or family, and one justified expect. Never
// compiled.

pub fn graceful(v: &[u64], m: Option<u64>) -> u64 {
    let first = v.first().copied().unwrap_or(0);
    let x = m.unwrap_or_default();
    first + x
}

pub fn justified(v: &[u64]) -> u64 {
    assert!(!v.is_empty());
    // analyze::allow(panic-free-library, reason = "guarded by the assert on the previous line")
    *v.last().expect("non-empty")
}

#[cfg(test)]
mod tests {
    #[test]
    fn tests_may_unwrap() {
        let v = vec![1u64];
        assert_eq!(v[0], *v.first().unwrap());
    }
}
