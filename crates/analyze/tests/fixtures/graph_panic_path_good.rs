//! Good: the same shape as `graph_panic_path_bad.rs`, but the leaf
//! hazard carries a justification, so the scan is clean and the reason
//! lands in the report inventory.

static TABLE: [u32; 4] = [1, 2, 3, 4];

// analyze::hot_path(fixture-rx, rules = "panic-path")
pub fn rx_loop(frames: &[u32]) -> u32 {
    let mut acc = 0;
    for f in frames {
        acc += classify(*f);
    }
    acc
}

fn classify(f: u32) -> u32 {
    lookup(f)
}

fn lookup(f: u32) -> u32 {
    // analyze::allow(panic-path, reason = "every frame id is drawn from TABLE by the generator")
    TABLE.iter().position(|t| *t == f).unwrap() as u32
}
