// Known-bad fixture for the allow-annotation grammar: an escape hatch
// without a justification never passes. Never compiled.

// analyze::allow(nondeterminism)
use std::collections::HashMap;

// analyze::allow(panic-free-library, reason = "")
pub fn empty_reason(m: Option<u64>) -> u64 {
    m.unwrap()
}
