// Known-good fixture for R3 `unsafe-safety`. Never compiled.

pub fn read_first(v: &[u8]) -> u8 {
    assert!(!v.is_empty());
    // SAFETY: the assert above guarantees index 0 is in bounds.
    unsafe { *v.get_unchecked(0) }
}

/// Reads one byte.
///
/// # Safety
/// `ptr` must be valid for reads.
// SAFETY: contract documented above; callers uphold pointer validity.
pub unsafe fn documented(ptr: *const u8) -> u8 {
    *ptr
}

pub fn trailing(v: &[u8]) -> u8 {
    unsafe { *v.get_unchecked(0) } // SAFETY: caller-checked length, see read_first
}
