//! Bad: the steady-state root reaches a `.push(` allocation through a
//! helper. The helper is fine in isolation — only reachability from
//! the annotated root makes it a finding.

// analyze::hot_path(fixture-steady, rules = "alloc-path")
pub fn steady_loop(xs: &[u64], out: &mut Vec<u64>) {
    for x in xs {
        record(*x, out);
    }
}

fn record(x: u64, out: &mut Vec<u64>) {
    out.push(x);
}
