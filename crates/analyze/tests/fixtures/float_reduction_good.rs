// Known-good fixture for R5 `float-reduction`: par results reduced via
// the blessed seed-order helper, plus one justified integer-exact sum.
// Never compiled.

use simnet::par::run_indexed;
use simnet::stats::SimReport;

pub fn mean_report(n: usize, threads: usize) -> SimReport {
    let reports: Vec<SimReport> = run_indexed(n, threads, |_| SimReport::default());
    SimReport::average(&reports)
}

pub fn total_misses(n: usize, threads: usize) -> u64 {
    let xs: Vec<u64> = run_indexed(n, threads, |i| i as u64);
    // Integer sums are exact and order-insensitive; only f64 folds are
    // hazards, but the justified form is shown here for the fixture.
    // analyze::allow(float-reduction, reason = "u64 sum is exact; associative regardless of order")
    xs.iter().fold(0, |a, b| a + b)
}
