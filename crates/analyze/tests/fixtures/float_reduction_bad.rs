// Known-bad fixture for R5 `float-reduction` (scanned as crate
// `bench`, role lib). Never compiled.

use simnet::par::run_indexed;

pub fn mean_latency(n: usize, threads: usize) -> f64 {
    let xs: Vec<f64> = run_indexed(n, threads, |i| i as f64);
    let total = xs.iter().sum::<f64>();
    let folded = xs.iter().fold(0.0, |a, b| a + b);
    (total + folded) / n as f64
}
