//! Bad: the annotated hot path reaches `.unwrap()` two calls away.
//! The leaf itself never mentions the root — only the call graph
//! connects them, which is exactly what the taint rule must catch.

static TABLE: [u32; 4] = [1, 2, 3, 4];

// analyze::hot_path(fixture-rx, rules = "panic-path")
pub fn rx_loop(frames: &[u32]) -> u32 {
    let mut acc = 0;
    for f in frames {
        acc += classify(*f);
    }
    acc
}

fn classify(f: u32) -> u32 {
    lookup(f)
}

fn lookup(f: u32) -> u32 {
    TABLE.iter().position(|t| *t == f).unwrap() as u32
}
