// Known-bad fixture for R4 `panic-free-library` (scanned as crate
// `core`, role lib). Never compiled.

pub fn casual(v: &[u64], m: Option<u64>) -> u64 {
    let first = v[0];
    let x = m.unwrap();
    let y = m.expect("present");
    if x == 0 {
        panic!("zero");
    }
    first + x + y
}

pub fn unfinished() {
    todo!("later")
}
