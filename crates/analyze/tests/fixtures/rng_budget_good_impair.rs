// Known-good fixture for R2 `rng-draw-budget`. Never compiled.

pub struct Chan {
    rng: StdRng,
}

impl Chan {
    /// Budget matches the call sites.
    // draws: 3
    pub fn fate(&mut self) -> (f64, f64, bool) {
        let a: f64 = self.rng.random();
        let b: f64 = self.rng.random();
        let c = self.rng.random_bool(0.5);
        (a, b, c)
    }

    /// Draw-free helpers need no annotation.
    pub fn transparent(&self) -> bool {
        true
    }
}

#[cfg(test)]
mod tests {
    #[test]
    fn test_fns_are_exempt() {
        let mut rng = StdRng::seed_from_u64(1);
        let _: f64 = rng.random();
    }
}
