// Known-bad fixture for R2 `rng-draw-budget` (scanned as crate
// `simnet`, path containing `impair`, role lib). Never compiled.

pub struct Chan {
    rng: StdRng,
}

impl Chan {
    /// No annotation at all: flagged.
    pub fn fate_unannotated(&mut self) -> bool {
        let u: f64 = self.rng.random();
        u < 0.5
    }

    /// Stale annotation: declares two draws, body makes three.
    // draws: 2
    pub fn fate_stale(&mut self) -> (f64, f64, bool) {
        let a: f64 = self.rng.random();
        let b: f64 = self.rng.random();
        let c = self.rng.random_bool(0.5);
        (a, b, c)
    }
}
