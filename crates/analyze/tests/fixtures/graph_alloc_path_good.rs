//! Good: the same push, justified — the caller pre-sizes the buffer,
//! so steady state never grows it.

// analyze::hot_path(fixture-steady, rules = "alloc-path")
pub fn steady_loop(xs: &[u64], out: &mut Vec<u64>) {
    for x in xs {
        record(*x, out);
    }
}

fn record(x: u64, out: &mut Vec<u64>) {
    // analyze::allow(alloc-path, reason = "out is reserved to xs.len() by the caller; push never reallocates")
    out.push(x);
}
