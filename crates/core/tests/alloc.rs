//! Zero-allocation assertion for the engine hot path: after warm-up,
//! `process_batch_into` must run entirely out of its preallocated batch
//! and scratch buffers for every discipline — no heap traffic per batch.
//!
//! A counting global allocator (this test binary only) measures exact
//! allocation counts around the steady-state loop.

use std::alloc::{GlobalAlloc, Layout, System};
use std::cell::Cell;

use cachesim::MachineConfig;
use ldlp::synth::{paper_stack, MessagePool};
use ldlp::{BatchPolicy, Completion, Discipline, SimMessage, StackEngine};

struct CountingAlloc;

// Per-thread count, so a measurement window only sees its own test's
// allocations — the harness runs tests (and its own bookkeeping) on
// concurrent threads. `Cell<u64>` has no destructor and const init, so
// the allocator never recurses or touches torn-down TLS.
thread_local! {
    static ALLOCS: Cell<u64> = const { Cell::new(0) };
}

fn count_one() {
    let _ = ALLOCS.try_with(|c| c.set(c.get() + 1));
}

// SAFETY: pure pass-through to the System allocator; the only extra
// work is bumping a no-destructor, const-initialised thread-local
// counter, which never allocates, never unwinds, and never re-enters
// the allocator — so System's layout/aliasing contracts are preserved
// verbatim.
unsafe impl GlobalAlloc for CountingAlloc {
    // SAFETY: delegates to System.alloc with the caller's layout.
    unsafe fn alloc(&self, layout: Layout) -> *mut u8 {
        count_one();
        System.alloc(layout)
    }

    // SAFETY: delegates to System.dealloc; `ptr`/`layout` obligations
    // pass straight through from the caller.
    unsafe fn dealloc(&self, ptr: *mut u8, layout: Layout) {
        System.dealloc(ptr, layout)
    }

    // SAFETY: delegates to System.realloc; `ptr`/`layout`/`new_size`
    // obligations pass straight through from the caller.
    unsafe fn realloc(&self, ptr: *mut u8, layout: Layout, new_size: usize) -> *mut u8 {
        count_one();
        System.realloc(ptr, layout, new_size)
    }
}

#[global_allocator]
static GLOBAL: CountingAlloc = CountingAlloc;

fn steady_state_allocs(discipline: Discipline) -> u64 {
    steady_state_allocs_with(discipline, None)
}

fn steady_state_allocs_with(discipline: Discipline, sink: Option<obs::Sink>) -> u64 {
    let (m, layers) = paper_stack(MachineConfig::synthetic_benchmark(), 11);
    let mut engine = StackEngine::new(m, layers, discipline);
    if let Some(sink) = sink {
        // Interning happens here, outside the measurement window; the
        // per-batch fold must then be allocation-free.
        engine.set_sink(sink, "ldlp/");
    }
    let mut pool = MessagePool::new(16, 1536, 5);
    let batch: Vec<SimMessage> = (0..14).map(|i| pool.make_message(i as u64, 552)).collect();
    let mut out: Vec<Completion> = Vec::new();

    // Warm up: grow the scratch buffers, the completion vector, and the
    // footprint-replay tables to their fixed points.
    for _ in 0..50 {
        engine.process_batch_into(&batch, &mut out);
    }

    let before = ALLOCS.with(|c| c.get());
    for _ in 0..100 {
        engine.process_batch_into(&batch, &mut out);
    }
    ALLOCS.with(|c| c.get()) - before
}

#[test]
fn ldlp_hot_path_does_not_allocate() {
    assert_eq!(
        steady_state_allocs(Discipline::Ldlp(BatchPolicy::DCacheFit)),
        0,
        "LDLP steady-state batches must reuse preallocated buffers"
    );
}

#[test]
fn conventional_hot_path_does_not_allocate() {
    assert_eq!(
        steady_state_allocs(Discipline::Conventional),
        0,
        "conventional steady-state batches must reuse preallocated buffers"
    );
}

#[test]
fn ilp_hot_path_does_not_allocate() {
    assert_eq!(
        steady_state_allocs(Discipline::Ilp),
        0,
        "ILP steady-state batches must reuse preallocated buffers"
    );
}

#[test]
fn metrics_sink_hot_path_does_not_allocate() {
    // Metrics mode (no span collection) folds every event into
    // preallocated accumulators: observing must not add heap traffic.
    assert_eq!(
        steady_state_allocs_with(
            Discipline::Ldlp(BatchPolicy::DCacheFit),
            Some(obs::Sink::record(false)),
        ),
        0,
        "metrics-mode observation must not allocate per batch"
    );
}

#[test]
fn conventional_metrics_sink_hot_path_does_not_allocate() {
    assert_eq!(
        steady_state_allocs_with(Discipline::Conventional, Some(obs::Sink::record(false))),
        0,
        "metrics-mode observation must not allocate per message"
    );
}
