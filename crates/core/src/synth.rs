//! Construction of the paper's synthetic benchmark stack (Section 4).
//!
//! Five layers, each with 6 KB of code and 256 B of data, placed at
//! seeded-random line-aligned addresses ("average results are presented
//! from 100 runs, each with a different random placement in memory"), plus
//! a pool of message buffers whose addresses determine D-cache behaviour.

use crate::layer::{paper, SimLayer, SimMessage, SyntheticLayer};
use cachesim::{Machine, MachineConfig, Region};

/// Address window the code segments are scattered over. Large relative to
/// the segments so random placements rarely collide, small enough that
/// cache index bits vary across the window.
const CODE_WINDOW: Region = Region::new(0x0010_0000, 4 << 20);
/// Address window for per-layer data.
const DATA_WINDOW: Region = Region::new(0x0800_0000, 1 << 20);
/// Where message buffers live.
const MBUF_WINDOW_BASE: u64 = 0x1000_0000;

/// Builds the paper's machine + five-layer synthetic stack for one random
/// placement. The same `seed` always produces the same layout.
pub fn paper_stack(cfg: MachineConfig, seed: u64) -> (Machine, Vec<Box<dyn SimLayer>>) {
    stack_with(cfg, seed, 5, paper::CODE_BYTES, paper::DATA_BYTES)
}

/// Builds a stack with arbitrary layer count and footprints (used by the
/// CISC ablation, which scales code size by the machine's density factor,
/// and by the dilution ablation).
pub fn stack_with(
    cfg: MachineConfig,
    seed: u64,
    layers: usize,
    code_bytes: u64,
    data_bytes: u64,
) -> (Machine, Vec<Box<dyn SimLayer>>) {
    let line = cfg.icache.line_size;
    let scaled_code = ((code_bytes as f64 * cfg.code_density) as u64).max(line);
    let mut code_place = cachesim::RandomPlacement::new(seed, CODE_WINDOW, line);
    let mut data_place = cachesim::RandomPlacement::new(seed ^ 0xdada, DATA_WINDOW, line);
    let stack: Vec<Box<dyn SimLayer>> = (0..layers)
        .map(|i| {
            let code = code_place.place(scaled_code);
            let data = data_place.place(data_bytes.max(line));
            Box::new(SyntheticLayer::new(&format!("L{}", i + 1), code, data, line))
                as Box<dyn SimLayer>
        })
        .collect();
    (Machine::new(cfg), stack)
}

/// Builds a stack with *sequential* (link-order) placement: layers packed
/// back to back, the conflict-free layout a tool like Cord produces.
/// Use this to isolate capacity effects from layout effects — a stack
/// placed this way has no self-conflicts whenever it fits the cache.
pub fn stack_sequential(
    cfg: MachineConfig,
    layers: usize,
    code_bytes: u64,
    data_bytes: u64,
) -> (Machine, Vec<Box<dyn SimLayer>>) {
    let line = cfg.icache.line_size;
    let scaled_code = ((code_bytes as f64 * cfg.code_density) as u64).max(line);
    let mut alloc = cachesim::AddressAllocator::new(CODE_WINDOW.base, line);
    let mut data_alloc = cachesim::AddressAllocator::new(DATA_WINDOW.base, line);
    let stack: Vec<Box<dyn SimLayer>> = (0..layers)
        .map(|i| {
            let code = alloc.alloc(scaled_code);
            let data = data_alloc.alloc(data_bytes.max(line));
            Box::new(SyntheticLayer::new(&format!("L{}", i + 1), code, data, line))
                as Box<dyn SimLayer>
        })
        .collect();
    (Machine::new(cfg), stack)
}

/// A pool of message buffers at fixed addresses, reused round-robin the
/// way a driver's receive ring reuses mbuf clusters.
#[derive(Debug)]
pub struct MessagePool {
    bufs: Vec<Region>,
    next: usize,
}

impl MessagePool {
    /// `count` buffers of `buf_bytes` each. Buffers are spread across the
    /// mbuf window with a seeded random offset so different runs see
    /// different cache colourings.
    pub fn new(count: usize, buf_bytes: u64, seed: u64) -> Self {
        let window = Region::new(MBUF_WINDOW_BASE, 8 << 20);
        let mut place = cachesim::RandomPlacement::new(seed ^ 0xb0f, window, 64);
        let bufs = (0..count).map(|_| place.place(buf_bytes)).collect();
        MessagePool { bufs, next: 0 }
    }

    /// Number of buffers in the pool.
    pub fn capacity(&self) -> usize {
        self.bufs.len()
    }

    /// Builds a message of `len` bytes in the next ring buffer.
    pub fn make_message(&mut self, id: u64, len: u64) -> SimMessage {
        let buf = self.bufs[self.next];
        assert!(len <= buf.len, "message larger than pool buffers");
        // analyze::allow(panic-path, reason = "pool construction asserts at least one buffer, so the ring modulus is nonzero")
        self.next = (self.next + 1) % self.bufs.len();
        SimMessage {
            id,
            arrival_cycles: 0,
            buf: Region::new(buf.base, len),
            corrupted: false,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn paper_stack_shape() {
        let (m, layers) = paper_stack(MachineConfig::synthetic_benchmark(), 3);
        assert_eq!(layers.len(), 5);
        for l in &layers {
            assert_eq!(l.code_lines().len(), 192, "6 KB / 32 B = 192 lines");
            assert_eq!(l.data_region().len, 256);
            assert_eq!(l.instr_cycles(552), 1652);
        }
        assert_eq!(m.config().read_miss_penalty, 20);
    }

    #[test]
    fn placements_differ_across_seeds_but_not_within() {
        let (_, a) = paper_stack(MachineConfig::synthetic_benchmark(), 1);
        let (_, b) = paper_stack(MachineConfig::synthetic_benchmark(), 1);
        let (_, c) = paper_stack(MachineConfig::synthetic_benchmark(), 2);
        assert_eq!(a[0].code_lines(), b[0].code_lines());
        assert_ne!(a[0].code_lines(), c[0].code_lines());
    }

    #[test]
    fn cisc_density_shrinks_code() {
        let (_, layers) = paper_stack(MachineConfig::i386_like(), 1);
        let lines = layers[0].code_lines().len();
        assert!(
            lines < 192 * 6 / 10,
            "i386-like code should be under 60% of Alpha size, got {lines} lines"
        );
    }

    #[test]
    fn pool_round_robins() {
        let mut p = MessagePool::new(3, 1536, 9);
        let a = p.make_message(0, 552);
        let b = p.make_message(1, 552);
        let _ = p.make_message(2, 552);
        let d = p.make_message(3, 552);
        assert_ne!(a.buf.base, b.buf.base);
        assert_eq!(a.buf.base, d.buf.base, "ring reuses buffer 0");
        assert_eq!(a.len(), 552);
    }

    #[test]
    #[should_panic(expected = "message larger")]
    fn pool_rejects_oversized_messages() {
        let mut p = MessagePool::new(2, 600, 9);
        p.make_message(0, 601);
    }
}
