//! Batch-sizing policies for blocked layer processing (Section 3.2).
//!
//! The paper's online algorithm processes "batches consisting of all
//! available messages"; for the common special case where one layer fits
//! the I-cache but the batch's messages must share the D-cache, the batch
//! is capped at "as many available messages as will fit in the data
//! cache". Both policies are here, along with a fixed block size for
//! offline-style experiments and ablations.

/// How many of the currently-available messages to take into one batch.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum BatchPolicy {
    /// Take everything that has arrived (the basic online LDLP rule).
    AllAvailable,
    /// Take at most as many messages as fit in the data cache alongside
    /// one layer's working data (the paper's special case, and the cause
    /// of the curve flattening beyond ~8500 msg/s in Figure 5).
    DCacheFit,
    /// A fixed block size (offline blocked processing; ablation baseline).
    Fixed(usize),
}

impl BatchPolicy {
    /// The batch cap for a data cache of `dcache_bytes`, messages of
    /// `msg_bytes`, and at most `layer_data_bytes` of per-layer data
    /// resident during a pass. Always at least 1.
    pub fn limit(&self, dcache_bytes: u64, layer_data_bytes: u64, msg_bytes: u64) -> usize {
        match self {
            BatchPolicy::AllAvailable => usize::MAX,
            BatchPolicy::DCacheFit => {
                let usable = dcache_bytes.saturating_sub(layer_data_bytes);
                ((usable / msg_bytes.max(1)) as usize).max(1)
            }
            BatchPolicy::Fixed(n) => (*n).max(1),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn dcache_fit_matches_paper_arithmetic() {
        // 8 KB D-cache, 256 B layer data, 552 B messages:
        // (8192 - 256) / 552 = 14 messages.
        assert_eq!(BatchPolicy::DCacheFit.limit(8192, 256, 552), 14);
    }

    #[test]
    fn all_available_is_unbounded() {
        assert_eq!(BatchPolicy::AllAvailable.limit(8192, 256, 552), usize::MAX);
    }

    #[test]
    fn fixed_is_fixed_and_nonzero() {
        assert_eq!(BatchPolicy::Fixed(5).limit(8192, 256, 552), 5);
        assert_eq!(BatchPolicy::Fixed(0).limit(8192, 256, 552), 1);
    }

    #[test]
    fn degenerate_geometry_still_processes_one() {
        // Messages bigger than the cache: LDLP degrades to one at a time.
        assert_eq!(BatchPolicy::DCacheFit.limit(8192, 256, 100_000), 1);
        assert_eq!(BatchPolicy::DCacheFit.limit(256, 8192, 552), 1);
    }
}
