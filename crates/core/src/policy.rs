//! Batch-sizing policies for blocked layer processing (Section 3.2).
//!
//! The paper's online algorithm processes "batches consisting of all
//! available messages"; for the common special case where one layer fits
//! the I-cache but the batch's messages must share the D-cache, the batch
//! is capped at "as many available messages as will fit in the data
//! cache". Both policies are here, along with a fixed block size for
//! offline-style experiments and ablations.

/// How many of the currently-available messages to take into one batch.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum BatchPolicy {
    /// Take everything that has arrived (the basic online LDLP rule).
    AllAvailable,
    /// Take at most as many messages as fit in the data cache alongside
    /// one layer's working data (the paper's special case, and the cause
    /// of the curve flattening beyond ~8500 msg/s in Figure 5).
    DCacheFit,
    /// A fixed block size (offline blocked processing; ablation baseline).
    Fixed(usize),
}

impl BatchPolicy {
    /// The batch cap for a data cache of `dcache_bytes`, messages of
    /// `msg_bytes`, and at most `layer_data_bytes` of per-layer data
    /// resident during a pass. Always at least 1.
    pub fn limit(&self, dcache_bytes: u64, layer_data_bytes: u64, msg_bytes: u64) -> usize {
        match self {
            BatchPolicy::AllAvailable => usize::MAX,
            BatchPolicy::DCacheFit => {
                let usable = dcache_bytes.saturating_sub(layer_data_bytes);
                ((usable / msg_bytes.max(1)) as usize).max(1)
            }
            BatchPolicy::Fixed(n) => (*n).max(1),
        }
    }
}

/// Contiguous partition of a protocol stack's layers across pipeline
/// stages — the dispatch-policy arithmetic behind LDLP-aware *layer
/// affinity* (`crates/smp`): each core is pinned to a run of adjacent
/// layers so its I-cache only ever holds that slice of the code.
///
/// Returns the number of layers per stage. At most `num_layers` stages
/// are used (a core count beyond that leaves cores idle); sizes differ
/// by at most one, with the larger stages first, so the entry stage —
/// which also absorbs the NIC backlog and forms the biggest batches —
/// is the one best placed to amortize an oversized slice.
pub fn stage_partition(num_layers: usize, cores: usize) -> Vec<usize> {
    let stages = cores.clamp(1, num_layers.max(1));
    let base = num_layers / stages;
    let rem = num_layers % stages;
    (0..stages).map(|i| base + usize::from(i < rem)).collect()
}

/// What to do when a packet arrives and the adaptor buffer is full
/// (Section 4's 500-packet NIC queue). The paper's simulator tail-drops;
/// production adaptors differ, and under sustained overload the choice
/// decides *which* messages survive — and therefore the latency of the
/// ones that do.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum AdmissionPolicy {
    /// Drop the arriving packet (the paper's behaviour, and the default).
    TailDrop,
    /// Evict the oldest queued packet and admit the new one. Keeps the
    /// queue full of *recent* packets, bounding the queueing delay of
    /// everything that completes.
    HeadDrop,
    /// When full, shed the oldest packets down to `down_to` entries in
    /// one sweep, then admit the arrival. Models interrupt-level buffer
    /// reclamation: one expensive purge instead of per-packet eviction.
    ShedOldest {
        /// Queue length to shed down to (clamped below the capacity).
        down_to: usize,
    },
}

impl AdmissionPolicy {
    /// Decides admission for one arrival given the current queue length
    /// and capacity. Returns `(evict_from_front, admit_arrival)`: the
    /// caller removes `evict_from_front` packets from the head of the
    /// queue (counting them as shed) and then, if `admit_arrival`, pushes
    /// the new packet at the tail.
    pub fn admit(&self, queue_len: usize, capacity: usize) -> (usize, bool) {
        if queue_len < capacity {
            return (0, true);
        }
        match self {
            AdmissionPolicy::TailDrop => (0, false),
            AdmissionPolicy::HeadDrop => (1, true),
            AdmissionPolicy::ShedOldest { down_to } => {
                let target = (*down_to).min(capacity.saturating_sub(1));
                (queue_len - target, true)
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn stage_partition_covers_all_layers_balanced() {
        assert_eq!(stage_partition(5, 1), vec![5]);
        assert_eq!(stage_partition(5, 2), vec![3, 2]);
        assert_eq!(stage_partition(5, 4), vec![2, 1, 1, 1]);
        assert_eq!(stage_partition(5, 8), vec![1, 1, 1, 1, 1], "extra cores idle");
        for layers in 1..12usize {
            for cores in 1..10usize {
                let p = stage_partition(layers, cores);
                assert_eq!(p.iter().sum::<usize>(), layers);
                assert!(p.len() <= cores && p.len() <= layers);
                let (min, max) = (p.iter().min().copied(), p.iter().max().copied());
                assert!(max.unwrap_or(0) - min.unwrap_or(0) <= 1, "balanced to within one");
            }
        }
    }

    #[test]
    fn dcache_fit_matches_paper_arithmetic() {
        // 8 KB D-cache, 256 B layer data, 552 B messages:
        // (8192 - 256) / 552 = 14 messages.
        assert_eq!(BatchPolicy::DCacheFit.limit(8192, 256, 552), 14);
    }

    #[test]
    fn all_available_is_unbounded() {
        assert_eq!(BatchPolicy::AllAvailable.limit(8192, 256, 552), usize::MAX);
    }

    #[test]
    fn fixed_is_fixed_and_nonzero() {
        assert_eq!(BatchPolicy::Fixed(5).limit(8192, 256, 552), 5);
        assert_eq!(BatchPolicy::Fixed(0).limit(8192, 256, 552), 1);
    }

    #[test]
    fn degenerate_geometry_still_processes_one() {
        // Messages bigger than the cache: LDLP degrades to one at a time.
        assert_eq!(BatchPolicy::DCacheFit.limit(8192, 256, 100_000), 1);
        assert_eq!(BatchPolicy::DCacheFit.limit(256, 8192, 552), 1);
    }

    #[test]
    fn admission_under_capacity_always_admits() {
        for p in [
            AdmissionPolicy::TailDrop,
            AdmissionPolicy::HeadDrop,
            AdmissionPolicy::ShedOldest { down_to: 10 },
        ] {
            assert_eq!(p.admit(499, 500), (0, true));
            assert_eq!(p.admit(0, 500), (0, true));
        }
    }

    #[test]
    fn tail_drop_refuses_at_capacity() {
        assert_eq!(AdmissionPolicy::TailDrop.admit(500, 500), (0, false));
    }

    #[test]
    fn head_drop_trades_oldest_for_newest() {
        assert_eq!(AdmissionPolicy::HeadDrop.admit(500, 500), (1, true));
    }

    #[test]
    fn shed_oldest_purges_to_watermark() {
        let p = AdmissionPolicy::ShedOldest { down_to: 250 };
        assert_eq!(p.admit(500, 500), (250, true));
        // Watermark at or above capacity degenerates to head-drop-like
        // eviction of at least one packet.
        let p = AdmissionPolicy::ShedOldest { down_to: 600 };
        assert_eq!(p.admit(500, 500), (1, true));
    }
}
