//! Batch-sizing policies for blocked layer processing (Section 3.2).
//!
//! The paper's online algorithm processes "batches consisting of all
//! available messages"; for the common special case where one layer fits
//! the I-cache but the batch's messages must share the D-cache, the batch
//! is capped at "as many available messages as will fit in the data
//! cache". Both policies are here, along with a fixed block size for
//! offline-style experiments and ablations.

/// How many of the currently-available messages to take into one batch.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum BatchPolicy {
    /// Take everything that has arrived (the basic online LDLP rule).
    AllAvailable,
    /// Take at most as many messages as fit in the data cache alongside
    /// one layer's working data (the paper's special case, and the cause
    /// of the curve flattening beyond ~8500 msg/s in Figure 5).
    DCacheFit,
    /// A fixed block size (offline blocked processing; ablation baseline).
    Fixed(usize),
}

impl BatchPolicy {
    /// The batch cap for a data cache of `dcache_bytes`, messages of
    /// `msg_bytes`, and at most `layer_data_bytes` of per-layer data
    /// resident during a pass. Always at least 1.
    pub fn limit(&self, dcache_bytes: u64, layer_data_bytes: u64, msg_bytes: u64) -> usize {
        match self {
            BatchPolicy::AllAvailable => usize::MAX,
            BatchPolicy::DCacheFit => {
                let usable = dcache_bytes.saturating_sub(layer_data_bytes);
                ((usable / msg_bytes.max(1)) as usize).max(1)
            }
            BatchPolicy::Fixed(n) => (*n).max(1),
        }
    }
}

/// Contiguous partition of a protocol stack's layers across pipeline
/// stages — the dispatch-policy arithmetic behind LDLP-aware *layer
/// affinity* (`crates/smp`): each core is pinned to a run of adjacent
/// layers so its I-cache only ever holds that slice of the code.
///
/// Returns the number of layers per stage. At most `num_layers` stages
/// are used (a core count beyond that leaves cores idle); sizes differ
/// by at most one, with the larger stages first, so the entry stage —
/// which also absorbs the NIC backlog and forms the biggest batches —
/// is the one best placed to amortize an oversized slice.
pub fn stage_partition(num_layers: usize, cores: usize) -> Vec<usize> {
    let stages = cores.clamp(1, num_layers.max(1));
    let base = num_layers / stages;
    let rem = num_layers % stages;
    (0..stages).map(|i| base + usize::from(i < rem)).collect()
}

/// What to do when a packet arrives and the adaptor buffer is full
/// (Section 4's 500-packet NIC queue). The paper's simulator tail-drops;
/// production adaptors differ, and under sustained overload the choice
/// decides *which* messages survive — and therefore the latency of the
/// ones that do.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum AdmissionPolicy {
    /// Drop the arriving packet (the paper's behaviour, and the default).
    TailDrop,
    /// Evict the oldest queued packet and admit the new one. Keeps the
    /// queue full of *recent* packets, bounding the queueing delay of
    /// everything that completes.
    HeadDrop,
    /// When full, shed the oldest packets down to `down_to` entries in
    /// one sweep, then admit the arrival. Models interrupt-level buffer
    /// reclamation: one expensive purge instead of per-packet eviction.
    ShedOldest {
        /// Queue length to shed down to (clamped below the capacity).
        down_to: usize,
    },
    /// Per-class weighted-fair admission: when full, an arrival whose
    /// class is under its weighted share of the buffer claims a slot
    /// from the most over-share class (its oldest packet is shed);
    /// an arrival at or over its share is refused. Class-aware drivers
    /// decide via [`weighted_fair_admit`]; the class-blind
    /// [`AdmissionPolicy::admit`] path degrades to tail-drop, since
    /// without class counts no fair decision exists.
    WeightedFair,
}

impl AdmissionPolicy {
    /// Decides admission for one arrival given the current queue length
    /// and capacity. Returns `(evict_from_front, admit_arrival)`: the
    /// caller removes `evict_from_front` packets from the head of the
    /// queue (counting them as shed) and then, if `admit_arrival`, pushes
    /// the new packet at the tail.
    pub fn admit(&self, queue_len: usize, capacity: usize) -> (usize, bool) {
        if queue_len < capacity {
            return (0, true);
        }
        match self {
            AdmissionPolicy::TailDrop => (0, false),
            AdmissionPolicy::HeadDrop => (1, true),
            AdmissionPolicy::ShedOldest { down_to } => {
                let target = (*down_to).min(capacity.saturating_sub(1));
                (queue_len - target, true)
            }
            // Class-blind callers cannot make a fair decision; refuse
            // the arrival (tail-drop) rather than evict blindly.
            AdmissionPolicy::WeightedFair => (0, false),
        }
    }
}

/// The weighted-fair decision for one arrival, given per-class queue
/// occupancy ([`AdmissionPolicy::WeightedFair`]; other policies keep
/// using the class-blind [`AdmissionPolicy::admit`]).
///
/// `class_counts[c]` is the number of queued packets of class `c` and
/// `weights[c]` its share weight (class `c`'s fair share of the buffer
/// is `capacity * weights[c] / sum(weights)`); `arriving` indexes the
/// arriving packet's class. Returns `(evict_class, admit)`: when
/// `evict_class` is `Some(j)` the caller sheds the *oldest* queued
/// packet of class `j` (charging the shed to `j`), then — if `admit` —
/// pushes the arrival at the tail.
///
/// Under capacity every arrival is admitted with no eviction. At
/// capacity, an arrival strictly under its share takes a slot from the
/// most over-share occupied class (largest `count/weight`, ties to the
/// lowest class index; a zero-weight class with any occupancy is
/// infinitely over-share); an arrival at or over its share is refused.
/// All comparisons cross-multiply, so the decision is exact integer
/// arithmetic — deterministic across platforms.
pub fn weighted_fair_admit(
    class_counts: &[u64],
    weights: &[u32],
    capacity: usize,
    arriving: usize,
) -> (Option<usize>, bool) {
    let queue_len: u64 = class_counts.iter().sum();
    if queue_len < capacity as u64 {
        return (None, true);
    }
    let n = |c: usize| -> u64 { class_counts.get(c).copied().unwrap_or(0) };
    let w = |c: usize| -> u64 { weights.get(c).copied().unwrap_or(0) as u64 };
    let total_w: u64 = (0..class_counts.len()).map(&w).sum();
    if total_w == 0 {
        return (None, false);
    }
    // Strictly under share: n(arr)/total < capacity * w(arr)/total_w,
    // cross-multiplied.
    if n(arriving) * total_w >= capacity as u64 * w(arriving) {
        return (None, false);
    }
    // Donor: the most over-share occupied class.
    let mut donor: Option<usize> = None;
    for c in 0..class_counts.len() {
        if n(c) == 0 {
            continue;
        }
        let better = match donor {
            None => true,
            // n(c)/w(c) > n(d)/w(d)  ⇔  n(c)·w(d) > n(d)·w(c); ties
            // keep the earlier (lower-index) donor.
            Some(d) => n(c) * w(d) > n(d) * w(c),
        };
        if better {
            donor = Some(c);
        }
    }
    match donor {
        Some(d) if d != arriving => (Some(d), true),
        // Nothing fair to evict (only the arriving class occupies the
        // queue): refuse rather than churn its own backlog.
        _ => (None, false),
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn stage_partition_covers_all_layers_balanced() {
        assert_eq!(stage_partition(5, 1), vec![5]);
        assert_eq!(stage_partition(5, 2), vec![3, 2]);
        assert_eq!(stage_partition(5, 4), vec![2, 1, 1, 1]);
        assert_eq!(stage_partition(5, 8), vec![1, 1, 1, 1, 1], "extra cores idle");
        for layers in 1..12usize {
            for cores in 1..10usize {
                let p = stage_partition(layers, cores);
                assert_eq!(p.iter().sum::<usize>(), layers);
                assert!(p.len() <= cores && p.len() <= layers);
                let (min, max) = (p.iter().min().copied(), p.iter().max().copied());
                assert!(max.unwrap_or(0) - min.unwrap_or(0) <= 1, "balanced to within one");
            }
        }
    }

    #[test]
    fn dcache_fit_matches_paper_arithmetic() {
        // 8 KB D-cache, 256 B layer data, 552 B messages:
        // (8192 - 256) / 552 = 14 messages.
        assert_eq!(BatchPolicy::DCacheFit.limit(8192, 256, 552), 14);
    }

    #[test]
    fn all_available_is_unbounded() {
        assert_eq!(BatchPolicy::AllAvailable.limit(8192, 256, 552), usize::MAX);
    }

    #[test]
    fn fixed_is_fixed_and_nonzero() {
        assert_eq!(BatchPolicy::Fixed(5).limit(8192, 256, 552), 5);
        assert_eq!(BatchPolicy::Fixed(0).limit(8192, 256, 552), 1);
    }

    #[test]
    fn degenerate_geometry_still_processes_one() {
        // Messages bigger than the cache: LDLP degrades to one at a time.
        assert_eq!(BatchPolicy::DCacheFit.limit(8192, 256, 100_000), 1);
        assert_eq!(BatchPolicy::DCacheFit.limit(256, 8192, 552), 1);
    }

    #[test]
    fn admission_under_capacity_always_admits() {
        for p in [
            AdmissionPolicy::TailDrop,
            AdmissionPolicy::HeadDrop,
            AdmissionPolicy::ShedOldest { down_to: 10 },
        ] {
            assert_eq!(p.admit(499, 500), (0, true));
            assert_eq!(p.admit(0, 500), (0, true));
        }
    }

    #[test]
    fn tail_drop_refuses_at_capacity() {
        assert_eq!(AdmissionPolicy::TailDrop.admit(500, 500), (0, false));
    }

    #[test]
    fn head_drop_trades_oldest_for_newest() {
        assert_eq!(AdmissionPolicy::HeadDrop.admit(500, 500), (1, true));
    }

    #[test]
    fn weighted_fair_admits_under_capacity_like_everyone_else() {
        assert_eq!(AdmissionPolicy::WeightedFair.admit(499, 500), (0, true));
        assert_eq!(weighted_fair_admit(&[100, 50, 49], &[4, 1, 2], 500, 1), (None, true));
    }

    #[test]
    fn weighted_fair_classless_fallback_is_tail_drop() {
        assert_eq!(AdmissionPolicy::WeightedFair.admit(500, 500), (0, false));
    }

    #[test]
    fn weighted_fair_under_share_arrival_takes_from_the_hog() {
        // Shares of a 100-slot buffer at weights [4, 1, 2]: ~57/14/28.
        // DNS (class 1) is under its 14-slot share; RPC (class 2) holds
        // 60 slots against a 28-slot share and is the most over-share.
        let counts = [35, 5, 60];
        assert_eq!(weighted_fair_admit(&counts, &[4, 1, 2], 100, 1), (Some(2), true));
        // The call class is also under share and likewise claims a slot.
        assert_eq!(weighted_fair_admit(&counts, &[4, 1, 2], 100, 0), (Some(2), true));
    }

    #[test]
    fn weighted_fair_over_share_arrival_is_refused() {
        // RPC already exceeds its share: refused, nothing evicted.
        let counts = [35, 5, 60];
        assert_eq!(weighted_fair_admit(&counts, &[4, 1, 2], 100, 2), (None, false));
        // Exactly at share (14 of 98 at weight 1/7) is "not strictly
        // under": refused too.
        let at_share = [56, 14, 28];
        assert_eq!(weighted_fair_admit(&at_share, &[4, 1, 2], 98, 1), (None, false));
    }

    #[test]
    fn weighted_fair_zero_weight_class_is_first_donor() {
        // A zero-weight class with any occupancy is infinitely
        // over-share and donates before everyone.
        let counts = [10, 89, 1];
        assert_eq!(weighted_fair_admit(&counts, &[1, 4, 0], 100, 0), (Some(2), true));
        // And a zero-weight arrival never claims a slot.
        assert_eq!(weighted_fair_admit(&counts, &[1, 4, 0], 100, 2), (None, false));
    }

    #[test]
    fn weighted_fair_sole_occupant_never_evicts_itself() {
        // Only the arriving class is queued: refuse, don't churn.
        assert_eq!(weighted_fair_admit(&[0, 4, 0], &[0, 1, 0], 4, 1), (None, false));
        // All-zero weights cannot make a fair decision: refuse.
        assert_eq!(weighted_fair_admit(&[2, 1, 1], &[0, 0, 0], 4, 0), (None, false));
    }

    #[test]
    fn weighted_fair_ties_go_to_the_lowest_class_index() {
        // Classes 0 and 1 equally over-share: class 0 donates.
        assert_eq!(weighted_fair_admit(&[50, 50, 0], &[1, 1, 2], 100, 2), (Some(0), true));
    }

    #[test]
    fn shed_oldest_purges_to_watermark() {
        let p = AdmissionPolicy::ShedOldest { down_to: 250 };
        assert_eq!(p.admit(500, 500), (250, true));
        // Watermark at or above capacity degenerates to head-drop-like
        // eviction of at least one packet.
        let p = AdmissionPolicy::ShedOldest { down_to: 600 };
        assert_eq!(p.admit(500, 500), (1, true));
    }
}
