//! Protocol layers as locality objects.
//!
//! For the scheduling study a layer is characterized entirely by what it
//! does to the memory system: the code it executes, the per-layer data it
//! consults, the instruction cycles it burns, and whether it loops over
//! the message contents. [`SyntheticLayer`] is the paper's Section 4
//! layer; anything else (e.g. layers derived from the `netstack`
//! footprints) can implement [`SimLayer`] too.

use cachesim::Region;

/// A message travelling up the stack: identity, arrival time, and the
/// address region its contents occupy (so data-cache behaviour follows
/// from real addresses).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct SimMessage {
    /// Monotonic message id.
    pub id: u64,
    /// Arrival time in machine cycles (set by the traffic source; 0 in
    /// standalone engine use).
    pub arrival_cycles: u64,
    /// Where the message contents live.
    pub buf: Region,
    /// The payload was damaged on the wire. The engine still spends
    /// cycles on it up to the verification layer, where the checksum
    /// fails and the message is discarded instead of completed.
    pub corrupted: bool,
}

impl SimMessage {
    /// Message length in bytes.
    pub fn len(&self) -> u64 {
        self.buf.len
    }

    /// Whether the message is empty.
    pub fn is_empty(&self) -> bool {
        self.buf.len == 0
    }
}

/// A protocol layer described by its memory-system behaviour.
pub trait SimLayer {
    /// Layer name, for reports.
    fn name(&self) -> &str;

    /// I-cache lines (line numbers, i.e. `addr / line_size`) executed for
    /// every message. The engine fetches each once per (layer, message)
    /// application — the paper's "every instruction in the working set is
    /// executed at least once".
    fn code_lines(&self) -> &[u64];

    /// Per-layer working data (PCBs, tables): read on every application.
    fn data_region(&self) -> Region;

    /// Instruction cycles excluding the data loop.
    fn base_instr_cycles(&self) -> u64;

    /// Data-loop cost in cycles per message byte (0.5 in the paper).
    fn loop_cycles_per_byte(&self) -> f64;

    /// Whether this layer's data loop touches the message contents.
    fn touches_message(&self) -> bool {
        true
    }

    /// Total instruction cycles to process a message of `len` bytes.
    fn instr_cycles(&self, len: u64) -> u64 {
        self.base_instr_cycles() + (self.loop_cycles_per_byte() * len as f64).round() as u64
    }
}

/// The synthetic layer of Section 4: `code_bytes` of straight-line code,
/// `data_bytes` of layer data, a 40-instruction data loop at 0.5
/// cycles/byte, and 1652 total cycles for a 552-byte message.
#[derive(Debug, Clone)]
pub struct SyntheticLayer {
    name: String,
    code: Region,
    data: Region,
    code_lines: Vec<u64>,
    base_cycles: u64,
    loop_cpb: f64,
}

/// Paper constants for the synthetic benchmark layer.
pub mod paper {
    /// Code bytes per layer.
    pub const CODE_BYTES: u64 = 6 * 1024;
    /// Per-layer data bytes.
    pub const DATA_BYTES: u64 = 256;
    /// Total instruction cycles per layer for a 552-byte message.
    pub const TOTAL_CYCLES_552: u64 = 1652;
    /// Data-loop cycles per byte.
    pub const LOOP_CPB: f64 = 0.5;
    /// The message size the constants were quoted for.
    pub const MESSAGE_BYTES: u64 = 552;
    /// Base cycles excluding the data loop (1652 - 0.5 * 552).
    pub const BASE_CYCLES: u64 = TOTAL_CYCLES_552 - (LOOP_CPB * MESSAGE_BYTES as f64) as u64;
    /// Cost of enqueueing + dequeueing a message at a layer boundary
    /// ("on the order of 40 instructions", Section 3.2).
    pub const QUEUE_INSTR: u64 = 40;
}

impl SyntheticLayer {
    /// Builds a layer whose code and data live at the given regions.
    /// `line_size` fixes the I-cache line granularity of the footprint.
    pub fn new(name: &str, code: Region, data: Region, line_size: u64) -> Self {
        SyntheticLayer {
            name: name.to_string(),
            code_lines: code.line_addrs(line_size).map(|a| a / line_size).collect(),
            code,
            data,
            base_cycles: paper::BASE_CYCLES,
            loop_cpb: paper::LOOP_CPB,
        }
    }

    /// Overrides the instruction-cost model.
    pub fn with_cycles(mut self, base_cycles: u64, loop_cpb: f64) -> Self {
        self.base_cycles = base_cycles;
        self.loop_cpb = loop_cpb;
        self
    }

    /// The code region (for layout experiments).
    pub fn code_region(&self) -> Region {
        self.code
    }
}

impl SimLayer for SyntheticLayer {
    fn name(&self) -> &str {
        &self.name
    }

    fn code_lines(&self) -> &[u64] {
        &self.code_lines
    }

    fn data_region(&self) -> Region {
        self.data
    }

    fn base_instr_cycles(&self) -> u64 {
        self.base_cycles
    }

    fn loop_cycles_per_byte(&self) -> f64 {
        self.loop_cpb
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn paper_constants_are_consistent() {
        // 1652 total = base + 0.5 * 552.
        assert_eq!(paper::BASE_CYCLES, 1376);
        let l = SyntheticLayer::new(
            "L1",
            Region::new(0, paper::CODE_BYTES),
            Region::new(0x10_0000, paper::DATA_BYTES),
            32,
        );
        assert_eq!(l.instr_cycles(paper::MESSAGE_BYTES), paper::TOTAL_CYCLES_552);
        assert_eq!(l.code_lines().len() as u64, paper::CODE_BYTES / 32);
    }

    #[test]
    fn code_lines_cover_region() {
        let l = SyntheticLayer::new("L", Region::new(64, 100), Region::new(0x1000, 64), 32);
        // Bytes 64..164 span lines 2..=5.
        assert_eq!(l.code_lines(), &[2, 3, 4, 5]);
    }

    #[test]
    fn message_accessors() {
        let m = SimMessage {
            id: 3,
            arrival_cycles: 100,
            buf: Region::new(0x2000, 552),
            corrupted: false,
        };
        assert_eq!(m.len(), 552);
        assert!(!m.is_empty());
    }
}
