//! The layer-processing engine: Conventional, ILP, and LDLP schedules
//! over a simulated machine (paper Figures 2 and 3).
//!
//! All three disciplines perform *identical logical work* — every layer is
//! applied to every message, in layer order per message — and differ only
//! in the interleaving, which is exactly what determines cache behaviour:
//!
//! * **Conventional**: `for msg { for layer { apply } }`.
//! * **ILP**: same outer structure, but the per-layer data loops over the
//!   message are integrated into one pass, so message bytes are touched
//!   once per message instead of once per layer.
//! * **LDLP (blocked)**: `for layer { for msg in batch { apply } }`, with
//!   an enqueue/dequeue cost per message per layer boundary
//!   (~40 instructions, Section 3.2).

use crate::layer::{paper, SimLayer, SimMessage};
use crate::policy::BatchPolicy;
use cachesim::{CycleCount, Machine, Region};
use obs::{NameId, Sink, SpanEvent};

/// The scheduling discipline (Figure 2).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Discipline {
    /// One message at a time through all layers.
    Conventional,
    /// One message at a time, with integrated data loops.
    Ilp,
    /// Blocked: each layer over the whole batch, sized by the policy.
    Ldlp(BatchPolicy),
}

/// Per-message outcome of a batch.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Completion {
    /// The message's id.
    pub msg_id: u64,
    /// Machine cycle count at which the message finished its last layer
    /// (or failed verification, for rejected messages).
    pub done_cycles: CycleCount,
    /// Instruction-cache misses attributed to this message.
    pub imisses: u64,
    /// Data-cache misses attributed to this message.
    pub dmisses: u64,
    /// The message was corrupted on the wire: the verification layer's
    /// checksum failed and processing stopped there. Cycles were spent,
    /// but the message is not useful work.
    pub rejected: bool,
}

/// Executes batches of messages through a layer stack on a machine.
pub struct StackEngine {
    machine: Machine,
    layers: Vec<Box<dyn SimLayer>>,
    discipline: Discipline,
    /// Enqueue+dequeue instruction cost per message per layer boundary
    /// under LDLP.
    queue_instr: u64,
    max_layer_data: u64,
    /// Transmit-side layers (top-down order) for duplex operation: every
    /// completed receive generates a reply that descends these layers.
    /// The paper notes LDLP "is also applicable to transmit-side
    /// processing" without evaluating it; this is that extension.
    tx_layers: Vec<Box<dyn SimLayer>>,
    /// Length in bytes of the generated reply (e.g. a 58-byte ACK).
    reply_len: u64,
    /// Index of the layer whose checksum catches corrupted payloads.
    /// Corrupted messages are processed through this layer (its code
    /// runs, its data loop walks the damaged bytes) and then discarded.
    verify_layer: usize,
    /// Address region replies are built in (one slot per pool entry,
    /// reused round-robin).
    reply_bufs: Vec<cachesim::Region>,
    reply_next: usize,
    /// Per-batch scratch, reused across batches so the steady-state hot
    /// path allocates nothing.
    scratch: BatchScratch,
    /// Observability sink ([`Sink::Off`] by default: every probe is one
    /// branch, no allocation — `tests/alloc.rs` proves it).
    sink: Sink,
    /// Name prefix applied to everything this engine interns (e.g.
    /// `"ldlp/"`), so recorders from different disciplines can be merged
    /// without conflating their layers.
    obs_prefix: String,
    /// Pre-interned span names for the receive layers (empty when off).
    obs_rx: Vec<NameId>,
    /// Pre-interned span names for the transmit layers (empty when off).
    obs_tx: Vec<NameId>,
}

/// Reusable per-batch buffers for the blocked (LDLP) path.
#[derive(Debug, Default)]
struct BatchScratch {
    imiss: Vec<u64>,
    dmiss: Vec<u64>,
    done: Vec<u64>,
    replies: Vec<cachesim::Region>,
}

impl StackEngine {
    /// Builds an engine. The machine's caches start cold.
    pub fn new(
        machine: Machine,
        layers: Vec<Box<dyn SimLayer>>,
        discipline: Discipline,
    ) -> Self {
        assert!(!layers.is_empty(), "a stack needs at least one layer");
        let max_layer_data = layers.iter().map(|l| l.data_region().len).max().unwrap_or(0);
        StackEngine {
            machine,
            layers,
            discipline,
            queue_instr: paper::QUEUE_INSTR,
            max_layer_data,
            tx_layers: Vec::new(),
            reply_len: 0,
            reply_bufs: Vec::new(),
            reply_next: 0,
            verify_layer: 0,
            scratch: BatchScratch::default(),
            sink: Sink::Off,
            obs_prefix: String::new(),
            obs_rx: Vec::new(),
            obs_tx: Vec::new(),
        }
    }

    /// Attaches an observability sink. Layer span names are interned up
    /// front as `<prefix>rx:<layer>` / `<prefix>tx:<layer>` so the hot
    /// path only passes pre-computed ids. Passing [`Sink::Off`] detaches.
    pub fn set_sink(&mut self, mut sink: Sink, prefix: &str) {
        self.obs_rx.clear();
        self.obs_tx.clear();
        self.obs_prefix.clear();
        self.obs_prefix.push_str(prefix);
        if let Some(rec) = sink.on_mut() {
            for l in &self.layers {
                self.obs_rx.push(rec.intern(&format!("{prefix}rx:{}", l.name())));
            }
            for l in &self.tx_layers {
                self.obs_tx.push(rec.intern(&format!("{prefix}tx:{}", l.name())));
            }
        }
        self.sink = sink;
    }

    /// Detaches and returns the sink (leaving [`Sink::Off`] behind), so
    /// callers can export what was recorded.
    pub fn take_sink(&mut self) -> Sink {
        self.sink.take()
    }

    /// Mutable access to the attached sink (for recording run-level
    /// events, e.g. the simulator's batch spans).
    pub fn sink_mut(&mut self) -> &mut Sink {
        &mut self.sink
    }

    /// Interns `name` under this engine's sink prefix; `None` when the
    /// sink is off. Off the hot path — callers cache the id.
    pub fn obs_intern(&mut self, name: &str) -> Option<NameId> {
        let Self {
            sink, obs_prefix, ..
        } = self;
        sink.on_mut()
            .map(|rec| rec.intern(&format!("{obs_prefix}{name}")))
    }

    /// Overrides the per-boundary queueing cost (default 40 instructions).
    pub fn with_queue_instr(mut self, instr: u64) -> Self {
        self.queue_instr = instr;
        self
    }

    /// Sets the layer index whose checksum rejects corrupted messages
    /// (default 0: the bottom layer's CRC, as in AAL5 or Ethernet+IP).
    /// A corrupted message runs layers `0..=index` and is then dropped:
    /// it burns cycles and cache lines but never completes or replies.
    pub fn with_verify_layer(mut self, index: usize) -> Self {
        assert!(index < self.layers.len(), "verify layer out of range");
        self.verify_layer = index;
        self
    }

    /// Enables duplex operation: each completed receive generates a
    /// `reply_len`-byte reply that descends `tx_layers` (given top-down)
    /// under the same discipline — blocked alongside the receive batch
    /// for LDLP, interleaved per message conventionally.
    pub fn with_tx(mut self, tx_layers: Vec<Box<dyn SimLayer>>, reply_len: u64) -> Self {
        assert!(!tx_layers.is_empty(), "duplex needs at least one tx layer");
        self.max_layer_data = self
            .max_layer_data
            .max(tx_layers.iter().map(|l| l.data_region().len).max().unwrap_or(0));
        // 32 reply slots laid out after the mbuf window.
        let mut alloc = cachesim::AddressAllocator::new(0x2000_0000, 64);
        self.reply_bufs = (0..32).map(|_| alloc.alloc(reply_len.max(64))).collect();
        self.tx_layers = tx_layers;
        self.reply_len = reply_len;
        self
    }

    /// Whether the engine is running duplex (receive + reply) processing.
    pub fn is_duplex(&self) -> bool {
        !self.tx_layers.is_empty()
    }

    fn next_reply_buf(&mut self) -> cachesim::Region {
        let buf = self.reply_bufs[self.reply_next];
        // analyze::allow(panic-path, reason = "the reply ring is constructed with at least one buffer")
        self.reply_next = (self.reply_next + 1) % self.reply_bufs.len();
        cachesim::Region::new(buf.base, self.reply_len)
    }

    /// The discipline this engine runs.
    pub fn discipline(&self) -> Discipline {
        self.discipline
    }

    /// Number of layers in the stack.
    pub fn num_layers(&self) -> usize {
        self.layers.len()
    }

    /// The machine (cycle counter, cache stats).
    pub fn machine(&self) -> &Machine {
        &self.machine
    }

    /// Mutable machine access (e.g. flushing caches between runs).
    pub fn machine_mut(&mut self) -> &mut Machine {
        &mut self.machine
    }

    /// The most messages one batch may contain for `msg_bytes` messages,
    /// per the discipline's policy. Conventional and ILP have no batching
    /// semantics, so any number may be passed to [`Self::process_batch`].
    pub fn batch_limit(&self, msg_bytes: u64) -> usize {
        match self.discipline {
            Discipline::Conventional | Discipline::Ilp => usize::MAX,
            Discipline::Ldlp(policy) => {
                let dcache = self
                    .machine
                    .config()
                    .dcache
                    .unwrap_or(self.machine.config().icache)
                    .size_bytes;
                policy.limit(dcache, self.max_layer_data, msg_bytes)
            }
        }
    }

    /// Processes `msgs` to completion and returns one [`Completion`] per
    /// message, in input order. The machine's cycle counter carries over
    /// between batches (caches stay warm with whatever survived).
    pub fn process_batch(&mut self, msgs: &[SimMessage]) -> Vec<Completion> {
        let mut out = Vec::with_capacity(msgs.len());
        self.process_batch_into(msgs, &mut out);
        out
    }

    /// [`Self::process_batch`] into a caller-owned buffer: `out` is
    /// cleared and refilled, so a reused buffer makes the steady-state
    /// path allocation-free.
    // analyze::hot_path(engine-batch-loop)
    pub fn process_batch_into(&mut self, msgs: &[SimMessage], out: &mut Vec<Completion>) {
        out.clear();
        match self.discipline {
            Discipline::Conventional => self.run_per_message(msgs, false, out),
            Discipline::Ilp => self.run_per_message(msgs, true, out),
            Discipline::Ldlp(_) => self.run_blocked(msgs, out),
        }
    }

    /// Conventional / ILP: all layers applied to each message in turn,
    /// followed immediately by the reply's descent when duplex.
    fn run_per_message(&mut self, msgs: &[SimMessage], integrated: bool, out: &mut Vec<Completion>) {
        // analyze::allow(alloc-path, reason = "reused caller buffer: no-op once capacity is warm (tests/alloc.rs pins zero steady-state allocs)")
        out.reserve(msgs.len());
        for msg in msgs {
            let (i0, d0) = self.miss_counters();
            // A corrupted message dies at the verification layer.
            let top = if msg.corrupted {
                self.verify_layer
            } else {
                self.layers.len() - 1
            };
            for li in 0..=top {
                // Under ILP the data loop runs once (on the first layer)
                // and performs all layers' per-byte work.
                let touch = if integrated { li == 0 } else { true };
                if self.sink.is_on() {
                    let (sc, si, sd) = self.obs_begin();
                    self.apply_layer(li, msg, touch, integrated && li == 0);
                    self.obs_span(self.obs_rx.get(li).copied(), sc, si, sd, 1);
                } else {
                    self.apply_layer(li, msg, touch, integrated && li == 0);
                }
            }
            if self.is_duplex() && !msg.corrupted {
                let reply = self.next_reply_buf();
                for li in 0..self.tx_layers.len() {
                    if self.sink.is_on() {
                        let (sc, si, sd) = self.obs_begin();
                        self.apply_tx(li, reply);
                        self.obs_span(self.obs_tx.get(li).copied(), sc, si, sd, 1);
                    } else {
                        self.apply_tx(li, reply);
                    }
                }
            }
            let (i1, d1) = self.miss_counters();
            // analyze::allow(alloc-path, reason = "reused caller buffer: no-op once capacity is warm (tests/alloc.rs pins zero steady-state allocs)")
            out.push(Completion {
                msg_id: msg.id,
                done_cycles: self.machine.cycles(),
                imisses: i1 - i0,
                dmisses: d1 - d0,
                rejected: msg.corrupted,
            });
        }
    }

    /// LDLP: each layer applied to the whole batch before the next layer;
    /// when duplex, the replies then descend the transmit layers in the
    /// same blocked pattern.
    fn run_blocked(&mut self, msgs: &[SimMessage], out: &mut Vec<Completion>) {
        let n = msgs.len();
        // Take the scratch buffers so they can be indexed while the
        // engine is borrowed by the apply calls; restored on return.
        let mut imiss = std::mem::take(&mut self.scratch.imiss);
        let mut dmiss = std::mem::take(&mut self.scratch.dmiss);
        let mut done = std::mem::take(&mut self.scratch.done);
        imiss.clear();
        // analyze::allow(alloc-path, reason = "reused caller buffer: no-op once capacity is warm (tests/alloc.rs pins zero steady-state allocs)")
        imiss.resize(n, 0);
        dmiss.clear();
        // analyze::allow(alloc-path, reason = "reused caller buffer: no-op once capacity is warm (tests/alloc.rs pins zero steady-state allocs)")
        dmiss.resize(n, 0);
        done.clear();
        // analyze::allow(alloc-path, reason = "reused caller buffer: no-op once capacity is warm (tests/alloc.rs pins zero steady-state allocs)")
        done.resize(n, 0);
        let last = self.layers.len() - 1;
        for li in 0..self.layers.len() {
            // One span per layer *pass* over the batch — the unit LDLP's
            // amortization argument is about.
            let pass = if self.sink.is_on() {
                Some(self.obs_begin())
            } else {
                None
            };
            let mut active = 0u32;
            for (mi, msg) in msgs.iter().enumerate() {
                // Corrupted messages leave the batch after verification.
                if msg.corrupted && li > self.verify_layer {
                    continue;
                }
                active += 1;
                let (i0, d0) = self.miss_counters();
                // Layer-boundary queueing: each message is enqueued for
                // this layer and dequeued from the previous one.
                self.machine.execute(self.queue_instr);
                self.apply_layer(li, msg, true, false);
                let (i1, d1) = self.miss_counters();
                imiss[mi] += i1 - i0;
                dmiss[mi] += d1 - d0;
                // A corrupted message finishes (rejected) at the verify
                // layer; clean simplex messages finish at the top.
                if (msg.corrupted && li == self.verify_layer)
                    || (li == last && !self.is_duplex())
                {
                    done[mi] = self.machine.cycles();
                }
            }
            if let Some((sc, si, sd)) = pass {
                self.obs_span(self.obs_rx.get(li).copied(), sc, si, sd, active);
            }
        }
        if self.is_duplex() {
            let mut replies = std::mem::take(&mut self.scratch.replies);
            replies.clear();
            for msg in msgs {
                // Rejected messages generate no reply; a placeholder keeps
                // the vector index-aligned with the batch.
                let r = if msg.corrupted {
                    Region::new(0, 0)
                } else {
                    self.next_reply_buf()
                };
                // analyze::allow(alloc-path, reason = "reused caller buffer: no-op once capacity is warm (tests/alloc.rs pins zero steady-state allocs)")
                replies.push(r);
            }
            let tx_last = self.tx_layers.len() - 1;
            for li in 0..self.tx_layers.len() {
                let pass = if self.sink.is_on() {
                    Some(self.obs_begin())
                } else {
                    None
                };
                let mut active = 0u32;
                for (mi, &reply) in replies.iter().enumerate() {
                    if msgs[mi].corrupted {
                        continue;
                    }
                    active += 1;
                    let (i0, d0) = self.miss_counters();
                    self.machine.execute(self.queue_instr);
                    self.apply_tx(li, reply);
                    let (i1, d1) = self.miss_counters();
                    imiss[mi] += i1 - i0;
                    dmiss[mi] += d1 - d0;
                    if li == tx_last {
                        done[mi] = self.machine.cycles();
                    }
                }
                if let Some((sc, si, sd)) = pass {
                    self.obs_span(self.obs_tx.get(li).copied(), sc, si, sd, active);
                }
            }
            self.scratch.replies = replies;
        }
        // analyze::allow(alloc-path, reason = "reused caller buffer: no-op once capacity is warm (tests/alloc.rs pins zero steady-state allocs)")
        out.reserve(n);
        // analyze::allow(alloc-path, reason = "reused caller buffer: no-op once capacity is warm (tests/alloc.rs pins zero steady-state allocs)")
        out.extend(msgs.iter().enumerate().map(|(mi, msg)| Completion {
            msg_id: msg.id,
            done_cycles: done[mi],
            imisses: imiss[mi],
            dmisses: dmiss[mi],
            rejected: msg.corrupted,
        }));
        self.scratch.imiss = imiss;
        self.scratch.dmiss = dmiss;
        self.scratch.done = done;
    }

    /// One application of one transmit layer to one reply buffer: the
    /// topmost layer constructs the reply (writes it); lower layers read
    /// it (checksums, framing) on the way down.
    fn apply_tx(&mut self, li: usize, reply: cachesim::Region) {
        // Footprint ids: rx layers take 0..layers.len(), tx layers follow.
        let fid = (self.layers.len() + li) as u32;
        self.machine
            .fetch_code_footprint(fid, self.tx_layers[li].code_lines());
        let data = self.tx_layers[li].data_region();
        self.machine.read_data(data);
        if self.tx_layers[li].touches_message() && reply.len > 0 {
            if li == 0 {
                self.machine.write_data(reply);
            } else {
                self.machine.read_data(reply);
            }
        }
        let cycles = self.tx_layers[li].instr_cycles(reply.len);
        self.machine.execute(cycles);
    }

    /// One application of one layer to one message: fetch the layer's
    /// code, read its data, run the data loop over the message, charge
    /// instruction cycles.
    fn apply_layer(&mut self, li: usize, msg: &SimMessage, touch_message: bool, ilp_loop: bool) {
        // Instruction fetches over the layer's working code, replayed
        // through the machine's footprint memo.
        self.machine
            .fetch_code_footprint(li as u32, self.layers[li].code_lines());
        // Per-layer data.
        let data = self.layers[li].data_region();
        self.machine.read_data(data);
        // The data loop over the message contents.
        if touch_message && self.layers[li].touches_message() && !msg.is_empty() {
            self.machine.read_data(Region::new(msg.buf.base, msg.buf.len));
        }
        // Instruction cycles. Under ILP the loop work of all layers is
        // done in the single integrated pass; base cycles are unchanged.
        let cycles = if ilp_loop {
            let all_loops: u64 = self
                .layers
                .iter()
                .map(|l| (l.loop_cycles_per_byte() * msg.len() as f64).round() as u64)
                .sum();
            self.layers[li].base_instr_cycles() + all_loops
        } else if !touch_message {
            self.layers[li].base_instr_cycles()
        } else {
            self.layers[li].instr_cycles(msg.len())
        };
        self.machine.execute(cycles);
    }

    fn miss_counters(&self) -> (u64, u64) {
        let s = self.machine.stats();
        (s.icache.misses, s.dcache.misses)
    }

    /// Snapshot taken before an observed section: (cycles, I-misses,
    /// D-misses). Only called when the sink is on.
    fn obs_begin(&self) -> (CycleCount, u64, u64) {
        let (i, d) = self.miss_counters();
        (self.machine.cycles(), i, d)
    }

    /// Closes an observed section opened by [`Self::obs_begin`]: charges
    /// the cycle and miss deltas to `name` as one span covering `batch`
    /// messages. No-op when the sink is off or the name was never
    /// interned (e.g. a sink attached with no layers).
    fn obs_span(&mut self, name: Option<NameId>, start: CycleCount, i0: u64, d0: u64, batch: u32) {
        let (i1, d1) = self.miss_counters();
        let end = self.machine.cycles();
        let Some(name) = name else { return };
        if let Some(rec) = self.sink.on_mut() {
            rec.span(SpanEvent {
                name,
                start,
                dur: end - start,
                batch,
                aux: 0,
                imisses: i1 - i0,
                dmisses: d1 - d0,
            });
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::synth::{paper_stack, MessagePool};
    use cachesim::MachineConfig;

    fn engine(discipline: Discipline, seed: u64) -> StackEngine {
        let (m, layers) = paper_stack(MachineConfig::synthetic_benchmark(), seed);
        StackEngine::new(m, layers, discipline)
    }

    fn msgs(pool: &mut MessagePool, n: usize) -> Vec<SimMessage> {
        (0..n).map(|i| pool.make_message(i as u64, 552)).collect()
    }

    #[test]
    fn conventional_cold_misses_match_paper_arithmetic() {
        let mut e = engine(Discipline::Conventional, 42);
        let mut pool = MessagePool::new(16, 1536, 7);
        let batch = msgs(&mut pool, 3);
        let completions = e.process_batch(&batch);
        // 5 layers x 6 KB = 30 KB of code against an 8 KB I-cache: every
        // line misses on every message (after the first, which is also
        // all-cold). 30720/32 = 960 instruction misses per message, plus
        // conflict effects.
        for c in &completions {
            assert!(
                c.imisses >= 900,
                "conventional should reload ~960 lines, got {}",
                c.imisses
            );
        }
    }

    #[test]
    fn ldlp_amortizes_instruction_misses() {
        let mut conv = engine(Discipline::Conventional, 42);
        let mut ldlp = engine(Discipline::Ldlp(BatchPolicy::DCacheFit), 42);
        let mut pool_a = MessagePool::new(16, 1536, 7);
        let mut pool_b = MessagePool::new(16, 1536, 7);
        let batch_a = msgs(&mut pool_a, 14);
        let batch_b = msgs(&mut pool_b, 14);
        let ca = conv.process_batch(&batch_a);
        let cb = ldlp.process_batch(&batch_b);
        let conv_imiss: u64 = ca.iter().map(|c| c.imisses).sum();
        let ldlp_imiss: u64 = cb.iter().map(|c| c.imisses).sum();
        assert!(
            ldlp_imiss * 3 < conv_imiss,
            "LDLP {ldlp_imiss} should be far below conventional {conv_imiss}"
        );
        // And total cycles are lower despite the queueing overhead.
        assert!(ldlp.machine().cycles() < conv.machine().cycles());
    }

    #[test]
    fn ldlp_batch_of_one_behaves_like_conventional_plus_queueing() {
        let mut conv = engine(Discipline::Conventional, 9);
        let mut ldlp = engine(Discipline::Ldlp(BatchPolicy::DCacheFit), 9);
        let mut pool_a = MessagePool::new(16, 1536, 3);
        let mut pool_b = MessagePool::new(16, 1536, 3);
        let a = conv.process_batch(&msgs(&mut pool_a, 1));
        let b = ldlp.process_batch(&msgs(&mut pool_b, 1));
        assert_eq!(a[0].imisses, b[0].imisses, "same placement, same misses");
        assert_eq!(a[0].dmisses, b[0].dmisses);
        let queue_cost = paper::QUEUE_INSTR * 5; // 5 layer boundaries
        assert_eq!(
            ldlp.machine().cycles() - conv.machine().cycles(),
            queue_cost
        );
    }

    #[test]
    fn ilp_touches_message_once() {
        let mut conv = engine(Discipline::Conventional, 5);
        let mut ilp = engine(Discipline::Ilp, 5);
        let mut pool_a = MessagePool::new(16, 1536, 11);
        let mut pool_b = MessagePool::new(16, 1536, 11);
        let a = conv.process_batch(&msgs(&mut pool_a, 1));
        let b = ilp.process_batch(&msgs(&mut pool_b, 1));
        // Same instruction misses (same code), same total instruction
        // cycles (the integrated loop still does all layers' work)...
        assert_eq!(a[0].imisses, b[0].imisses);
        // ...but ILP's D-cache misses can't exceed conventional's (one
        // pass over the message instead of five; with a 552-byte message
        // fully cache-resident they tie on misses, and diverge on large
        // messages — see below).
        assert!(b[0].dmisses <= a[0].dmisses);
    }

    #[test]
    fn ilp_wins_on_messages_larger_than_the_dcache() {
        // 12 KB messages against an 8 KB D-cache: conventional reloads
        // the message every layer; ILP loads it once.
        let mut conv = engine(Discipline::Conventional, 6);
        let mut ilp = engine(Discipline::Ilp, 6);
        let mut pool_a = MessagePool::new(4, 16384, 13);
        let mut pool_b = MessagePool::new(4, 16384, 13);
        let big_a = vec![pool_a.make_message(0, 12 * 1024)];
        let big_b = vec![pool_b.make_message(0, 12 * 1024)];
        let a = conv.process_batch(&big_a);
        let b = ilp.process_batch(&big_b);
        assert!(
            b[0].dmisses * 3 < a[0].dmisses,
            "ILP {} vs conventional {}",
            b[0].dmisses,
            a[0].dmisses
        );
    }

    #[test]
    fn completions_preserve_input_order_and_ids() {
        let mut e = engine(Discipline::Ldlp(BatchPolicy::AllAvailable), 1);
        let mut pool = MessagePool::new(16, 1536, 1);
        let batch: Vec<SimMessage> = (0..5)
            .map(|i| pool.make_message(100 + i as u64, 552))
            .collect();
        let c = e.process_batch(&batch);
        let ids: Vec<u64> = c.iter().map(|x| x.msg_id).collect();
        assert_eq!(ids, vec![100, 101, 102, 103, 104]);
        // Completion times are monotone in input order under LDLP (later
        // messages finish the last layer later).
        for w in c.windows(2) {
            assert!(w[0].done_cycles <= w[1].done_cycles);
        }
    }

    #[test]
    fn batch_limit_follows_policy() {
        let e = engine(Discipline::Ldlp(BatchPolicy::DCacheFit), 1);
        assert_eq!(e.batch_limit(552), 14);
        let e = engine(Discipline::Conventional, 1);
        assert_eq!(e.batch_limit(552), usize::MAX);
        let e = engine(Discipline::Ldlp(BatchPolicy::Fixed(4)), 1);
        assert_eq!(e.batch_limit(552), 4);
    }


    #[test]
    fn duplex_generates_reply_descent() {
        // Receive + ACK path: 5 rx layers up, 3 tx layers down.
        let make = |d: Discipline| {
            let (m, rx) = paper_stack(MachineConfig::synthetic_benchmark(), 21);
            let (_, tx) = crate::synth::stack_with(
                MachineConfig::synthetic_benchmark(),
                99,
                3,
                4 * 1024,
                256,
            );
            StackEngine::new(m, rx, d).with_tx(tx, 58)
        };
        let mut conv = make(Discipline::Conventional);
        let mut ldlp = make(Discipline::Ldlp(BatchPolicy::DCacheFit));
        assert!(conv.is_duplex());
        let mut pool_a = MessagePool::new(16, 1536, 2);
        let mut pool_b = MessagePool::new(16, 1536, 2);
        let a = conv.process_batch(&msgs(&mut pool_a, 12));
        let b = ldlp.process_batch(&msgs(&mut pool_b, 12));
        let conv_imiss: u64 = a.iter().map(|c| c.imisses).sum();
        let ldlp_imiss: u64 = b.iter().map(|c| c.imisses).sum();
        // The duplex working set is 30 + 12 = 42 KB: blocked scheduling
        // amortizes both directions.
        assert!(
            ldlp_imiss * 3 < conv_imiss,
            "duplex LDLP {ldlp_imiss} vs conventional {conv_imiss}"
        );
        // Completion time includes the reply descent: strictly more
        // cycles than the rx-only engine would report.
        assert!(b.last().unwrap().done_cycles == ldlp.machine().cycles());
    }

    #[test]
    fn duplex_rx_only_equivalence_when_tx_absent() {
        // Without with_tx, nothing about the rx path changes.
        let mut plain = engine(Discipline::Ldlp(BatchPolicy::DCacheFit), 4);
        let mut pool = MessagePool::new(16, 1536, 5);
        let batch = msgs(&mut pool, 6);
        let a = plain.process_batch(&batch);
        assert!(!plain.is_duplex());
        assert!(a.iter().all(|c| c.done_cycles > 0));
    }

    #[test]
    fn duplex_batch_limit_accounts_for_tx_layer_data() {
        let (m, rx) = paper_stack(MachineConfig::synthetic_benchmark(), 1);
        let (_, tx) = crate::synth::stack_with(
            MachineConfig::synthetic_benchmark(),
            50,
            2,
            4 * 1024,
            2048, // big tx layer data shrinks the batch cap
        );
        let e = StackEngine::new(m, rx, Discipline::Ldlp(BatchPolicy::DCacheFit)).with_tx(tx, 58);
        assert_eq!(e.batch_limit(552), (8192 - 2048) / 552);
    }

    #[test]
    fn corrupted_message_is_rejected_at_the_verify_layer() {
        // Verification at layer 1: a corrupted message runs layers 0-1
        // only, so it costs cycles but is flagged and generates no reply.
        let mut pool = MessagePool::new(16, 1536, 3);
        let mut batch = msgs(&mut pool, 3);
        batch[1].corrupted = true;
        let (m, layers) = paper_stack(MachineConfig::synthetic_benchmark(), 8);
        let mut e = StackEngine::new(m, layers, Discipline::Conventional).with_verify_layer(1);
        let c = e.process_batch(&batch);
        assert!(!c[0].rejected && c[1].rejected && !c[2].rejected);
        // The rejected message stopped early: fewer cycles than a clean
        // one, but more than zero (the checksum walked the bytes).
        assert!(c[1].done_cycles > c[0].done_cycles, "still processed in order");
        assert!(c[1].imisses > 0, "verification cost real fetches");
    }

    #[test]
    fn blocked_and_conventional_agree_on_rejection() {
        let mk = |d: Discipline| {
            let (m, layers) = paper_stack(MachineConfig::synthetic_benchmark(), 17);
            StackEngine::new(m, layers, d).with_verify_layer(0)
        };
        let mut pool_a = MessagePool::new(16, 1536, 9);
        let mut pool_b = MessagePool::new(16, 1536, 9);
        let corrupt = |mut b: Vec<SimMessage>| {
            b[2].corrupted = true;
            b[5].corrupted = true;
            b
        };
        let batch_a = corrupt(msgs(&mut pool_a, 8));
        let batch_b = corrupt(msgs(&mut pool_b, 8));
        let ca = mk(Discipline::Conventional).process_batch(&batch_a);
        let cb = mk(Discipline::Ldlp(BatchPolicy::DCacheFit)).process_batch(&batch_b);
        let rejected = |c: &[Completion]| -> Vec<u64> {
            c.iter().filter(|x| x.rejected).map(|x| x.msg_id).collect()
        };
        assert_eq!(rejected(&ca), vec![2, 5]);
        assert_eq!(rejected(&cb), vec![2, 5]);
    }

    #[test]
    fn duplex_skips_replies_for_rejected_messages() {
        let (m, rx) = paper_stack(MachineConfig::synthetic_benchmark(), 21);
        let (_, tx) = crate::synth::stack_with(
            MachineConfig::synthetic_benchmark(),
            99,
            3,
            4 * 1024,
            256,
        );
        let mut e = StackEngine::new(m, rx, Discipline::Ldlp(BatchPolicy::DCacheFit))
            .with_tx(tx, 58)
            .with_verify_layer(0);
        let mut pool = MessagePool::new(16, 1536, 2);
        let mut batch = msgs(&mut pool, 4);
        batch[0].corrupted = true;
        let c = e.process_batch(&batch);
        assert!(c[0].rejected);
        // The rejected message finished (at verification) before the
        // clean ones, whose replies still had to descend the tx stack.
        assert!(c[0].done_cycles < c[1].done_cycles);
        assert_eq!(c.last().unwrap().done_cycles, e.machine().cycles());
    }

    #[test]
    fn empty_batch_is_a_noop() {
        let mut e = engine(Discipline::Ldlp(BatchPolicy::DCacheFit), 1);
        let before = e.machine().cycles();
        assert!(e.process_batch(&[]).is_empty());
        assert_eq!(e.machine().cycles(), before);
    }

    #[test]
    fn ldlp_sink_records_one_span_per_layer_pass() {
        let mut e = engine(Discipline::Ldlp(BatchPolicy::DCacheFit), 11);
        e.set_sink(obs::Sink::record(true), "ldlp/");
        let mut pool = MessagePool::new(16, 1536, 5);
        let batch = msgs(&mut pool, 14);
        let completions = e.process_batch(&batch);
        let rec = e.take_sink().into_recorder().expect("sink was on");
        // One blocked pass per layer, one span each.
        assert_eq!(rec.events().len(), 5);
        let total_im: u64 = rec.events().iter().map(|ev| ev.imisses).sum();
        let total_dm: u64 = rec.events().iter().map(|ev| ev.dmisses).sum();
        let comp_im: u64 = completions.iter().map(|c| c.imisses).sum();
        let comp_dm: u64 = completions.iter().map(|c| c.dmisses).sum();
        assert_eq!(total_im, comp_im, "spans charge exactly the misses attributed");
        assert_eq!(total_dm, comp_dm);
        for ev in rec.events() {
            assert_eq!(ev.batch, 14, "every pass covered the whole batch");
            assert!(ev.dur > 0);
            assert!(rec.name(ev.name).starts_with("ldlp/rx:"));
        }
        // Spans tile the run: contiguous, in cycle order.
        for w in rec.events().windows(2) {
            assert_eq!(w[0].start + w[0].dur, w[1].start);
        }
    }

    #[test]
    fn conventional_sink_records_per_message_spans() {
        let mut e = engine(Discipline::Conventional, 11);
        e.set_sink(obs::Sink::record(false), "conv/");
        let mut pool = MessagePool::new(16, 1536, 5);
        let c = e.process_batch(&msgs(&mut pool, 3));
        assert_eq!(c.len(), 3);
        let rec = e.take_sink().into_recorder().expect("sink was on");
        assert!(rec.events().is_empty(), "metrics-only mode keeps no raw events");
        // 3 messages x 5 layers, folded per layer name.
        let accs: Vec<_> = rec.iter_spans().collect();
        assert_eq!(accs.len(), 5);
        for (name, acc) in accs {
            assert!(name.starts_with("conv/rx:"));
            assert_eq!(acc.spans, 3, "one span per message per layer");
            assert_eq!(acc.messages, 3);
        }
    }

    #[test]
    fn sink_does_not_change_simulation_results() {
        let run = |sink: Option<obs::Sink>| {
            let mut e = engine(Discipline::Ldlp(BatchPolicy::DCacheFit), 13);
            if let Some(s) = sink {
                e.set_sink(s, "ldlp/");
            }
            let mut pool = MessagePool::new(16, 1536, 9);
            let c = e.process_batch(&msgs(&mut pool, 14));
            (c, e.machine().cycles())
        };
        let (plain, cycles_plain) = run(None);
        let (observed, cycles_obs) = run(Some(obs::Sink::record(true)));
        assert_eq!(plain, observed, "observation must not perturb the run");
        assert_eq!(cycles_plain, cycles_obs);
    }
}
