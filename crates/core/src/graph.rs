//! A functional LDLP runtime: real messages through a real layer graph.
//!
//! Section 3.2 describes how to retrofit LDLP onto working stacks:
//!
//! * Where layers are tasks with queues between them, "implementing LDLP
//!   is a simple matter of task scheduling. Higher layers are given
//!   higher priorities, but all layers run to completion — that is, they
//!   process all the messages in their input queue. The lowest layer,
//!   however, is made to yield the CPU after processing as many messages
//!   as will fit in the data cache."
//! * Where layers call each other directly, "the entry point to each
//!   layer is modified to append the message to a queue ... and then
//!   return. When a layer is invoked, it pulls messages off its queue ...
//!   Then, it invokes all layers that can be directly above it (there can
//!   be more than one)."
//!
//! [`LayerGraph`] implements both schedules over the same layer code:
//! [`Schedule::Conventional`] propagates each message to the top with
//! direct calls; [`Schedule::Ldlp`] queues at every boundary and drains
//! layers in priority order, with a batch cap at the entry layer. The
//! logical results are identical by construction — only the interleaving
//! (and therefore locality) differs — and tests assert exactly that.

use std::collections::VecDeque;

/// Where a layer sends each processed message.
#[derive(Debug)]
pub struct Emitter<M> {
    /// `(output port, message)` pairs routed to the layers above.
    up: Vec<(usize, M)>,
    /// Messages consumed here (delivered to the application at this node).
    delivered: Vec<M>,
}

impl<M> Default for Emitter<M> {
    fn default() -> Self {
        Emitter {
            up: Vec::new(),
            delivered: Vec::new(),
        }
    }
}

impl<M> Emitter<M> {
    /// Routes a message to the layer connected to `port` above this one.
    pub fn up(&mut self, port: usize, msg: M) {
        self.up.push((port, msg));
    }

    /// Delivers a message to this node's application (a sink).
    pub fn deliver(&mut self, msg: M) {
        self.delivered.push(msg);
    }
}

/// A protocol layer processing real messages.
pub trait GraphLayer<M> {
    /// Layer name, for reports.
    fn name(&self) -> &str;

    /// Processes one message, emitting any results upward (possibly to
    /// several different upper layers — demultiplexing) or delivering
    /// them here. Dropped messages are simply not emitted.
    fn process(&mut self, msg: M, out: &mut Emitter<M>);
}

/// How the graph schedules layer executions.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Schedule {
    /// Each injected message is carried to the top immediately
    /// (procedure-call semantics, poor instruction locality).
    Conventional,
    /// Messages queue at every layer boundary; layers drain whole queues
    /// with upper layers at higher priority; the entry layer yields after
    /// `entry_batch` messages.
    Ldlp {
        /// Entry-layer yield threshold ("as many messages as will fit in
        /// the data cache").
        entry_batch: usize,
    },
}

/// Handle to a layer in the graph.
pub type NodeId = usize;

struct Node<M> {
    layer: Box<dyn GraphLayer<M>>,
    /// Upward edges: `ports[i]` is the node that receives `Emitter::up(i, ..)`.
    ports: Vec<NodeId>,
    queue: VecDeque<M>,
    /// Topological height; higher runs at higher priority under LDLP.
    height: u32,
}

/// One entry of the execution log: which layer processed which injection-
/// order message index. Tests use this to verify blocked vs. interleaved
/// execution orders.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Activation {
    pub node: NodeId,
    /// The layer's name is stable; indexes avoid string churn.
    pub seq: u64,
}

/// Per-run counters.
#[derive(Debug, Clone, Default)]
pub struct GraphStats {
    /// Messages processed per node.
    pub processed: Vec<u64>,
    /// Entry batches formed (LDLP) or injections (conventional).
    pub batches: u64,
    /// Largest entry batch observed.
    pub max_batch: usize,
    /// Deepest any queue got.
    pub max_queue_depth: usize,
}

/// A stack of layers with explicit upward wiring.
pub struct LayerGraph<M> {
    nodes: Vec<Node<M>>,
    entry: Option<NodeId>,
    schedule: Schedule,
    delivered: Vec<(NodeId, M)>,
    log: Vec<Activation>,
    stats: GraphStats,
    seq: u64,
}

impl<M> LayerGraph<M> {
    /// An empty graph with the given schedule.
    pub fn new(schedule: Schedule) -> Self {
        LayerGraph {
            nodes: Vec::new(),
            entry: None,
            schedule,
            delivered: Vec::new(),
            log: Vec::new(),
            stats: GraphStats::default(),
            seq: 0,
        }
    }

    /// Adds a layer; `ports` wires its upward outputs to existing nodes
    /// (which must already be added — build top-down).
    pub fn add_layer(&mut self, layer: Box<dyn GraphLayer<M>>, ports: Vec<NodeId>) -> NodeId {
        for &p in &ports {
            assert!(p < self.nodes.len(), "upward port wired to unknown node");
        }
        let height = ports
            .iter()
            .map(|&p| self.nodes[p].height + 1)
            .max()
            .unwrap_or(0);
        // Heights grow downward from the top; invert below when
        // prioritizing. Store distance-from-top so priority = smaller.
        self.nodes.push(Node {
            layer,
            ports,
            queue: VecDeque::new(),
            height,
        });
        self.stats.processed.push(0);
        self.nodes.len() - 1
    }

    /// Marks the entry (lowest) layer where messages are injected.
    pub fn set_entry(&mut self, node: NodeId) {
        assert!(node < self.nodes.len());
        self.entry = Some(node);
    }

    /// The schedule in force.
    pub fn schedule(&self) -> Schedule {
        self.schedule
    }

    /// Injects a message at the entry layer. Under the conventional
    /// schedule it is processed to completion immediately; under LDLP it
    /// waits in the entry queue until [`LayerGraph::run`].
    pub fn inject(&mut self, msg: M) {
        // analyze::allow(panic-free-library, reason = "documented precondition: set_entry must be called before inject; misuse is a caller bug, not a data-dependent path")
        let entry = self.entry.expect("entry layer set");
        match self.schedule {
            Schedule::Conventional => {
                self.stats.batches += 1;
                self.stats.max_batch = self.stats.max_batch.max(1);
                self.process_to_completion(entry, msg);
            }
            Schedule::Ldlp { .. } => {
                self.nodes[entry].queue.push_back(msg);
                let depth = self.nodes[entry].queue.len();
                self.stats.max_queue_depth = self.stats.max_queue_depth.max(depth);
            }
        }
    }

    /// Runs queued work to quiescence (no-op under the conventional
    /// schedule, which never queues). Returns messages delivered during
    /// this run.
    pub fn run(&mut self) -> Vec<(NodeId, M)> {
        if let Schedule::Ldlp { entry_batch } = self.schedule {
            // analyze::allow(panic-free-library, reason = "documented precondition: set_entry must be called before run; misuse is a caller bug, not a data-dependent path")
            let entry = self.entry.expect("entry layer set");
            while !self.nodes[entry].queue.is_empty() {
                // The entry layer yields after a batch; everything above
                // runs to completion at higher priority.
                let batch = self.nodes[entry].queue.len().min(entry_batch.max(1));
                self.stats.batches += 1;
                self.stats.max_batch = self.stats.max_batch.max(batch);
                for _ in 0..batch {
                    // analyze::allow(panic-free-library, reason = "batch = min(queue.len(), cap), so the queue holds at least `batch` messages here")
                    let msg = self.nodes[entry].queue.pop_front().expect("len checked");
                    self.process_one_queued(entry, msg);
                }
                self.drain_upper_layers(entry);
            }
        }
        std::mem::take(&mut self.delivered)
    }

    /// Conventional path: carry one message as far up as it goes, depth
    /// first, with plain calls.
    fn process_to_completion(&mut self, node: NodeId, msg: M) {
        let mut out = Emitter::default();
        self.activate(node, msg, &mut out);
        for m in out.delivered {
            self.delivered.push((node, m));
        }
        for (port, m) in out.up {
            let next = self.nodes[node].ports[port];
            self.process_to_completion(next, m);
        }
    }

    /// LDLP path: process one message at `node`, queueing outputs on the
    /// upper layers instead of calling them.
    fn process_one_queued(&mut self, node: NodeId, msg: M) {
        let mut out = Emitter::default();
        self.activate(node, msg, &mut out);
        for m in out.delivered {
            self.delivered.push((node, m));
        }
        for (port, m) in out.up {
            let next = self.nodes[node].ports[port];
            self.nodes[next].queue.push_back(m);
            let depth = self.nodes[next].queue.len();
            self.stats.max_queue_depth = self.stats.max_queue_depth.max(depth);
        }
    }

    /// Drains every layer above `entry` in priority order (topmost
    /// first), re-scanning until quiet: a drained layer refills the
    /// queues of the layers above it.
    fn drain_upper_layers(&mut self, entry: NodeId) {
        loop {
            // Priority = smallest height (closest to the top).
            let next = self
                .nodes
                .iter()
                .enumerate()
                .filter(|(i, n)| *i != entry && !n.queue.is_empty())
                .min_by_key(|(_, n)| n.height)
                .map(|(i, _)| i);
            let Some(node) = next else { break };
            // Run to completion: the whole queue in one activation burst.
            while let Some(msg) = self.nodes[node].queue.pop_front() {
                self.process_one_queued(node, msg);
            }
        }
    }

    fn activate(&mut self, node: NodeId, msg: M, out: &mut Emitter<M>) {
        self.nodes[node].layer.process(msg, out);
        self.stats.processed[node] += 1;
        self.log.push(Activation {
            node,
            seq: self.seq,
        });
        self.seq += 1;
    }

    /// The execution log (ordered layer activations).
    pub fn log(&self) -> &[Activation] {
        &self.log
    }

    /// Per-run counters.
    pub fn stats(&self) -> &GraphStats {
        &self.stats
    }

    /// A layer's name.
    pub fn layer_name(&self, node: NodeId) -> &str {
        self.nodes[node].layer.name()
    }

    /// Messages waiting at a node (0 under the conventional schedule).
    pub fn queue_depth(&self, node: NodeId) -> usize {
        self.nodes[node].queue.len()
    }
}

/// Counts the "runs" of consecutive activations of the same node in a
/// log — the paper's locality measure: blocked execution has few long
/// runs, interleaved execution has many short ones.
pub fn activation_runs(log: &[Activation]) -> usize {
    let mut runs = 0;
    let mut last: Option<NodeId> = None;
    for a in log {
        if last != Some(a.node) {
            runs += 1;
            last = Some(a.node);
        }
    }
    runs
}

#[cfg(test)]
mod tests {
    use super::*;

    /// A layer that tags messages with its name and passes them up port 0
    /// (or delivers them if it has no upward wiring).
    struct Tag {
        name: String,
        is_sink: bool,
    }

    impl GraphLayer<Vec<&'static str>> for Tag {
        fn name(&self) -> &str {
            &self.name
        }
        fn process(&mut self, mut msg: Vec<&'static str>, out: &mut Emitter<Vec<&'static str>>) {
            msg.push(Box::leak(self.name.clone().into_boxed_str()));
            if self.is_sink {
                out.deliver(msg);
            } else {
                out.up(0, msg);
            }
        }
    }

    /// Builds L1 -> L2 -> L3 (entry L1, sink L3).
    fn pipeline(schedule: Schedule) -> (LayerGraph<Vec<&'static str>>, [NodeId; 3]) {
        let mut g = LayerGraph::new(schedule);
        let l3 = g.add_layer(
            Box::new(Tag {
                name: "L3".into(),
                is_sink: true,
            }),
            vec![],
        );
        let l2 = g.add_layer(
            Box::new(Tag {
                name: "L2".into(),
                is_sink: false,
            }),
            vec![l3],
        );
        let l1 = g.add_layer(
            Box::new(Tag {
                name: "L1".into(),
                is_sink: false,
            }),
            vec![l2],
        );
        g.set_entry(l1);
        (g, [l1, l2, l3])
    }

    #[test]
    fn both_schedules_deliver_identical_results() {
        let mut conv = pipeline(Schedule::Conventional).0;
        let mut ldlp = pipeline(Schedule::Ldlp { entry_batch: 4 }).0;
        for i in 0..10 {
            conv.inject(vec![if i % 2 == 0 { "even" } else { "odd" }]);
            ldlp.inject(vec![if i % 2 == 0 { "even" } else { "odd" }]);
        }
        let a = conv.run();
        let b = ldlp.run();
        // Conventional delivered during inject; collect its buffer too.
        let mut a: Vec<_> = a.into_iter().map(|(_, m)| m).collect();
        let mut b: Vec<_> = b.into_iter().map(|(_, m)| m).collect();
        a.sort();
        b.sort();
        assert_eq!(a.len(), 10);
        assert_eq!(a, b, "same messages through the same layers");
        for m in &a {
            assert_eq!(&m[1..], &["L1", "L2", "L3"], "layer order preserved");
        }
    }

    #[test]
    fn conventional_interleaves_ldlp_blocks() {
        let n = 12;
        let mut conv = pipeline(Schedule::Conventional).0;
        for _ in 0..n {
            conv.inject(vec![]);
        }
        conv.run();
        // Conventional: L1 L2 L3 per message = 3 runs per message.
        assert_eq!(activation_runs(conv.log()), 3 * n);

        let mut ldlp = pipeline(Schedule::Ldlp { entry_batch: 100 }).0;
        for _ in 0..n {
            ldlp.inject(vec![]);
        }
        ldlp.run();
        // Blocked: one run per layer for the whole batch.
        assert_eq!(activation_runs(ldlp.log()), 3);
        assert_eq!(ldlp.stats().max_batch, n);
    }

    #[test]
    fn entry_batch_cap_causes_yielding() {
        let mut g = pipeline(Schedule::Ldlp { entry_batch: 5 }).0;
        for _ in 0..12 {
            g.inject(vec![]);
        }
        g.run();
        // Batches of 5, 5, 2: three full passes = 9 runs.
        assert_eq!(g.stats().batches, 3);
        assert_eq!(g.stats().max_batch, 5);
        assert_eq!(activation_runs(g.log()), 9);
    }

    #[test]
    fn demultiplexing_to_multiple_upper_layers() {
        /// Routes odd-length messages to port 0, others to port 1.
        struct Demux;
        impl GraphLayer<Vec<&'static str>> for Demux {
            fn name(&self) -> &str {
                "demux"
            }
            fn process(&mut self, msg: Vec<&'static str>, out: &mut Emitter<Vec<&'static str>>) {
                let port = msg.len() % 2;
                out.up(port, msg);
            }
        }
        let mut g = LayerGraph::new(Schedule::Ldlp { entry_batch: 16 });
        let udp = g.add_layer(
            Box::new(Tag {
                name: "udp".into(),
                is_sink: true,
            }),
            vec![],
        );
        let tcp = g.add_layer(
            Box::new(Tag {
                name: "tcp".into(),
                is_sink: true,
            }),
            vec![],
        );
        let ip = g.add_layer(Box::new(Demux), vec![udp, tcp]);
        g.set_entry(ip);

        g.inject(vec![]); // even length -> port 0 -> udp
        g.inject(vec!["x"]); // odd -> port 1 -> tcp
        g.inject(vec![]);
        let delivered = g.run();
        let to_udp = delivered.iter().filter(|(n, _)| *n == udp).count();
        let to_tcp = delivered.iter().filter(|(n, _)| *n == tcp).count();
        assert_eq!((to_udp, to_tcp), (2, 1));
        // Blocked even across the fork: ip ip ip, then each sink drained.
        assert!(activation_runs(g.log()) <= 3);
    }

    #[test]
    fn dropped_messages_vanish_quietly() {
        struct DropOdd;
        impl GraphLayer<u32> for DropOdd {
            fn name(&self) -> &str {
                "filter"
            }
            fn process(&mut self, msg: u32, out: &mut Emitter<u32>) {
                if msg.is_multiple_of(2) {
                    out.up(0, msg);
                }
            }
        }
        struct Sink;
        impl GraphLayer<u32> for Sink {
            fn name(&self) -> &str {
                "sink"
            }
            fn process(&mut self, msg: u32, out: &mut Emitter<u32>) {
                out.deliver(msg);
            }
        }
        let mut g = LayerGraph::new(Schedule::Ldlp { entry_batch: 8 });
        let sink = g.add_layer(Box::new(Sink), vec![]);
        let filter = g.add_layer(Box::new(DropOdd), vec![sink]);
        g.set_entry(filter);
        for i in 0..10 {
            g.inject(i);
        }
        let out = g.run();
        assert_eq!(out.len(), 5);
        assert!(out.iter().all(|(_, m)| m % 2 == 0));
        assert_eq!(g.stats().processed[filter], 10);
        assert_eq!(g.stats().processed[sink], 5);
    }

    #[test]
    fn run_is_quiescent_and_repeatable() {
        let (mut g, [l1, l2, l3]) = pipeline(Schedule::Ldlp { entry_batch: 4 });
        g.inject(vec![]);
        assert_eq!(g.run().len(), 1);
        assert_eq!(g.run().len(), 0, "second run has nothing to do");
        assert_eq!(g.queue_depth(l1), 0);
        assert_eq!(g.queue_depth(l2), 0);
        assert_eq!(g.queue_depth(l3), 0);
    }
}
