//! Analytical blocking-factor estimation (Section 3.2).
//!
//! "The optimal blocking factor is hard to estimate. Lam \[22\] presents
//! algorithms that can give a fairly accurate estimate." This module
//! provides a Lam-style capacity model: predicted cache misses per message
//! as a function of the blocking factor `B`, and the `B` minimizing it.
//!
//! The model (per message, steady state, ignoring conflict misses):
//!
//! * Instruction misses: if the stack's code exceeds the I-cache, every
//!   layer is refetched once per batch, costing `code_lines / B` misses
//!   per message. If it fits, code misses are ~0 in steady state.
//! * Data misses: each message's lines are loaded once while the batch
//!   data fits in the D-cache; beyond `B_fit = (D - layer_data) / msg`,
//!   messages evict each other between layers and each of the `L` passes
//!   reloads them.

/// Stack and machine parameters for the capacity model.
#[derive(Debug, Clone, Copy)]
pub struct BlockingModel {
    /// Number of layers.
    pub layers: u64,
    /// Total code working set of the stack, in bytes.
    pub code_bytes: u64,
    /// Largest per-layer data working set, in bytes.
    pub layer_data_bytes: u64,
    /// Message size in bytes.
    pub msg_bytes: u64,
    /// Instruction-cache capacity in bytes.
    pub icache_bytes: u64,
    /// Data-cache capacity in bytes.
    pub dcache_bytes: u64,
    /// Cache line size in bytes.
    pub line_bytes: u64,
}

impl BlockingModel {
    /// Predicted cache misses per message at blocking factor `b >= 1`.
    pub fn misses_per_message(&self, b: u64) -> f64 {
        let b = b.max(1) as f64;
        let code_lines = (self.code_bytes as f64) / self.line_bytes as f64;
        let msg_lines = (self.msg_bytes as f64) / self.line_bytes as f64;

        let imisses = if self.code_bytes <= self.icache_bytes {
            0.0
        } else {
            code_lines / b
        };

        // A batch stays D-cache resident while its messages fit alongside
        // every layer's data (all layers' data persists across batches in
        // steady state when nothing evicts it).
        let all_layer_data = self.layers * self.layer_data_bytes;
        let fit = (self
            .dcache_bytes
            .saturating_sub(all_layer_data.min(self.dcache_bytes)) as f64)
            / self.msg_bytes.max(1) as f64;
        let dmisses = if b <= fit {
            // Batch resident: each message's lines load once, total.
            msg_lines
        } else {
            // Batch overflows the D-cache: every layer pass reloads the
            // messages, and the layer data thrashes too.
            msg_lines * self.layers as f64
                + (self.layer_data_bytes as f64 / self.line_bytes as f64)
        };
        imisses + dmisses
    }

    /// The blocking factor in `1..=max_b` minimizing predicted misses,
    /// preferring the smallest minimizer (less batching delay).
    pub fn optimal_blocking_factor(&self, max_b: u64) -> u64 {
        (1..=max_b.max(1))
            .min_by(|&a, &b| {
                self.misses_per_message(a)
                    .total_cmp(&self.misses_per_message(b))
            })
            // analyze::allow(panic-free-library, reason = "1..=max(1) is never empty, so min_by always yields a value")
            .expect("non-empty range")
    }

    /// The largest batch whose data fits the D-cache alongside one
    /// layer's data (the paper's special-case batch cap).
    pub fn dcache_fit(&self) -> u64 {
        (self.dcache_bytes.saturating_sub(self.layer_data_bytes) / self.msg_bytes.max(1)).max(1)
    }

    /// The paper's synthetic benchmark parameters.
    pub fn paper_synthetic() -> Self {
        BlockingModel {
            layers: 5,
            code_bytes: 5 * 6 * 1024,
            layer_data_bytes: 256,
            msg_bytes: 552,
            icache_bytes: 8 * 1024,
            dcache_bytes: 8 * 1024,
            line_bytes: 32,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn misses_fall_with_blocking_until_dcache_overflows() {
        let m = BlockingModel::paper_synthetic();
        assert_eq!(m.dcache_fit(), 14);
        let best = m.optimal_blocking_factor(100);
        // Monotone decrease up to the optimum...
        for b in 1..best {
            assert!(
                m.misses_per_message(b) > m.misses_per_message(b + 1),
                "misses should fall from B={b} to B={}",
                b + 1
            );
        }
        // ...then a jump when the batch stops fitting the D-cache.
        assert!(m.misses_per_message(best + 1) > m.misses_per_message(best));
    }

    #[test]
    fn optimal_factor_is_near_the_dcache_fit_for_the_paper_stack() {
        // The policy cap (one layer's data resident) slightly exceeds the
        // capacity-model optimum (all layers' data resident); both land
        // in the low teens for the paper's geometry.
        let m = BlockingModel::paper_synthetic();
        let best = m.optimal_blocking_factor(100);
        assert!((10..=14).contains(&best), "optimum {best}");
        assert!(best <= m.dcache_fit());
    }

    #[test]
    fn small_stacks_do_not_need_blocking() {
        // A stack whose code fits the I-cache: B=1 is optimal (blocking
        // only adds message D-cache pressure).
        let m = BlockingModel {
            code_bytes: 4 * 1024,
            ..BlockingModel::paper_synthetic()
        };
        assert_eq!(m.optimal_blocking_factor(100), 1);
    }

    #[test]
    fn conventional_misses_match_figure5_scale() {
        // At B=1 the model predicts ~960 instruction misses + ~25 data
        // lines, matching Figure 5's conventional curve near 1000.
        let m = BlockingModel::paper_synthetic();
        let misses = m.misses_per_message(1);
        assert!((950.0..1050.0).contains(&misses), "got {misses}");
        // At the optimal factor, misses drop well below a third.
        let best = m.misses_per_message(m.optimal_blocking_factor(100));
        assert!(best < misses / 3.0, "blocked {best} vs conventional {misses}");
    }

    #[test]
    fn degenerate_inputs_do_not_panic() {
        let m = BlockingModel {
            msg_bytes: 0,
            ..BlockingModel::paper_synthetic()
        };
        let _ = m.dcache_fit();
        let m = BlockingModel {
            layer_data_bytes: 1 << 30,
            ..BlockingModel::paper_synthetic()
        };
        assert!(m.misses_per_message(1).is_finite());
    }
}
