//! Cost instrumentation for the functional layer graph.
//!
//! [`CostedLayer`] wraps any [`GraphLayer`] with a code/data footprint and
//! charges a shared [`Machine`] on every activation — so the *functional*
//! runtime of [`crate::graph`] produces the same cache-level evidence as
//! the synthetic engine: run the identical packets under both schedules
//! and read the miss counters off the machine.

use crate::graph::{Emitter, GraphLayer};
use crate::layer::paper;
use cachesim::{Machine, Region};
use obs::{NameId, Recorder, SpanEvent};
use std::cell::RefCell;
use std::rc::Rc;

/// A machine shared by every instrumented layer of one graph.
pub type SharedMachine = Rc<RefCell<Machine>>;

/// A recorder shared by every instrumented layer of one graph (the
/// graph runtime is single-threaded, like the machine it meters).
pub type SharedRecorder = Rc<RefCell<Recorder>>;

/// Wraps a functional layer with a memory-system footprint.
pub struct CostedLayer<L> {
    inner: L,
    machine: SharedMachine,
    /// Code fetched on every activation.
    code: Region,
    /// Layer data read on every activation.
    data: Region,
    /// Instruction cycles charged per activation (plus the data loop).
    base_cycles: u64,
    /// Data-loop cost per message byte.
    loop_cpb: f64,
    /// Optional observability: one cycle-stamped span per activation,
    /// with the name interned at attach time so the hot path is
    /// lookup-free. `None` costs one branch per activation.
    obs: Option<(SharedRecorder, NameId)>,
}

impl<L> CostedLayer<L> {
    /// Wraps `inner` with the given footprint against `machine`.
    pub fn new(inner: L, machine: SharedMachine, code: Region, data: Region) -> Self {
        CostedLayer {
            inner,
            machine,
            code,
            data,
            base_cycles: paper::BASE_CYCLES,
            loop_cpb: paper::LOOP_CPB,
            obs: None,
        }
    }

    /// Overrides the cycle model.
    pub fn with_cycles(mut self, base_cycles: u64, loop_cpb: f64) -> Self {
        self.base_cycles = base_cycles;
        self.loop_cpb = loop_cpb;
        self
    }
}

impl<L> CostedLayer<L> {
    /// Attaches a shared recorder: every activation records a span named
    /// `graph:<name>` stamped in the shared machine's cycles. (`name` is
    /// passed explicitly rather than read from the layer because the
    /// message type the layer handles is not known here.)
    pub fn with_recorder(mut self, rec: SharedRecorder, name: &str) -> Self {
        let id = rec.borrow_mut().intern(&format!("graph:{name}"));
        self.obs = Some((rec, id));
        self
    }
}

/// Messages that can report their size (for the data-loop cost) and an
/// optional buffer address (for data-cache modelling).
pub trait MeteredMessage {
    /// Payload length in bytes.
    fn len(&self) -> usize;
    /// Whether the message is empty.
    fn is_empty(&self) -> bool {
        self.len() == 0
    }
    /// The simulated address of the message contents, if it has one.
    /// Defaults to a fixed scratch buffer.
    fn buf_addr(&self) -> u64 {
        0x4000_0000
    }
}

impl MeteredMessage for Vec<u8> {
    fn len(&self) -> usize {
        Vec::len(self)
    }
}

impl<M, L> GraphLayer<M> for CostedLayer<L>
where
    M: MeteredMessage,
    L: GraphLayer<M>,
{
    fn name(&self) -> &str {
        self.inner.name()
    }

    fn process(&mut self, msg: M, out: &mut Emitter<M>) {
        {
            let mut m = self.machine.borrow_mut();
            let pre = self.obs.as_ref().map(|_| (m.cycles(), m.stats()));
            m.fetch_code(self.code);
            m.read_data(self.data);
            if !msg.is_empty() {
                m.read_data(Region::new(msg.buf_addr(), msg.len() as u64));
            }
            let cycles = self.base_cycles + (self.loop_cpb * msg.len() as f64).round() as u64;
            m.execute(cycles);
            if let (Some((rec, name)), Some((start, s0))) = (&self.obs, pre) {
                let s1 = m.stats();
                rec.borrow_mut().span(SpanEvent {
                    name: *name,
                    start,
                    dur: m.cycles() - start,
                    batch: 1,
                    aux: 0,
                    imisses: s1.icache.misses - s0.icache.misses,
                    dmisses: s1.dcache.misses - s0.dcache.misses,
                });
            }
        }
        self.inner.process(msg, out);
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::graph::{LayerGraph, Schedule};
    use cachesim::MachineConfig;

    /// A pass-through layer (port 0) that sinks at the top.
    struct Pass {
        name: &'static str,
        sink: bool,
    }

    impl GraphLayer<Vec<u8>> for Pass {
        fn name(&self) -> &str {
            self.name
        }
        fn process(&mut self, msg: Vec<u8>, out: &mut Emitter<Vec<u8>>) {
            if self.sink {
                out.deliver(msg);
            } else {
                out.up(0, msg);
            }
        }
    }

    /// Builds a 5-layer instrumented pipeline over a fresh machine.
    fn build(schedule: Schedule) -> (LayerGraph<Vec<u8>>, SharedMachine) {
        let machine: SharedMachine = Rc::new(RefCell::new(Machine::new(
            MachineConfig::synthetic_benchmark(),
        )));
        let mut alloc = cachesim::AddressAllocator::new(0x10_0000, 32);
        let mut data_alloc = cachesim::AddressAllocator::new(0x800_0000, 32);
        let mut g = LayerGraph::new(schedule);
        let mut above = None;
        // Build top-down: L5 (sink) first.
        for i in (0..5).rev() {
            let code = alloc.alloc(6 * 1024);
            let data = data_alloc.alloc(256);
            let layer = CostedLayer::new(
                Pass {
                    name: if i == 4 { "sink" } else { "mid" },
                    sink: i == 4,
                },
                machine.clone(),
                code,
                data,
            );
            let ports = above.map(|n| vec![n]).unwrap_or_default();
            above = Some(g.add_layer(Box::new(layer), ports));
        }
        g.set_entry(above.expect("five layers added"));
        (g, machine)
    }

    #[test]
    fn functional_graph_reproduces_the_locality_result() {
        let n = 14;
        let run = |schedule| {
            let (mut g, machine) = build(schedule);
            for i in 0..n {
                g.inject(vec![0u8; 552 - (i % 3)]); // slight size variety
            }
            let delivered = g.run();
            assert_eq!(delivered.len(), n);
            let stats = machine.borrow().stats();
            stats.icache.misses
        };
        let conv = run(Schedule::Conventional);
        let ldlp = run(Schedule::Ldlp { entry_batch: 14 });
        // The functional runtime shows the same effect the synthetic
        // engine measures: blocked scheduling slashes I-misses.
        assert!(
            ldlp * 3 < conv,
            "LDLP {ldlp} I-misses should be far below conventional {conv}"
        );
    }

    #[test]
    fn instrumentation_charges_cycles() {
        let (mut g, machine) = build(Schedule::Conventional);
        g.inject(vec![0u8; 552]);
        let stats = machine.borrow().stats();
        // 5 layers x 1652 instruction cycles for a 552-byte message.
        assert_eq!(stats.instr_cycles, 5 * 1652);
        assert!(stats.stall_cycles > 0);
    }

    #[test]
    fn costed_layer_records_activation_spans() {
        let machine: SharedMachine = Rc::new(RefCell::new(Machine::new(
            MachineConfig::synthetic_benchmark(),
        )));
        let rec: SharedRecorder = Rc::new(RefCell::new(Recorder::new(true)));
        let mut alloc = cachesim::AddressAllocator::new(0x10_0000, 32);
        let mut g = LayerGraph::new(Schedule::Conventional);
        let sink = CostedLayer::new(
            Pass {
                name: "sink",
                sink: true,
            },
            machine.clone(),
            alloc.alloc(6 * 1024),
            alloc.alloc(256),
        )
        .with_recorder(rec.clone(), "sink");
        let top = g.add_layer(Box::new(sink), vec![]);
        g.set_entry(top);
        g.inject(vec![0u8; 552]);
        g.inject(vec![0u8; 552]);
        let delivered = g.run();
        assert_eq!(delivered.len(), 2);
        let rec = rec.borrow();
        assert_eq!(rec.events().len(), 2, "one span per activation");
        for ev in rec.events() {
            assert_eq!(rec.name(ev.name), "graph:sink");
            assert!(ev.dur > 0, "activations cost cycles");
            assert_eq!(ev.batch, 1);
        }
        assert!(
            rec.events().iter().any(|ev| ev.imisses > 0),
            "cold code fetches show up as I-misses"
        );
    }

    #[test]
    fn metered_message_defaults() {
        let v = vec![1u8, 2, 3];
        assert_eq!(MeteredMessage::len(&v), 3);
        assert!(!MeteredMessage::is_empty(&v));
        assert_eq!(v.buf_addr(), 0x4000_0000);
    }
}
