//! # ldlp — Locality-Driven Layer Processing
//!
//! The primary contribution of Blackwell, *Speeding up Protocols for Small
//! Messages* (SIGCOMM '96), as a reusable library.
//!
//! Protocol processing applies every layer of a stack to every message —
//! structurally a matrix computation (paper Figure 3). A **conventional**
//! stack walks one message through all layers before touching the next;
//! when the stack's code working set exceeds the primary instruction
//! cache, every message reloads every layer. **LDLP** *blocks* the
//! computation the way blocked matrix multiplication does: take all
//! currently-available messages, run layer 1 over all of them, then layer
//! 2, and so on. Each layer's code is loaded once per *batch* instead of
//! once per *message*; under light load batches degenerate to single
//! messages and nothing is lost.
//!
//! The crate provides:
//!
//! * [`layer`] — the [`layer::SimLayer`] abstraction: a protocol layer
//!   described by its code footprint, per-layer data, and instruction
//!   cost, plus [`layer::SyntheticLayer`], the paper's synthetic layer
//!   (6 KB code, 256 B data, 1652 cycles for a 552-byte message).
//! * [`engine`] — [`engine::StackEngine`]: executes batches under one of
//!   the three disciplines of Figure 2 (Conventional, ILP, LDLP/blocked)
//!   against a `cachesim::Machine`, attributing cache misses and
//!   completion times to individual messages.
//! * [`policy`] — batch-sizing policies (Section 3.2): all-available,
//!   fit-the-data-cache, or a fixed block size.
//! * [`blocking`] — a Lam-style analytical estimate of the optimal
//!   blocking factor and the predicted misses-per-message curve.
//! * [`synth`] — constructors for the paper's five-layer synthetic stack
//!   with seeded random placement, and a message-buffer pool.
//!
//! ## Quick example
//!
//! ```
//! use ldlp::engine::{Discipline, StackEngine};
//! use ldlp::policy::BatchPolicy;
//! use ldlp::synth::{paper_stack, MessagePool};
//! use cachesim::MachineConfig;
//!
//! // The paper's synthetic benchmark machine and 5-layer stack, seed 1.
//! let (machine, layers) = paper_stack(MachineConfig::synthetic_benchmark(), 1);
//! let mut pool = MessagePool::new(64, 1536, 1);
//! let mut engine = StackEngine::new(machine, layers, Discipline::Ldlp(BatchPolicy::DCacheFit));
//!
//! // A batch of 8 waiting 552-byte messages.
//! let msgs: Vec<_> = (0..8).map(|i| pool.make_message(i, 552)).collect();
//! let completions = engine.process_batch(&msgs);
//! assert_eq!(completions.len(), 8);
//! // Blocked processing loads each layer's 6 KB of code once per batch,
//! // so per-message instruction misses are far below the ~960 a
//! // conventional schedule pays.
//! let avg_imiss: f64 = completions.iter().map(|c| c.imisses as f64).sum::<f64>() / 8.0;
//! assert!(avg_imiss < 400.0);
//! ```

pub mod blocking;
pub mod graph;
pub mod instrument;
pub mod engine;
pub mod layer;
pub mod policy;
pub mod synth;

pub use engine::{Completion, Discipline, StackEngine};
pub use layer::{SimLayer, SimMessage, SyntheticLayer};
pub use policy::{stage_partition, weighted_fair_admit, AdmissionPolicy, BatchPolicy};
