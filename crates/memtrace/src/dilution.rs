//! Cache-dilution analysis (Section 5.4).
//!
//! A cache line fetched because one basic block executed usually carries
//! neighbouring bytes that never execute; the paper estimates ~25% of
//! instruction bytes fetched into the cache this way are dead, and notes
//! that Mosberger-style basic-block outlining (moving rarely-executed
//! blocks to the end of the function) recovers most of that waste.
//!
//! [`code_dilution`] measures the waste in a trace, and its
//! [`DilutionReport::dense_reduction`] projects the working-set saving a
//! perfectly dense layout would achieve (the best case for outlining).

use crate::refset::ByteRefSet;
use crate::trace::{RefKind, Trace};

/// Result of a dilution analysis at a given line size.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct DilutionReport {
    /// Line size analyzed.
    pub line_size: u64,
    /// Distinct code bytes actually executed.
    pub executed_bytes: u64,
    /// Bytes occupied by the touched lines (`lines * line_size`).
    pub fetched_bytes: u64,
    /// Lines in the as-laid-out working set.
    pub lines: u64,
    /// Lines a perfectly dense layout would need
    /// (`ceil(executed_bytes / line_size)`).
    pub dense_lines: u64,
}

impl DilutionReport {
    /// Fraction of fetched instruction bytes that never execute
    /// (the paper's ~25% for the TCP/IP trace).
    pub fn dilution(&self) -> f64 {
        if self.fetched_bytes == 0 {
            0.0
        } else {
            1.0 - self.executed_bytes as f64 / self.fetched_bytes as f64
        }
    }

    /// Fractional reduction in working-set lines a dense layout achieves.
    pub fn dense_reduction(&self) -> f64 {
        if self.lines == 0 {
            0.0
        } else {
            1.0 - self.dense_lines as f64 / self.lines as f64
        }
    }
}

/// Measures instruction-byte dilution in `trace` at `line_size`.
pub fn code_dilution(trace: &Trace, line_size: u64) -> DilutionReport {
    let mut executed = ByteRefSet::new();
    for r in &trace.refs {
        if r.kind == RefKind::Code {
            executed.insert(r.addr, r.size as u64);
        }
    }
    let lines = executed.lines(line_size);
    let executed_bytes = executed.bytes();
    DilutionReport {
        line_size,
        executed_bytes,
        fetched_bytes: lines * line_size,
        lines,
        dense_lines: executed_bytes.div_ceil(line_size),
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use cachesim::Region;

    #[test]
    fn solid_code_has_no_dilution() {
        let mut t = Trace::new(vec!["L".into()], vec!["p".into()]);
        let f = t.add_function("f", Region::new(0, 1024), 0);
        t.record(0, 1024, RefKind::Code, 0, f);
        let d = code_dilution(&t, 32);
        assert_eq!(d.executed_bytes, 1024);
        assert_eq!(d.lines, 32);
        assert_eq!(d.dilution(), 0.0);
        assert_eq!(d.dense_reduction(), 0.0);
    }

    #[test]
    fn gappy_code_dilutes() {
        let mut t = Trace::new(vec!["L".into()], vec!["p".into()]);
        let f = t.add_function("f", Region::new(0, 4096), 0);
        // Execute 8 bytes out of every 32-byte line: 75% dilution.
        for i in 0..16u64 {
            t.record(i * 32, 8, RefKind::Code, 0, f);
        }
        let d = code_dilution(&t, 32);
        assert_eq!(d.lines, 16);
        assert_eq!(d.executed_bytes, 128);
        assert!((d.dilution() - 0.75).abs() < 1e-12);
        // Densely packed, 128 bytes fit in 4 lines: a 75% line reduction.
        assert_eq!(d.dense_lines, 4);
        assert!((d.dense_reduction() - 0.75).abs() < 1e-12);
    }

    #[test]
    fn empty_trace() {
        let t = Trace::new(vec!["L".into()], vec!["p".into()]);
        let d = code_dilution(&t, 32);
        assert_eq!(d.dilution(), 0.0);
        assert_eq!(d.lines, 0);
    }
}
