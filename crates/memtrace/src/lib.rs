//! # memtrace — memory-reference traces and working-set analysis
//!
//! This crate is the analogue of the paper's in-kernel tracing apparatus
//! (Section 2.2, `alphasim_entry`): it represents a protocol-processing run
//! as a sequence of byte-granularity memory references, then recomputes the
//! paper's measurement artifacts from the trace:
//!
//! * **Table 1** — working-set sizes per layer, split into code, read-only
//!   data and mutable data, at cache-line granularity
//!   ([`workingset::working_set`]).
//! * **Table 2 / Figure 1** — the phases of the receive-and-acknowledge
//!   path and a map of active code per phase ([`phases`], [`figmap`]).
//! * **Table 3** — the effect of cache-line size on working-set bytes and
//!   lines ([`workingset::line_size_sweep`]).
//! * **Section 5.4** — cache dilution: the fraction of fetched instruction
//!   bytes that never execute, and the working-set reduction a perfectly
//!   dense layout would achieve ([`dilution`]).
//!
//! Traces are produced by the instrumented stack in the `netstack` crate
//! (see `netstack::footprint`), but the analysis here is generic: any
//! producer that emits [`Trace`]s can be analyzed.

pub mod dilution;
pub mod figmap;
pub mod io;
pub mod phases;
pub mod refset;
pub mod replay;
pub mod trace;
pub mod workingset;

pub use refset::ByteRefSet;
pub use trace::{FunctionInfo, RefKind, Trace, TraceRef};
pub use workingset::{working_set, LayerRow, WorkingSetReport};
