//! Trace serialization: a line-oriented text format for saving traces to
//! disk and reloading them, so external tools (or future sessions) can
//! analyze the same reference streams — the role of the paper's trace
//! buffer dumps ("the trace buffer was then dumped to a file and
//! analyzed").
//!
//! Format (one record per line, `#` comments ignored):
//!
//! ```text
//! layer <index> <name>
//! phase <index> <name>
//! func <index> <base-hex> <size> <layer-index> <name>
//! excl <base-hex> <len>
//! ref <kind:C|R|W> <phase> <func> <addr-hex> <size>
//! ```

use crate::trace::{FunctionInfo, RefKind, Trace, TraceRef};
use cachesim::Region;
use std::fmt::Write as _;

/// Serializes a trace to the text format.
pub fn to_text(trace: &Trace) -> String {
    let mut out = String::new();
    out.push_str("# memtrace v1\n");
    for (i, name) in trace.layers.iter().enumerate() {
        writeln!(out, "layer {i} {name}").expect("string write");
    }
    for (i, name) in trace.phases.iter().enumerate() {
        writeln!(out, "phase {i} {name}").expect("string write");
    }
    for (i, f) in trace.functions.iter().enumerate() {
        writeln!(
            out,
            "func {i} {:x} {} {} {}",
            f.region.base, f.region.len, f.layer, f.name
        )
        .expect("string write");
    }
    for e in &trace.excluded {
        writeln!(out, "excl {:x} {}", e.base, e.len).expect("string write");
    }
    for r in &trace.refs {
        let kind = match r.kind {
            RefKind::Code => 'C',
            RefKind::Read => 'R',
            RefKind::Write => 'W',
        };
        writeln!(out, "ref {kind} {} {} {:x} {}", r.phase, r.func, r.addr, r.size)
            .expect("string write");
    }
    out
}

/// Parses the text format back into a [`Trace`].
pub fn from_text(text: &str) -> Result<Trace, String> {
    let mut layers: Vec<(usize, String)> = Vec::new();
    let mut phases: Vec<(usize, String)> = Vec::new();
    let mut functions: Vec<(usize, FunctionInfo)> = Vec::new();
    let mut excluded = Vec::new();
    let mut refs = Vec::new();

    for (ln, line) in text.lines().enumerate() {
        let line = line.trim();
        if line.is_empty() || line.starts_with('#') {
            continue;
        }
        let err = |m: &str| format!("line {}: {m}", ln + 1);
        let mut parts = line.split_whitespace();
        let tag = parts.next().expect("non-empty line");
        let mut next = |what: &str| {
            parts
                .next()
                .map(str::to_string)
                .ok_or_else(|| err(&format!("missing {what}")))
        };
        match tag {
            "layer" | "phase" => {
                let idx: usize = next("index")?.parse().map_err(|_| err("bad index"))?;
                let name = {
                    let rest: Vec<String> =
                        std::iter::from_fn(|| parts.next().map(str::to_string)).collect();
                    if rest.is_empty() {
                        return Err(err("missing name"));
                    }
                    rest.join(" ")
                };
                if tag == "layer" {
                    layers.push((idx, name));
                } else {
                    phases.push((idx, name));
                }
            }
            "func" => {
                let idx: usize = next("index")?.parse().map_err(|_| err("bad index"))?;
                let base = u64::from_str_radix(&next("base")?, 16).map_err(|_| err("bad base"))?;
                let len: u64 = next("size")?.parse().map_err(|_| err("bad size"))?;
                let layer: u16 = next("layer")?.parse().map_err(|_| err("bad layer"))?;
                let name: Vec<String> =
                    std::iter::from_fn(|| parts.next().map(str::to_string)).collect();
                if name.is_empty() {
                    return Err(err("missing name"));
                }
                functions.push((
                    idx,
                    FunctionInfo {
                        name: name.join(" "),
                        region: Region::new(base, len),
                        layer,
                    },
                ));
            }
            "excl" => {
                let base = u64::from_str_radix(&next("base")?, 16).map_err(|_| err("bad base"))?;
                let len: u64 = next("len")?.parse().map_err(|_| err("bad len"))?;
                excluded.push(Region::new(base, len));
            }
            "ref" => {
                let kind = match next("kind")?.as_str() {
                    "C" => RefKind::Code,
                    "R" => RefKind::Read,
                    "W" => RefKind::Write,
                    other => return Err(err(&format!("bad kind {other}"))),
                };
                let phase: u8 = next("phase")?.parse().map_err(|_| err("bad phase"))?;
                let func: u32 = next("func")?.parse().map_err(|_| err("bad func"))?;
                let addr = u64::from_str_radix(&next("addr")?, 16).map_err(|_| err("bad addr"))?;
                let size: u32 = next("size")?.parse().map_err(|_| err("bad size"))?;
                refs.push(TraceRef {
                    addr,
                    size,
                    kind,
                    phase,
                    func,
                });
            }
            other => return Err(err(&format!("unknown record {other}"))),
        }
    }

    layers.sort_by_key(|(i, _)| *i);
    phases.sort_by_key(|(i, _)| *i);
    functions.sort_by_key(|(i, _)| *i);
    // Indexes must be dense and in order.
    for (want, (got, _)) in layers.iter().enumerate() {
        if *got != want {
            return Err(format!("layer indexes not dense at {got}"));
        }
    }
    for (want, (got, _)) in functions.iter().enumerate() {
        if *got != want {
            return Err(format!("function indexes not dense at {got}"));
        }
    }
    let mut trace = Trace::new(
        layers.into_iter().map(|(_, n)| n).collect(),
        phases.into_iter().map(|(_, n)| n).collect(),
    );
    trace.functions = functions.into_iter().map(|(_, f)| f).collect();
    trace.excluded = excluded;
    // Validate ref indexes before installing.
    for r in &refs {
        if r.func as usize >= trace.functions.len() {
            return Err(format!("ref function index {} out of range", r.func));
        }
        if r.phase as usize >= trace.phases.len() {
            return Err(format!("ref phase index {} out of range", r.phase));
        }
    }
    trace.refs = refs;
    Ok(trace)
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample() -> Trace {
        let mut t = Trace::new(
            vec!["TCP".into(), "Socket low".into()],
            vec!["entry".into(), "pkt intr".into()],
        );
        let f0 = t.add_function("tcp_input", Region::new(0x1000, 512), 0);
        let f1 = t.add_function("sb append", Region::new(0x2000, 128), 1);
        t.excluded.push(Region::new(0x9000, 4096));
        t.record(0x1000, 64, RefKind::Code, 1, f0);
        t.record(0x8000, 8, RefKind::Read, 1, f0);
        t.record(0x8000, 8, RefKind::Write, 0, f1);
        t
    }

    #[test]
    fn round_trip_preserves_everything() {
        let t = sample();
        let text = to_text(&t);
        let back = from_text(&text).unwrap();
        assert_eq!(back.layers, t.layers);
        assert_eq!(back.phases, t.phases);
        assert_eq!(back.functions, t.functions);
        assert_eq!(back.excluded, t.excluded);
        assert_eq!(back.refs, t.refs);
        back.validate().unwrap();
    }

    #[test]
    fn names_with_spaces_survive() {
        let t = sample();
        let back = from_text(&to_text(&t)).unwrap();
        assert_eq!(back.functions[1].name, "sb append");
        assert_eq!(back.layers[1], "Socket low");
    }

    #[test]
    fn real_trace_round_trips_and_analyzes_identically() {
        // The full receive&ack trace from netstack is ~40k records; it
        // lives in the netstack crate, so here we exercise a mid-sized
        // synthetic one and verify analyses agree.
        let mut t = Trace::new(vec!["L".into()], vec!["p".into()]);
        let f = t.add_function("f", Region::new(0, 8192), 0);
        for i in 0..500u64 {
            t.record(i * 16, 8, RefKind::Code, 0, f);
        }
        let back = from_text(&to_text(&t)).unwrap();
        let a = crate::workingset::working_set(&t, 32);
        let b = crate::workingset::working_set(&back, 32);
        assert_eq!(a, b);
    }

    #[test]
    fn malformed_inputs_rejected() {
        assert!(from_text("bogus line").is_err());
        assert!(from_text("ref C 0 0 10 4").is_err(), "ref without functions");
        assert!(from_text("layer 0").is_err(), "missing name");
        assert!(from_text("func 1 0 10 0 orphan").is_err(), "non-dense index");
        assert!(from_text("ref X 0 0 10 4").is_err(), "bad kind");
        // Comments and blanks are fine.
        assert!(from_text("# nothing\n\n").is_ok());
    }
}
