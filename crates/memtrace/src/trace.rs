//! Trace representation: functions, layers, phases and references.

use cachesim::Region;

/// The kind of a memory reference in a trace.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum RefKind {
    /// Instruction bytes fetched because they executed.
    Code,
    /// Data load.
    Read,
    /// Data store.
    Write,
}

/// A single memory reference.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct TraceRef {
    /// First byte referenced.
    pub addr: u64,
    /// Number of bytes referenced.
    pub size: u32,
    /// Code fetch, load, or store.
    pub kind: RefKind,
    /// Index into [`Trace::phases`].
    pub phase: u8,
    /// Index into [`Trace::functions`] of the function executing when the
    /// reference was made. Used to attribute data to layers (the paper's
    /// first-access rule) and code bytes to functions.
    pub func: u32,
}

/// A function in the traced program's address space.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct FunctionInfo {
    /// Symbol name (e.g. `tcp_input`).
    pub name: String,
    /// The function's full extent in the code segment. References may touch
    /// only part of it; Figure 1 prints the full size but Table 1 counts
    /// only touched lines.
    pub region: Region,
    /// Index into [`Trace::layers`].
    pub layer: u16,
}

/// A complete reference trace of one protocol-processing episode.
#[derive(Debug, Clone, Default)]
pub struct Trace {
    /// Layer (classification) names, e.g. "TCP", "Buffer mgmt".
    pub layers: Vec<String>,
    /// Phase names in chronological order, e.g. "entry", "pkt intr", "exit".
    pub phases: Vec<String>,
    /// All functions, sorted by base address.
    pub functions: Vec<FunctionInfo>,
    /// References in program order.
    pub refs: Vec<TraceRef>,
    /// Address regions excluded from working-set accounting (packet
    /// contents, hardware registers, the stack — Table 1's caption).
    /// References into these regions still appear in phase summaries.
    pub excluded: Vec<Region>,
}

impl Trace {
    /// Creates an empty trace with the given layer and phase name sets.
    pub fn new(layers: Vec<String>, phases: Vec<String>) -> Self {
        Trace {
            layers,
            phases,
            functions: Vec::new(),
            refs: Vec::new(),
            excluded: Vec::new(),
        }
    }

    /// Registers a function; returns its index for use in [`TraceRef::func`].
    pub fn add_function(&mut self, name: &str, region: Region, layer: u16) -> u32 {
        assert!((layer as usize) < self.layers.len(), "unknown layer index");
        self.functions.push(FunctionInfo {
            name: name.to_string(),
            region,
            layer,
        });
        (self.functions.len() - 1) as u32
    }

    /// Appends a reference.
    pub fn record(&mut self, addr: u64, size: u32, kind: RefKind, phase: u8, func: u32) {
        debug_assert!((phase as usize) < self.phases.len());
        debug_assert!((func as usize) < self.functions.len());
        self.refs.push(TraceRef {
            addr,
            size,
            kind,
            phase,
            func,
        });
    }

    /// Looks up a function index by name (for tests and reports).
    pub fn function_named(&self, name: &str) -> Option<u32> {
        self.functions
            .iter()
            .position(|f| f.name == name)
            .map(|i| i as u32)
    }

    /// Checks internal consistency: functions don't overlap, every ref
    /// points at valid indices, and code refs land inside their function.
    /// Intended for `debug_assert!` use and tests.
    pub fn validate(&self) -> Result<(), String> {
        let mut sorted: Vec<&FunctionInfo> = self.functions.iter().collect();
        sorted.sort_by_key(|f| f.region.base);
        for w in sorted.windows(2) {
            if w[0].region.overlaps(&w[1].region) {
                return Err(format!(
                    "functions {} and {} overlap",
                    w[0].name, w[1].name
                ));
            }
        }
        for (i, r) in self.refs.iter().enumerate() {
            if r.func as usize >= self.functions.len() {
                return Err(format!("ref {i} has bad function index"));
            }
            if r.phase as usize >= self.phases.len() {
                return Err(format!("ref {i} has bad phase index"));
            }
            if r.kind == RefKind::Code {
                let f = &self.functions[r.func as usize];
                let span = Region::new(r.addr, r.size as u64);
                if !(f.region.contains(span.base)
                    && (span.len == 0 || f.region.contains(span.end() - 1)))
                {
                    return Err(format!(
                        "code ref {i} at {:#x}+{} outside its function {}",
                        r.addr, r.size, f.name
                    ));
                }
            }
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn tiny() -> Trace {
        let mut t = Trace::new(
            vec!["L0".into(), "L1".into()],
            vec!["p0".into(), "p1".into()],
        );
        let f0 = t.add_function("alpha", Region::new(0, 100), 0);
        let f1 = t.add_function("beta", Region::new(128, 100), 1);
        t.record(0, 50, RefKind::Code, 0, f0);
        t.record(128, 10, RefKind::Code, 1, f1);
        t.record(0x1000, 8, RefKind::Read, 0, f0);
        t.record(0x1000, 8, RefKind::Write, 1, f1);
        t
    }

    #[test]
    fn build_and_lookup() {
        let t = tiny();
        assert_eq!(t.function_named("beta"), Some(1));
        assert_eq!(t.function_named("gamma"), None);
        assert_eq!(t.refs.len(), 4);
        t.validate().unwrap();
    }

    #[test]
    fn validate_catches_overlap() {
        let mut t = Trace::new(vec!["L".into()], vec!["p".into()]);
        t.add_function("a", Region::new(0, 100), 0);
        t.add_function("b", Region::new(50, 100), 0);
        assert!(t.validate().is_err());
    }

    #[test]
    fn validate_catches_stray_code_ref() {
        let mut t = Trace::new(vec!["L".into()], vec!["p".into()]);
        let f = t.add_function("a", Region::new(0, 100), 0);
        t.record(200, 4, RefKind::Code, 0, f);
        assert!(t.validate().is_err());
    }

    #[test]
    #[should_panic(expected = "unknown layer")]
    fn add_function_rejects_bad_layer() {
        let mut t = Trace::new(vec!["L".into()], vec!["p".into()]);
        t.add_function("a", Region::new(0, 10), 3);
    }
}
