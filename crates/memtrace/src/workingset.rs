//! Working-set accounting at cache-line granularity (Tables 1 and 3).
//!
//! The rules follow Section 2.4 of the paper exactly:
//!
//! * The unit of memory is a cache line: a reference to any byte makes the
//!   whole line part of the working set.
//! * Data is *read-only* if it was never written during the trace,
//!   *mutable* otherwise.
//! * Code is classified into layers by the function it belongs to; data is
//!   classified by the layer of the function executing when the line was
//!   first referenced.
//! * Accesses to excluded regions (packet contents, hardware registers,
//!   the stack) are not counted.

use std::collections::BTreeSet;

use crate::trace::{RefKind, Trace};

/// Line and byte counts for one (layer, class) cell.
///
/// Bytes are always `lines * line_size` — the paper's working-set "size in
/// bytes" is a line-granular measure.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct Cell {
    /// Number of distinct cache lines.
    pub lines: u64,
    /// `lines * line_size`.
    pub bytes: u64,
}

/// Working-set contributions of one layer.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct LayerRow {
    /// Layer name, from [`Trace::layers`].
    pub layer: String,
    /// Code lines/bytes.
    pub code: Cell,
    /// Read-only data lines/bytes.
    pub ro_data: Cell,
    /// Mutable data lines/bytes.
    pub mut_data: Cell,
}

/// A full Table-1-style report.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct WorkingSetReport {
    /// Cache-line size the trace was analyzed at.
    pub line_size: u64,
    /// One row per layer, in [`Trace::layers`] order.
    pub rows: Vec<LayerRow>,
    /// Column totals.
    pub total: LayerRow,
}

impl WorkingSetReport {
    /// Renders the report as an aligned text table mirroring Table 1.
    pub fn render(&self) -> String {
        let mut out = String::new();
        out.push_str(&format!(
            "{:<22} {:>8} {:>10} {:>9}\n",
            "Description", "Code", "RO Data", "Mut Data"
        ));
        for row in self.rows.iter().chain(std::iter::once(&self.total)) {
            out.push_str(&format!(
                "{:<22} {:>8} {:>10} {:>9}\n",
                row.layer, row.code.bytes, row.ro_data.bytes, row.mut_data.bytes
            ));
        }
        out
    }
}

#[derive(Clone, Copy, PartialEq, Eq)]
enum Class {
    Code,
    RoData,
    MutData,
}

/// Computes the Table-1 working-set breakdown of `trace` at `line_size`.
pub fn working_set(trace: &Trace, line_size: u64) -> WorkingSetReport {
    assert!(line_size.is_power_of_two() && line_size >= 1);

    // Pass 1: which data lines were ever written (=> mutable)?
    let mut written: BTreeSet<u64> = BTreeSet::new();
    for r in &trace.refs {
        if r.kind == RefKind::Write && r.size > 0 && !is_excluded(trace, r.addr) {
            for line in lines_of(r.addr, r.size, line_size) {
                written.insert(line);
            }
        }
    }

    // Pass 2: first-touch classification of every countable line.
    let mut seen: BTreeSet<u64> = BTreeSet::new();
    let nlayers = trace.layers.len();
    let mut cells = vec![[0u64; 3]; nlayers]; // [layer][class] -> lines

    for r in &trace.refs {
        if r.size == 0 {
            continue;
        }
        if r.kind != RefKind::Code && is_excluded(trace, r.addr) {
            continue;
        }
        let layer = trace.functions[r.func as usize].layer as usize;
        for line in lines_of(r.addr, r.size, line_size) {
            if !seen.insert(line) {
                continue;
            }
            let class = match r.kind {
                RefKind::Code => Class::Code,
                _ if written.contains(&line) => Class::MutData,
                _ => Class::RoData,
            };
            // Code lines belong to the function's own layer; that is also
            // the executing function for code refs, so one rule suffices.
            cells[layer][class as usize] += 1;
        }
    }

    let make_cell = |lines: u64| Cell {
        lines,
        bytes: lines * line_size,
    };
    let mut rows = Vec::with_capacity(nlayers);
    let mut tot = [0u64; 3];
    for (i, name) in trace.layers.iter().enumerate() {
        for c in 0..3 {
            tot[c] += cells[i][c];
        }
        rows.push(LayerRow {
            layer: name.clone(),
            code: make_cell(cells[i][Class::Code as usize]),
            ro_data: make_cell(cells[i][Class::RoData as usize]),
            mut_data: make_cell(cells[i][Class::MutData as usize]),
        });
    }
    WorkingSetReport {
        line_size,
        rows,
        total: LayerRow {
            layer: "Total".to_string(),
            code: make_cell(tot[Class::Code as usize]),
            ro_data: make_cell(tot[Class::RoData as usize]),
            mut_data: make_cell(tot[Class::MutData as usize]),
        },
    }
}

fn is_excluded(trace: &Trace, addr: u64) -> bool {
    trace.excluded.iter().any(|r| r.contains(addr))
}

fn lines_of(addr: u64, size: u32, line_size: u64) -> impl Iterator<Item = u64> {
    let first = addr / line_size;
    let last = (addr + size as u64 - 1) / line_size;
    first..=last
}

/// One class's entry in a Table-3-style line-size sweep.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct SweepCell {
    /// Working-set size in bytes (`lines * line_size`).
    pub bytes: u64,
    /// Working-set size in lines.
    pub lines: u64,
    /// Percent change in bytes relative to the baseline line size.
    pub d_bytes_pct: f64,
    /// Percent change in lines relative to the baseline line size.
    pub d_lines_pct: f64,
}

/// One row (line size) of the Table-3 sweep.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct SweepRow {
    pub line_size: u64,
    pub code: SweepCell,
    pub ro_data: SweepCell,
    pub mut_data: SweepCell,
}

/// Recomputes the total working set at each of `line_sizes` and reports
/// percent changes relative to `baseline` (Table 3 uses a 32-byte
/// baseline). `baseline` must appear in `line_sizes`.
pub fn line_size_sweep(trace: &Trace, line_sizes: &[u64], baseline: u64) -> Vec<SweepRow> {
    assert!(
        line_sizes.contains(&baseline),
        "baseline must be one of the swept sizes"
    );
    let totals: Vec<(u64, LayerRow)> = line_sizes
        .iter()
        .map(|&ls| (ls, working_set(trace, ls).total))
        .collect();
    let base = &totals
        .iter()
        .find(|(ls, _)| *ls == baseline)
        .expect("baseline computed")
        .1
        .clone();

    let pct = |new: u64, old: u64| {
        if old == 0 {
            0.0
        } else {
            (new as f64 - old as f64) / old as f64 * 100.0
        }
    };
    totals
        .into_iter()
        .map(|(ls, t)| SweepRow {
            line_size: ls,
            code: SweepCell {
                bytes: t.code.bytes,
                lines: t.code.lines,
                d_bytes_pct: pct(t.code.bytes, base.code.bytes),
                d_lines_pct: pct(t.code.lines, base.code.lines),
            },
            ro_data: SweepCell {
                bytes: t.ro_data.bytes,
                lines: t.ro_data.lines,
                d_bytes_pct: pct(t.ro_data.bytes, base.ro_data.bytes),
                d_lines_pct: pct(t.ro_data.lines, base.ro_data.lines),
            },
            mut_data: SweepCell {
                bytes: t.mut_data.bytes,
                lines: t.mut_data.lines,
                d_bytes_pct: pct(t.mut_data.bytes, base.mut_data.bytes),
                d_lines_pct: pct(t.mut_data.lines, base.mut_data.lines),
            },
        })
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::trace::Trace;
    use cachesim::Region;

    fn layers() -> Vec<String> {
        vec!["A".into(), "B".into()]
    }

    #[test]
    fn code_classified_by_function_layer() {
        let mut t = Trace::new(layers(), vec!["p".into()]);
        let fa = t.add_function("fa", Region::new(0, 64), 0);
        let fb = t.add_function("fb", Region::new(64, 64), 1);
        t.record(0, 64, RefKind::Code, 0, fa); // 2 lines of A code
        t.record(64, 32, RefKind::Code, 0, fb); // 1 line of B code
        let ws = working_set(&t, 32);
        assert_eq!(ws.rows[0].code, Cell { lines: 2, bytes: 64 });
        assert_eq!(ws.rows[1].code, Cell { lines: 1, bytes: 32 });
        assert_eq!(ws.total.code.lines, 3);
    }

    #[test]
    fn data_mutability_is_trace_wide() {
        let mut t = Trace::new(layers(), vec!["p".into()]);
        let fa = t.add_function("fa", Region::new(0, 64), 0);
        // Read first, written later in the trace: still mutable.
        t.record(0x1000, 8, RefKind::Read, 0, fa);
        t.record(0x1000, 8, RefKind::Write, 0, fa);
        // Read-only word on another line.
        t.record(0x2000, 8, RefKind::Read, 0, fa);
        let ws = working_set(&t, 32);
        assert_eq!(ws.rows[0].mut_data.lines, 1);
        assert_eq!(ws.rows[0].ro_data.lines, 1);
    }

    #[test]
    fn data_layer_is_first_access() {
        let mut t = Trace::new(layers(), vec!["p".into()]);
        let fa = t.add_function("fa", Region::new(0, 64), 0);
        let fb = t.add_function("fb", Region::new(64, 64), 1);
        // B touches the line first; A's later touch doesn't reassign it.
        t.record(0x1000, 8, RefKind::Read, 0, fb);
        t.record(0x1004, 8, RefKind::Read, 0, fa);
        let ws = working_set(&t, 32);
        assert_eq!(ws.rows[0].ro_data.lines, 0);
        assert_eq!(ws.rows[1].ro_data.lines, 1);
    }

    #[test]
    fn excluded_regions_not_counted() {
        let mut t = Trace::new(layers(), vec!["p".into()]);
        let fa = t.add_function("fa", Region::new(0, 64), 0);
        t.excluded.push(Region::new(0x8000, 0x1000));
        t.record(0x8000, 552, RefKind::Read, 0, fa); // packet contents
        t.record(0x1000, 8, RefKind::Read, 0, fa); // countable
        let ws = working_set(&t, 32);
        assert_eq!(ws.total.ro_data.lines, 1);
        assert_eq!(ws.total.mut_data.lines, 0);
    }

    #[test]
    fn duplicate_touches_counted_once() {
        let mut t = Trace::new(layers(), vec!["p".into()]);
        let fa = t.add_function("fa", Region::new(0, 64), 0);
        for _ in 0..10 {
            t.record(0, 32, RefKind::Code, 0, fa);
        }
        let ws = working_set(&t, 32);
        assert_eq!(ws.total.code.lines, 1);
    }

    #[test]
    fn sweep_percentages() {
        let mut t = Trace::new(layers(), vec!["p".into()]);
        let fa = t.add_function("fa", Region::new(0, 4096), 0);
        // A solid 1 KB code run: lines scale exactly inversely with size.
        t.record(0, 1024, RefKind::Code, 0, fa);
        let rows = line_size_sweep(&t, &[16, 32, 64], 32);
        let r16 = &rows[0];
        let r32 = &rows[1];
        let r64 = &rows[2];
        assert_eq!(r32.code.d_lines_pct, 0.0);
        assert_eq!(r32.code.d_bytes_pct, 0.0);
        assert!((r16.code.d_lines_pct - 100.0).abs() < 1e-9);
        assert!((r16.code.d_bytes_pct - 0.0).abs() < 1e-9);
        assert!((r64.code.d_lines_pct - -50.0).abs() < 1e-9);
        assert!((r64.code.d_bytes_pct - 0.0).abs() < 1e-9);
    }

    #[test]
    fn sweep_sparse_data_grows_in_bytes_with_big_lines() {
        let mut t = Trace::new(layers(), vec!["p".into()]);
        let fa = t.add_function("fa", Region::new(0, 64), 0);
        // Isolated 8-byte words, 64 bytes apart: every line size holds one
        // word per line, so bytes grow linearly with line size.
        for i in 0..8u64 {
            t.record(0x1000 + i * 64, 8, RefKind::Read, 0, fa);
        }
        let rows = line_size_sweep(&t, &[8, 32, 64], 32);
        assert!((rows[0].ro_data.d_bytes_pct - -75.0).abs() < 1e-9);
        assert!((rows[2].ro_data.d_bytes_pct - 100.0).abs() < 1e-9);
        assert_eq!(rows[1].ro_data.lines, 8);
    }

    #[test]
    fn render_contains_rows_and_total() {
        let mut t = Trace::new(layers(), vec!["p".into()]);
        let fa = t.add_function("fa", Region::new(0, 64), 0);
        t.record(0, 32, RefKind::Code, 0, fa);
        let s = working_set(&t, 32).render();
        assert!(s.contains("Total"));
        assert!(s.contains('A'));
    }
}
