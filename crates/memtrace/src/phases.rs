//! Per-phase reference summaries (Table 2 and Figure 1's column footers).
//!
//! Figure 1 splits the receive-and-acknowledge trace into three phases —
//! the process entering `read` and blocking, the device interrupt
//! delivering the packet, and the process waking up and sending the ACK —
//! and annotates each column with the bytes and reference counts of code,
//! read and write traffic. This module computes those annotations from a
//! [`Trace`]. Unlike Table 1, phase summaries count *all* references,
//! including packet contents.

use crate::refset::ByteRefSet;
use crate::trace::{RefKind, Trace};

/// Unique-byte coverage and raw reference count for one kind of traffic.
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct Coverage {
    /// Distinct bytes touched.
    pub bytes: u64,
    /// Number of references (each [`crate::TraceRef`] is one reference).
    pub refs: u64,
}

/// Summary of one phase of the trace.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct PhaseSummary {
    /// Phase name from [`Trace::phases`].
    pub name: String,
    /// Instruction-fetch traffic.
    pub code: Coverage,
    /// Load traffic.
    pub read: Coverage,
    /// Store traffic.
    pub write: Coverage,
}

/// Computes one [`PhaseSummary`] per phase, in trace order.
pub fn phase_summaries(trace: &Trace) -> Vec<PhaseSummary> {
    let n = trace.phases.len();
    let mut sets = vec![[ByteRefSet::new(), ByteRefSet::new(), ByteRefSet::new()]; n];
    let mut counts = vec![[0u64; 3]; n];

    for r in &trace.refs {
        let k = match r.kind {
            RefKind::Code => 0,
            RefKind::Read => 1,
            RefKind::Write => 2,
        };
        let p = r.phase as usize;
        sets[p][k].insert(r.addr, r.size as u64);
        counts[p][k] += 1;
    }

    trace
        .phases
        .iter()
        .enumerate()
        .map(|(p, name)| PhaseSummary {
            name: name.clone(),
            code: Coverage {
                bytes: sets[p][0].bytes(),
                refs: counts[p][0],
            },
            read: Coverage {
                bytes: sets[p][1].bytes(),
                refs: counts[p][1],
            },
            write: Coverage {
                bytes: sets[p][2].bytes(),
                refs: counts[p][2],
            },
        })
        .collect()
}

/// Renders phase summaries in the style of Figure 1's column footers.
pub fn render(summaries: &[PhaseSummary]) -> String {
    let mut out = String::new();
    for s in summaries {
        out.push_str(&format!(
            "{}:\n  Write: {:>6} bytes {:>6} refs\n  Read:  {:>6} bytes {:>6} refs\n  Code:  {:>6} bytes {:>6} refs\n",
            s.name, s.write.bytes, s.write.refs, s.read.bytes, s.read.refs, s.code.bytes, s.code.refs,
        ));
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use cachesim::Region;

    #[test]
    fn per_phase_attribution() {
        let mut t = Trace::new(
            vec!["L".into()],
            vec!["entry".into(), "intr".into(), "exit".into()],
        );
        let f = t.add_function("f", Region::new(0, 1024), 0);
        t.record(0, 100, RefKind::Code, 0, f);
        t.record(0, 100, RefKind::Code, 0, f); // re-executed: 2 refs, 100 bytes
        t.record(0x1000, 16, RefKind::Read, 1, f);
        t.record(0x2000, 8, RefKind::Write, 2, f);

        let s = phase_summaries(&t);
        assert_eq!(s.len(), 3);
        assert_eq!(s[0].code, Coverage { bytes: 100, refs: 2 });
        assert_eq!(s[0].read, Coverage::default());
        assert_eq!(s[1].read, Coverage { bytes: 16, refs: 1 });
        assert_eq!(s[2].write, Coverage { bytes: 8, refs: 1 });
    }

    #[test]
    fn phase_bytes_are_unique_within_phase_only() {
        let mut t = Trace::new(vec!["L".into()], vec!["p0".into(), "p1".into()]);
        let f = t.add_function("f", Region::new(0, 1024), 0);
        // The same code bytes executed in both phases count in each phase.
        t.record(0, 64, RefKind::Code, 0, f);
        t.record(0, 64, RefKind::Code, 1, f);
        let s = phase_summaries(&t);
        assert_eq!(s[0].code.bytes, 64);
        assert_eq!(s[1].code.bytes, 64);
    }

    #[test]
    fn render_mentions_each_phase() {
        let mut t = Trace::new(vec!["L".into()], vec!["alpha".into()]);
        let f = t.add_function("f", Region::new(0, 64), 0);
        t.record(0, 10, RefKind::Code, 0, f);
        let text = render(&phase_summaries(&t));
        assert!(text.contains("alpha"));
        assert!(text.contains("Code:"));
    }
}
