//! Figure-1-style map of active code.
//!
//! Figure 1 of the paper plots the code segment on the vertical axis,
//! divided into functions, against the three phases of the trace, showing
//! which bytes of each function execute in each phase. This module computes
//! the per-function, per-phase coverage and renders it as a text map.

use crate::refset::ByteRefSet;
use crate::trace::{RefKind, Trace};

/// Coverage of one function across all phases.
#[derive(Debug, Clone)]
pub struct FunctionCoverage {
    /// Function name.
    pub name: String,
    /// Full size of the function in bytes (printed beside the name in
    /// Figure 1).
    pub size: u64,
    /// Base address (functions are plotted in address order).
    pub base: u64,
    /// Layer index of the function.
    pub layer: u16,
    /// Distinct code bytes executed, per phase.
    pub touched_per_phase: Vec<u64>,
    /// Distinct code bytes executed across the whole trace.
    pub touched_total: u64,
}

/// Computes per-function, per-phase code coverage, sorted by base address.
pub fn function_coverage(trace: &Trace) -> Vec<FunctionCoverage> {
    let nphases = trace.phases.len();
    let nfuncs = trace.functions.len();
    let mut per_phase = vec![vec![ByteRefSet::new(); nphases]; nfuncs];
    let mut total = vec![ByteRefSet::new(); nfuncs];

    for r in &trace.refs {
        if r.kind != RefKind::Code {
            continue;
        }
        let f = r.func as usize;
        per_phase[f][r.phase as usize].insert(r.addr, r.size as u64);
        total[f].insert(r.addr, r.size as u64);
    }

    let mut out: Vec<FunctionCoverage> = trace
        .functions
        .iter()
        .enumerate()
        .map(|(i, f)| FunctionCoverage {
            name: f.name.clone(),
            size: f.region.len,
            base: f.region.base,
            layer: f.layer,
            touched_per_phase: per_phase[i].iter().map(|s| s.bytes()).collect(),
            touched_total: total[i].bytes(),
        })
        .collect();
    out.sort_by_key(|c| c.base);
    out
}

/// Renders the coverage as a text map: one row per function (address
/// order), one bar column per phase. Bar length is proportional to the
/// fraction of the function executed in that phase.
pub fn render(trace: &Trace, coverage: &[FunctionCoverage]) -> String {
    const BAR: usize = 10;
    let mut out = String::new();
    out.push_str(&format!("{:<22} {:>6}", "function", "size"));
    for p in &trace.phases {
        out.push_str(&format!(" | {:<10}", truncate(p, BAR)));
    }
    out.push('\n');
    for c in coverage {
        if c.touched_total == 0 {
            continue;
        }
        out.push_str(&format!("{:<22} {:>6}", truncate(&c.name, 22), c.size));
        for &t in &c.touched_per_phase {
            let filled = if c.size == 0 {
                0
            } else {
                ((t as f64 / c.size as f64) * BAR as f64).ceil() as usize
            };
            let bar: String = "#".repeat(filled.min(BAR)) + &" ".repeat(BAR - filled.min(BAR));
            out.push_str(&format!(" | {bar}"));
        }
        out.push('\n');
    }
    out
}

fn truncate(s: &str, n: usize) -> &str {
    &s[..s.len().min(n)]
}

#[cfg(test)]
mod tests {
    use super::*;
    use cachesim::Region;

    fn sample() -> Trace {
        let mut t = Trace::new(
            vec!["L".into()],
            vec!["entry".into(), "intr".into()],
        );
        let f1 = t.add_function("big_func", Region::new(1000, 400), 0);
        let f0 = t.add_function("small_func", Region::new(0, 100), 0);
        t.record(0, 50, RefKind::Code, 0, f0);
        t.record(1000, 400, RefKind::Code, 1, f1);
        t.record(1000, 100, RefKind::Code, 0, f1);
        t.record(0x9000, 8, RefKind::Read, 0, f0); // data: ignored by figmap
        t
    }

    #[test]
    fn coverage_sorted_by_address_and_counted() {
        let t = sample();
        let cov = function_coverage(&t);
        assert_eq!(cov[0].name, "small_func");
        assert_eq!(cov[1].name, "big_func");
        assert_eq!(cov[0].touched_per_phase, vec![50, 0]);
        assert_eq!(cov[1].touched_per_phase, vec![100, 400]);
        assert_eq!(cov[1].touched_total, 400, "phases overlap in bytes");
    }

    #[test]
    fn render_shows_bars() {
        let t = sample();
        let cov = function_coverage(&t);
        let text = render(&t, &cov);
        assert!(text.contains("big_func"));
        assert!(text.contains("small_func"));
        assert!(text.contains('#'));
        // Fully-covered phase renders a full bar.
        let full_bar = "#".repeat(10);
        assert!(text.contains(&full_bar));
    }

    #[test]
    fn untouched_functions_are_omitted() {
        let mut t = sample();
        t.add_function("never_run", Region::new(5000, 64), 0);
        let cov = function_coverage(&t);
        let text = render(&t, &cov);
        assert!(!text.contains("never_run"));
    }
}

/// Renders the active-code map as a standalone SVG, visually mirroring
/// Figure 1: the vertical axis is the code segment divided into
/// functions, one column per phase, filled rectangles where code
/// executed. Written by hand (no dependencies); open in any browser.
pub fn render_svg(trace: &Trace, coverage: &[FunctionCoverage]) -> String {
    let touched: Vec<&FunctionCoverage> =
        coverage.iter().filter(|c| c.touched_total > 0).collect();
    let nphases = trace.phases.len();
    let row_h = 14.0;
    let label_w = 190.0;
    let col_w = 130.0;
    let gap = 10.0;
    let header_h = 28.0;
    let width = label_w + nphases as f64 * (col_w + gap) + 20.0;
    let height = header_h + touched.len() as f64 * row_h + 20.0;

    let mut svg = String::new();
    svg.push_str(&format!(
        "<svg xmlns=\"http://www.w3.org/2000/svg\" width=\"{width:.0}\" height=\"{height:.0}\" \
         font-family=\"monospace\" font-size=\"10\">\n\
         <rect width=\"100%\" height=\"100%\" fill=\"white\"/>\n"
    ));
    // Phase headers.
    for (p, name) in trace.phases.iter().enumerate() {
        let x = label_w + p as f64 * (col_w + gap);
        svg.push_str(&format!(
            "<text x=\"{:.0}\" y=\"18\" font-weight=\"bold\">{}</text>\n",
            x,
            xml_escape(name)
        ));
    }
    for (row, c) in touched.iter().enumerate() {
        let y = header_h + row as f64 * row_h;
        svg.push_str(&format!(
            "<text x=\"4\" y=\"{:.0}\">{} {}</text>\n",
            y + row_h - 4.0,
            xml_escape(&c.name),
            c.size
        ));
        for (p, &t) in c.touched_per_phase.iter().enumerate() {
            let x = label_w + p as f64 * (col_w + gap);
            // Outline: the function's full extent.
            svg.push_str(&format!(
                "<rect x=\"{:.0}\" y=\"{:.0}\" width=\"{:.0}\" height=\"{:.0}\" \
                 fill=\"none\" stroke=\"#ccc\"/>\n",
                x,
                y + 2.0,
                col_w,
                row_h - 4.0
            ));
            if t > 0 && c.size > 0 {
                let frac = (t as f64 / c.size as f64).min(1.0);
                svg.push_str(&format!(
                    "<rect x=\"{:.0}\" y=\"{:.0}\" width=\"{:.1}\" height=\"{:.0}\" \
                     fill=\"#333\"/>\n",
                    x,
                    y + 2.0,
                    col_w * frac,
                    row_h - 4.0
                ));
            }
        }
    }
    svg.push_str("</svg>\n");
    svg
}

fn xml_escape(s: &str) -> String {
    s.replace('&', "&amp;").replace('<', "&lt;").replace('>', "&gt;")
}

#[cfg(test)]
mod svg_tests {
    use super::*;
    use crate::trace::RefKind;
    use cachesim::Region;

    #[test]
    fn svg_is_well_formed_and_scaled() {
        let mut t = Trace::new(vec!["L".into()], vec!["entry".into(), "exit".into()]);
        let f = t.add_function("tcp_input", Region::new(0, 1000), 0);
        t.record(0, 500, RefKind::Code, 1, f);
        let cov = function_coverage(&t);
        let svg = render_svg(&t, &cov);
        assert!(svg.starts_with("<svg"));
        assert!(svg.trim_end().ends_with("</svg>"));
        assert!(svg.contains("tcp_input"));
        assert!(svg.contains("entry"));
        // Half-covered: a filled rect of half the column width (65 of 130).
        assert!(svg.contains("width=\"65.0\""), "proportional fill");
        assert_eq!(svg.matches("fill=\"#333\"").count(), 1, "one filled cell");
    }

    #[test]
    fn svg_escapes_names() {
        let mut t = Trace::new(vec!["L".into()], vec!["p<1>".into()]);
        let f = t.add_function("a&b", Region::new(0, 64), 0);
        t.record(0, 8, RefKind::Code, 0, f);
        let svg = render_svg(&t, &function_coverage(&t));
        assert!(svg.contains("a&amp;b"));
        assert!(svg.contains("p&lt;1&gt;"));
    }
}
