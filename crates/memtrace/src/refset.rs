//! Sets of referenced bytes, kept as maximal disjoint intervals.
//!
//! The working-set analyses need two measures of a reference set: the exact
//! number of distinct bytes touched, and the number of cache lines of a
//! given size those bytes fall into (the paper's unit of working-set
//! accounting). Both are cheap to compute from a sorted interval
//! representation.

use std::collections::BTreeMap;

/// A set of byte addresses, stored as sorted, disjoint, non-adjacent
/// half-open intervals `[start, end)`.
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct ByteRefSet {
    /// Maps interval start to interval end.
    intervals: BTreeMap<u64, u64>,
}

impl ByteRefSet {
    /// An empty set.
    pub fn new() -> Self {
        Self::default()
    }

    /// Inserts the bytes `[addr, addr + len)`, merging with any
    /// overlapping or adjacent intervals.
    pub fn insert(&mut self, addr: u64, len: u64) {
        if len == 0 {
            return;
        }
        let mut start = addr;
        let mut end = addr + len;

        // Absorb a predecessor that overlaps or abuts [start, end).
        if let Some((&ps, &pe)) = self.intervals.range(..=start).next_back() {
            if pe >= start {
                start = ps;
                end = end.max(pe);
                self.intervals.remove(&ps);
            }
        }
        // Absorb all successors that start within [start, end].
        loop {
            let next = self
                .intervals
                .range(start..=end)
                .next()
                .map(|(&s, &e)| (s, e));
            match next {
                Some((s, e)) => {
                    end = end.max(e);
                    self.intervals.remove(&s);
                }
                None => break,
            }
        }
        self.intervals.insert(start, end);
    }

    /// Whether `addr` is in the set.
    pub fn contains(&self, addr: u64) -> bool {
        self.intervals
            .range(..=addr)
            .next_back()
            .is_some_and(|(_, &e)| addr < e)
    }

    /// Whether any byte of `[addr, addr + len)` is in the set.
    pub fn intersects(&self, addr: u64, len: u64) -> bool {
        if len == 0 {
            return false;
        }
        self.intervals
            .range(..addr + len)
            .next_back()
            .is_some_and(|(_, &e)| e > addr)
    }

    /// Exact number of distinct bytes in the set.
    pub fn bytes(&self) -> u64 {
        self.intervals.iter().map(|(s, e)| e - s).sum()
    }

    /// Number of distinct cache lines of `line_size` bytes (a power of two)
    /// that contain at least one byte of the set.
    pub fn lines(&self, line_size: u64) -> u64 {
        debug_assert!(line_size.is_power_of_two());
        let mut count = 0u64;
        // Last line index already counted, if any. Intervals are sorted, so
        // a line shared between two intervals is only counted once.
        let mut last: Option<u64> = None;
        for (&s, &e) in &self.intervals {
            let first_line = s / line_size;
            let last_line = (e - 1) / line_size;
            let from = match last {
                Some(l) if l >= first_line => l + 1,
                _ => first_line,
            };
            if from <= last_line {
                count += last_line - from + 1;
                last = Some(last_line);
            }
        }
        count
    }

    /// Iterates the maximal intervals in ascending order.
    pub fn iter(&self) -> impl Iterator<Item = (u64, u64)> + '_ {
        self.intervals.iter().map(|(&s, &e)| (s, e))
    }

    /// Number of distinct bytes falling inside `[base, base + len)`.
    pub fn bytes_in(&self, base: u64, len: u64) -> u64 {
        if len == 0 {
            return 0;
        }
        let end = base + len;
        let mut total = 0;
        // Include a possible predecessor interval reaching into the range.
        if let Some((&s, &e)) = self.intervals.range(..base).next_back() {
            if e > base {
                total += e.min(end) - base;
                let _ = s;
            }
        }
        for (&s, &e) in self.intervals.range(base..end) {
            total += e.min(end) - s;
        }
        total
    }

    /// True if no bytes are in the set.
    pub fn is_empty(&self) -> bool {
        self.intervals.is_empty()
    }
}

impl FromIterator<(u64, u64)> for ByteRefSet {
    /// Builds a set from `(addr, len)` pairs.
    fn from_iter<T: IntoIterator<Item = (u64, u64)>>(iter: T) -> Self {
        let mut set = ByteRefSet::new();
        for (addr, len) in iter {
            set.insert(addr, len);
        }
        set
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn insert_and_measure() {
        let mut s = ByteRefSet::new();
        s.insert(10, 10); // [10,20)
        s.insert(30, 10); // [30,40)
        assert_eq!(s.bytes(), 20);
        assert_eq!(s.iter().count(), 2);
    }

    #[test]
    fn merging_overlap_and_adjacency() {
        let mut s = ByteRefSet::new();
        s.insert(10, 10); // [10,20)
        s.insert(20, 5); // adjacent -> [10,25)
        assert_eq!(s.iter().collect::<Vec<_>>(), vec![(10, 25)]);
        s.insert(5, 10); // overlaps front -> [5,25)
        assert_eq!(s.iter().collect::<Vec<_>>(), vec![(5, 25)]);
        s.insert(0, 100); // swallows everything
        assert_eq!(s.iter().collect::<Vec<_>>(), vec![(0, 100)]);
        assert_eq!(s.bytes(), 100);
    }

    #[test]
    fn merge_bridges_multiple_intervals() {
        let mut s = ByteRefSet::new();
        s.insert(0, 10);
        s.insert(20, 10);
        s.insert(40, 10);
        s.insert(5, 40); // bridges all three
        assert_eq!(s.iter().collect::<Vec<_>>(), vec![(0, 50)]);
    }

    #[test]
    fn contains_and_intersects() {
        let mut s = ByteRefSet::new();
        s.insert(100, 50);
        assert!(s.contains(100));
        assert!(s.contains(149));
        assert!(!s.contains(150));
        assert!(!s.contains(99));
        assert!(s.intersects(140, 100));
        assert!(!s.intersects(150, 100));
        assert!(!s.intersects(0, 100));
        assert!(!s.intersects(100, 0));
    }

    #[test]
    fn empty_insert_is_noop() {
        let mut s = ByteRefSet::new();
        s.insert(10, 0);
        assert!(s.is_empty());
        assert_eq!(s.bytes(), 0);
        assert_eq!(s.lines(32), 0);
    }

    #[test]
    fn line_counting() {
        let mut s = ByteRefSet::new();
        s.insert(0, 32); // line 0
        s.insert(33, 1); // line 1
        s.insert(100, 1); // line 3
        assert_eq!(s.lines(32), 3);
        // Smaller lines: [0,32) = 2 lines of 16; 33 = 1; 100 = 1.
        assert_eq!(s.lines(16), 4);
        // One big 128-byte line covers everything up to 127.
        assert_eq!(s.lines(128), 1);
    }

    #[test]
    fn shared_line_counted_once() {
        let mut s = ByteRefSet::new();
        s.insert(0, 4); // line 0
        s.insert(28, 4); // ends exactly at 32: still line 0
        assert_eq!(s.lines(32), 1);
        s.insert(30, 4); // [30,34) straddles into line 1
        assert_eq!(s.lines(32), 2);
    }

    #[test]
    fn bytes_in_range() {
        let mut s = ByteRefSet::new();
        s.insert(10, 20); // [10,30)
        s.insert(50, 10); // [50,60)
        assert_eq!(s.bytes_in(0, 100), 30);
        assert_eq!(s.bytes_in(0, 15), 5);
        assert_eq!(s.bytes_in(25, 30), 10); // 5 from first, 5 from second
        assert_eq!(s.bytes_in(30, 20), 0);
        assert_eq!(s.bytes_in(55, 0), 0);
    }

    #[test]
    fn from_iterator() {
        let s: ByteRefSet = vec![(0u64, 10u64), (5, 10), (100, 1)].into_iter().collect();
        assert_eq!(s.bytes(), 16);
    }
}
