//! Replaying reference traces through the cache model.
//!
//! Section 2.4 argues from the working set to memory traffic: "on
//! machines with 8 KB caches ... few lines will remain in the cache
//! between successive iterations of the receive & acknowledge path ...
//! about 35 KB of code and read-only data is fetched and discarded from
//! off the CPU" per packet. [`replay`] makes that argument executable: it
//! runs a [`Trace`] through a `cachesim::Machine` and reports the misses,
//! optionally repeating the path to measure the steady state (how much
//! survives between packets).

use crate::trace::{RefKind, Trace};
use cachesim::{Machine, MachineConfig};

/// Outcome of replaying a trace.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct ReplayReport {
    /// Instruction-fetch misses.
    pub imisses: u64,
    /// Data (read + write) misses.
    pub dmisses: u64,
    /// Total references replayed.
    pub refs: u64,
    /// Bytes implied by the misses (`misses * line_size`) — the paper's
    /// "fetched and discarded" volume.
    pub miss_bytes: u64,
}

impl ReplayReport {
    /// Total misses.
    pub fn total_misses(&self) -> u64 {
        self.imisses + self.dmisses
    }
}

/// Replays `trace` once through `machine` (whatever cache state it has).
pub fn replay(trace: &Trace, machine: &mut Machine) -> ReplayReport {
    let line = machine.config().icache.line_size;
    let before = machine.stats();
    for r in &trace.refs {
        let region = cachesim::Region::new(r.addr, r.size as u64);
        match r.kind {
            RefKind::Code => {
                machine.fetch_code(region);
            }
            RefKind::Read => {
                machine.read_data(region);
            }
            RefKind::Write => {
                machine.write_data(region);
            }
        }
    }
    let after = machine.stats();
    let imisses = after.icache.fetch_misses - before.icache.fetch_misses;
    let dmisses = (after.icache.misses + after.dcache.misses)
        - (before.icache.misses + before.dcache.misses)
        - imisses;
    ReplayReport {
        imisses,
        dmisses,
        refs: trace.refs.len() as u64,
        miss_bytes: (imisses + dmisses) * line,
    }
}

/// Replays the trace `iterations` times on a fresh machine of `cfg`
/// and returns (cold-start report, steady-state report of the final
/// iteration). The steady state shows how much of the working set
/// survives in the cache between packets.
pub fn replay_steady(
    trace: &Trace,
    cfg: MachineConfig,
    iterations: usize,
) -> (ReplayReport, ReplayReport) {
    assert!(iterations >= 1);
    let mut machine = Machine::new(cfg);
    let cold = replay(trace, &mut machine);
    let mut last = cold;
    for _ in 1..iterations {
        last = replay(trace, &mut machine);
    }
    (cold, last)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::trace::Trace;
    use cachesim::Region;

    fn small_trace(code_bytes: u64) -> Trace {
        let mut t = Trace::new(vec!["L".into()], vec!["p".into()]);
        let f = t.add_function("f", Region::new(0, code_bytes), 0);
        t.record(0, code_bytes as u32, RefKind::Code, 0, f);
        t.record(0x10_0000, 256, RefKind::Read, 0, f);
        // Offset chosen so the write region maps to different D-cache
        // sets than the read region (no aliasing in an 8 KB DM cache).
        t.record(0x10_0800, 64, RefKind::Write, 0, f);
        t
    }

    #[test]
    fn cold_replay_misses_match_working_set() {
        let t = small_trace(4096);
        let mut m = Machine::new(MachineConfig::synthetic_benchmark());
        let r = replay(&t, &mut m);
        assert_eq!(r.imisses, 4096 / 32);
        assert_eq!(r.dmisses, 256 / 32 + 64 / 32);
        assert_eq!(r.refs, 3);
        assert_eq!(r.miss_bytes, (128 + 8 + 2) * 32);
    }

    #[test]
    fn fitting_working_set_reaches_zero_steady_state() {
        // 4 KB of code in an 8 KB cache: second packet is all hits.
        let t = small_trace(4096);
        let (cold, steady) = replay_steady(&t, MachineConfig::synthetic_benchmark(), 3);
        assert!(cold.total_misses() > 0);
        assert_eq!(steady.total_misses(), 0);
    }

    #[test]
    fn oversized_working_set_keeps_missing() {
        // Two 6 KB functions in distinct address ranges against an 8 KB
        // direct-mapped cache: the path can't stay resident.
        let mut t = Trace::new(vec!["L".into()], vec!["p".into()]);
        let f1 = t.add_function("f1", Region::new(0, 6144), 0);
        let f2 = t.add_function("f2", Region::new(8192, 6144), 0);
        t.record(0, 6144, RefKind::Code, 0, f1);
        t.record(8192, 6144, RefKind::Code, 0, f2);
        let (cold, steady) = replay_steady(&t, MachineConfig::synthetic_benchmark(), 4);
        assert_eq!(cold.imisses, 2 * 192);
        // 12 KB > 8 KB: conflicting quarter keeps thrashing.
        assert!(
            steady.imisses > 100,
            "steady-state misses {} should stay high",
            steady.imisses
        );
    }

    #[test]
    fn bigger_cache_reduces_steady_state() {
        let mut t = Trace::new(vec!["L".into()], vec!["p".into()]);
        let f1 = t.add_function("f1", Region::new(0, 6144), 0);
        let f2 = t.add_function("f2", Region::new(8192, 6144), 0);
        t.record(0, 6144, RefKind::Code, 0, f1);
        t.record(8192, 6144, RefKind::Code, 0, f2);
        let big = MachineConfig {
            icache: cachesim::CacheConfig::direct_mapped(32 * 1024, 32),
            dcache: Some(cachesim::CacheConfig::direct_mapped(32 * 1024, 32)),
            ..MachineConfig::synthetic_benchmark()
        };
        let (_, steady) = replay_steady(&t, big, 3);
        assert_eq!(steady.imisses, 0, "12 KB fits a 32 KB cache");
    }
}
