//! Cache-conflict metrics for code placements.
//!
//! In a direct-mapped cache, two lines that map to the same set evict each
//! other every time both are executed. For a group of regions that run
//! together (a layer, or a whole batch-resident stack slice), the number
//! of over-subscribed sets predicts the conflict misses per pass.

use cachesim::{CacheConfig, Region};

/// Result of a conflict analysis over a group of regions.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ConflictReport {
    /// Number of cache sets used by at least one line.
    pub sets_used: u64,
    /// Number of sets claimed by more than one line.
    pub conflicting_sets: u64,
    /// Total excess lines: `sum(max(0, occupants - 1))`. In a
    /// direct-mapped cache each excess line forces at least one miss per
    /// pass over the group.
    pub excess_lines: u64,
    /// Total lines across all regions.
    pub total_lines: u64,
}

impl ConflictReport {
    /// Fraction of lines that conflict (0 = perfect layout).
    pub fn conflict_fraction(&self) -> f64 {
        if self.total_lines == 0 {
            0.0
        } else {
            self.excess_lines as f64 / self.total_lines as f64
        }
    }
}

/// Computes per-set occupancy counts for a group of regions in a cache of
/// `cfg` geometry. The returned vector has one entry per cache set.
pub fn set_occupancy(regions: &[Region], cfg: &CacheConfig) -> Vec<u32> {
    let sets = cfg.num_sets();
    let mut occupancy = vec![0u32; sets as usize];
    for r in regions {
        for line_addr in r.line_addrs(cfg.line_size) {
            let line = line_addr / cfg.line_size;
            occupancy[(line % sets) as usize] += 1;
        }
    }
    occupancy
}

/// Analyzes conflicts among `regions` placed in a cache of `cfg` geometry.
/// Associativity is accounted for: a set conflicts only when occupants
/// exceed the number of ways.
pub fn conflict_score(regions: &[Region], cfg: &CacheConfig) -> ConflictReport {
    let occupancy = set_occupancy(regions, cfg);
    let ways = cfg.associativity;
    let mut used = 0u64;
    let mut conflicting = 0u64;
    let mut excess = 0u64;
    for &o in &occupancy {
        if o > 0 {
            used += 1;
        }
        if o > ways {
            conflicting += 1;
            excess += (o - ways) as u64;
        }
    }
    ConflictReport {
        sets_used: used,
        conflicting_sets: conflicting,
        excess_lines: excess,
        total_lines: regions.iter().map(|r| r.lines(cfg.line_size)).sum(),
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn dm8k() -> CacheConfig {
        CacheConfig::direct_mapped(8192, 32)
    }

    #[test]
    fn contiguous_region_smaller_than_cache_never_self_conflicts() {
        let r = [Region::new(0x10000, 6 * 1024)];
        let rep = conflict_score(&r, &dm8k());
        assert_eq!(rep.excess_lines, 0);
        assert_eq!(rep.conflicting_sets, 0);
        assert_eq!(rep.sets_used, 192);
        assert_eq!(rep.conflict_fraction(), 0.0);
    }

    #[test]
    fn aliased_regions_conflict_fully() {
        // Two 1 KB regions exactly one cache size apart: total aliasing.
        let r = [Region::new(0x0, 1024), Region::new(8192, 1024)];
        let rep = conflict_score(&r, &dm8k());
        assert_eq!(rep.conflicting_sets, 32);
        assert_eq!(rep.excess_lines, 32);
        assert!((rep.conflict_fraction() - 0.5).abs() < 1e-12);
    }

    #[test]
    fn associativity_absorbs_pairs() {
        let two_way = CacheConfig {
            size_bytes: 8192,
            line_size: 32,
            associativity: 2,
        };
        let r = [Region::new(0x0, 1024), Region::new(4096, 1024)];
        // In the 2-way cache (4096-byte stride per way set range)…
        let rep = conflict_score(&r, &two_way);
        assert_eq!(rep.excess_lines, 0, "two-way absorbs a pair of aliases");
        // …but a third alias conflicts.
        let r3 = [
            Region::new(0x0, 1024),
            Region::new(4096, 1024),
            Region::new(8192, 1024),
        ];
        let rep = conflict_score(&r3, &two_way);
        assert_eq!(rep.excess_lines, 32);
    }

    #[test]
    fn occupancy_counts_every_line() {
        let r = [Region::new(0, 64), Region::new(8192, 32)];
        let occ = set_occupancy(&r, &dm8k());
        assert_eq!(occ[0], 2); // line 0 and its alias
        assert_eq!(occ[1], 1);
        assert_eq!(occ.iter().map(|&x| x as u64).sum::<u64>(), 3);
    }

    #[test]
    fn empty_input() {
        let rep = conflict_score(&[], &dm8k());
        assert_eq!(rep.total_lines, 0);
        assert_eq!(rep.conflict_fraction(), 0.0);
    }
}
