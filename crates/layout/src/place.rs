//! Placement strategies for function code.
//!
//! The paper averages over random placements; real systems use link-order
//! (sequential) placement, and tools like DEC's Cord reorder functions to
//! minimize conflicts among code that runs together. [`greedy_place`] is
//! a small Cord: it places functions one at a time, choosing the cache
//! colour that minimizes conflicts with already-placed functions of the
//! same execution group.

use crate::conflict::set_occupancy;
use cachesim::{CacheConfig, Region};
use rand::rngs::StdRng;
use rand::{RngExt, SeedableRng};

/// A function to place: size, and an execution-group id (functions in the
/// same group run together, e.g. all functions of one layer).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct PlacedFunction {
    /// Input index, so callers can map results back.
    pub index: usize,
    /// Where the function landed.
    pub region: Region,
    /// The group it belongs to.
    pub group: u32,
}

/// Places functions back to back from `base`, in input order (link
/// order), line-aligned.
pub fn sequential_place(
    sizes: &[(u64, u32)],
    base: u64,
    cfg: &CacheConfig,
) -> Vec<PlacedFunction> {
    let mut alloc = cachesim::AddressAllocator::new(base, cfg.line_size);
    sizes
        .iter()
        .enumerate()
        .map(|(index, &(size, group))| PlacedFunction {
            index,
            region: alloc.alloc(size),
            group,
        })
        .collect()
}

/// Places functions at seeded-random line-aligned addresses in `window`.
pub fn random_place(
    sizes: &[(u64, u32)],
    window: Region,
    cfg: &CacheConfig,
    seed: u64,
) -> Vec<PlacedFunction> {
    let mut place = cachesim::RandomPlacement::new(seed, window, cfg.line_size);
    sizes
        .iter()
        .enumerate()
        .map(|(index, &(size, group))| PlacedFunction {
            index,
            region: place.place(size),
            group,
        })
        .collect()
}

/// Greedy Cord-style placement: functions are placed largest-first, each
/// at the cache colour that minimizes within-group set conflicts with the
/// functions already placed. Functions are packed contiguously in memory
/// (the colour is chosen by inserting line-sized padding), so the result
/// wastes little space.
pub fn greedy_place(
    sizes: &[(u64, u32)],
    base: u64,
    cfg: &CacheConfig,
    seed: u64,
) -> Vec<PlacedFunction> {
    let sets = cfg.num_sets();
    let mut order: Vec<usize> = (0..sizes.len()).collect();
    order.sort_by_key(|&i| std::cmp::Reverse(sizes[i].0));
    // Jitter ties deterministically so equal-size functions don't all
    // pick the same colour.
    let mut rng = StdRng::seed_from_u64(seed);

    // Per-group set occupancy accumulated as we place.
    let mut group_regions: std::collections::BTreeMap<u32, Vec<Region>> = Default::default();
    let mut placed: Vec<Option<PlacedFunction>> = vec![None; sizes.len()];
    let mut cursor = cachesim::addr::align_up(base, cfg.line_size);

    for &i in &order {
        let (size, group) = sizes[i];
        let lines = size.div_ceil(cfg.line_size);
        let occupancy = set_occupancy(
            group_regions.get(&group).map(|v| v.as_slice()).unwrap_or(&[]),
            cfg,
        );
        // Try every starting colour; cost = conflicts the new function
        // would add against its own group.
        let natural_set = (cursor / cfg.line_size) % sets;
        let mut best_colour = 0u64;
        let mut best_cost = u64::MAX;
        for colour in 0..sets {
            let mut cost = 0u64;
            for l in 0..lines.min(sets) {
                let s = ((natural_set + colour + l) % sets) as usize;
                cost += occupancy[s] as u64;
            }
            // Padding wasted to reach this colour is a tiebreaker.
            let cost = cost * 1000 + colour.min(sets - colour);
            if cost < best_cost || (cost == best_cost && rng.random::<bool>()) {
                best_cost = cost;
                best_colour = colour;
            }
        }
        let start = cursor + best_colour * cfg.line_size;
        let region = Region::new(start, size);
        cursor = cachesim::addr::align_up(start + size, cfg.line_size);
        group_regions.entry(group).or_default().push(region);
        placed[i] = Some(PlacedFunction {
            index: i,
            region,
            group,
        });
    }
    placed.into_iter().map(|p| p.expect("all placed")).collect()
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::conflict::conflict_score;

    fn dm8k() -> CacheConfig {
        CacheConfig::direct_mapped(8192, 32)
    }

    fn regions_of(placed: &[PlacedFunction], group: u32) -> Vec<Region> {
        placed
            .iter()
            .filter(|p| p.group == group)
            .map(|p| p.region)
            .collect()
    }

    #[test]
    fn sequential_is_disjoint_and_ordered() {
        let sizes = [(100, 0), (200, 0), (64, 1)];
        let placed = sequential_place(&sizes, 0x1000, &dm8k());
        assert!(placed[0].region.base < placed[1].region.base);
        assert!(placed[1].region.base < placed[2].region.base);
        for (i, a) in placed.iter().enumerate() {
            for b in &placed[i + 1..] {
                assert!(!a.region.overlaps(&b.region));
            }
        }
    }

    #[test]
    fn random_is_deterministic_and_disjoint() {
        let sizes = [(4096, 0), (4096, 0), (2048, 1)];
        let window = Region::new(0, 1 << 20);
        let a = random_place(&sizes, window, &dm8k(), 4);
        let b = random_place(&sizes, window, &dm8k(), 4);
        assert_eq!(a, b);
        for (i, x) in a.iter().enumerate() {
            for y in &a[i + 1..] {
                assert!(!x.region.overlaps(&y.region));
            }
        }
    }

    #[test]
    fn greedy_beats_random_on_within_group_conflicts() {
        // A group of eight 3 KB functions: 24 KB in an 8 KB cache cannot
        // avoid conflicts entirely, but greedy colouring should beat the
        // average random placement.
        let sizes: Vec<(u64, u32)> = (0..8).map(|_| (3 * 1024, 0u32)).collect();
        let cfg = dm8k();
        let greedy = greedy_place(&sizes, 0x1000, &cfg, 1);
        let g = conflict_score(&regions_of(&greedy, 0), &cfg);
        let mut random_excess = 0u64;
        let runs = 10;
        for seed in 0..runs {
            let r = random_place(&sizes, Region::new(0, 1 << 21), &cfg, seed);
            random_excess += conflict_score(&regions_of(&r, 0), &cfg).excess_lines;
        }
        let random_avg = random_excess as f64 / runs as f64;
        assert!(
            (g.excess_lines as f64) <= random_avg,
            "greedy {} should not exceed random average {random_avg}",
            g.excess_lines
        );
    }

    #[test]
    fn greedy_layer_fitting_cache_has_no_self_conflicts() {
        // Four 1.5 KB functions of one layer: 6 KB fits an 8 KB cache, so
        // a good placer should find a conflict-free layout (the paper's
        // "no self-conflicts within a layer" assumption).
        let sizes: Vec<(u64, u32)> = (0..4).map(|_| (1536, 0u32)).collect();
        let cfg = dm8k();
        let placed = greedy_place(&sizes, 0x2000, &cfg, 2);
        let rep = conflict_score(&regions_of(&placed, 0), &cfg);
        assert_eq!(rep.excess_lines, 0, "6 KB layer should place cleanly");
    }

    #[test]
    fn greedy_output_is_disjoint() {
        let sizes: Vec<(u64, u32)> = (0..10).map(|i| (512 + i * 100, (i % 3) as u32)).collect();
        let placed = greedy_place(&sizes, 0, &dm8k(), 3);
        for (i, a) in placed.iter().enumerate() {
            assert_eq!(a.index, i);
            for b in &placed[i + 1..] {
                assert!(!a.region.overlaps(&b.region), "{a:?} vs {b:?}");
            }
        }
    }
}
