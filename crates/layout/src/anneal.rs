//! Simulated-annealing code placement.
//!
//! The greedy placer ([`crate::place::greedy_place`]) colours functions
//! one at a time; annealing explores reorderings globally, trading
//! placement time for fewer conflicts. This is the "measure their working
//! sets, and then decide how to group them to maximize locality" workflow
//! the paper's conclusion recommends, automated.
//!
//! Functions are kept packed (contiguous, in some order, with line
//! alignment); the optimizer permutes the order to minimize the
//! within-group conflict score. A deterministic seeded annealer with
//! geometric cooling.

use crate::conflict::conflict_score;
use crate::place::PlacedFunction;
use cachesim::{CacheConfig, Region};
use rand::rngs::StdRng;
use rand::{RngExt, SeedableRng};

/// Annealer parameters.
#[derive(Debug, Clone, Copy)]
pub struct AnnealConfig {
    /// Proposal steps.
    pub steps: u32,
    /// Initial temperature, in units of conflict-score delta.
    pub t0: f64,
    /// Geometric cooling factor per step.
    pub cooling: f64,
}

impl Default for AnnealConfig {
    fn default() -> Self {
        AnnealConfig {
            steps: 2000,
            t0: 8.0,
            cooling: 0.998,
        }
    }
}

/// Places functions by annealing their packing order to minimize the sum
/// of within-group excess lines. Returns placements in input order.
pub fn anneal_place(
    sizes: &[(u64, u32)],
    base: u64,
    cfg: &CacheConfig,
    seed: u64,
    params: AnnealConfig,
) -> Vec<PlacedFunction> {
    let n = sizes.len();
    if n == 0 {
        return Vec::new();
    }
    let mut rng = StdRng::seed_from_u64(seed);
    let mut order: Vec<usize> = (0..n).collect();
    let mut best_order = order.clone();
    let mut current = cost(&order, sizes, base, cfg);
    let mut best = current;
    let mut temp = params.t0;

    for _ in 0..params.steps {
        // Propose swapping two positions.
        let i = rng.random_range(0..n);
        let j = rng.random_range(0..n);
        if i == j {
            temp *= params.cooling;
            continue;
        }
        order.swap(i, j);
        let proposed = cost(&order, sizes, base, cfg);
        let delta = proposed as f64 - current as f64;
        let accept = delta <= 0.0
            || (temp > 1e-9 && rng.random::<f64>() < (-delta / temp).exp());
        if accept {
            current = proposed;
            if current < best {
                best = current;
                best_order = order.clone();
            }
        } else {
            order.swap(i, j); // revert
        }
        temp *= params.cooling;
    }

    layout(&best_order, sizes, base, cfg)
}

/// Packs functions in `order` and returns the total within-group excess
/// lines (the annealer's objective).
fn cost(order: &[usize], sizes: &[(u64, u32)], base: u64, cfg: &CacheConfig) -> u64 {
    let placed = layout(order, sizes, base, cfg);
    let mut groups: std::collections::BTreeMap<u32, Vec<Region>> = Default::default();
    for p in &placed {
        groups.entry(p.group).or_default().push(p.region);
    }
    groups
        .values()
        .map(|rs| conflict_score(rs, cfg).excess_lines)
        .sum()
}

fn layout(order: &[usize], sizes: &[(u64, u32)], base: u64, cfg: &CacheConfig) -> Vec<PlacedFunction> {
    let mut alloc = cachesim::AddressAllocator::new(base, cfg.line_size);
    let mut placed: Vec<Option<PlacedFunction>> = vec![None; sizes.len()];
    for &i in order {
        let (size, group) = sizes[i];
        placed[i] = Some(PlacedFunction {
            index: i,
            region: alloc.alloc(size),
            group,
        });
    }
    placed.into_iter().map(|p| p.expect("all placed")).collect()
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::place::random_place;

    fn dm8k() -> CacheConfig {
        CacheConfig::direct_mapped(8192, 32)
    }

    fn group_excess(placed: &[PlacedFunction], cfg: &CacheConfig) -> u64 {
        let mut groups: std::collections::BTreeMap<u32, Vec<Region>> = Default::default();
        for p in placed {
            groups.entry(p.group).or_default().push(p.region);
        }
        groups
            .values()
            .map(|rs| conflict_score(rs, cfg).excess_lines)
            .sum()
    }

    #[test]
    fn annealing_packs_groups_conflict_free_when_they_fit() {
        // Two groups of 4 x 1.5 KB, interleaved in input order: packed
        // naively each group's functions straddle the whole 12 KB span
        // and alias; a good ordering clusters each group into a
        // conflict-free 6 KB run.
        let mut sizes = Vec::new();
        for _ in 0..4 {
            sizes.push((1536u64, 0u32));
            sizes.push((1536u64, 1u32));
        }
        let cfg = dm8k();
        let placed = anneal_place(&sizes, 0x1000, &cfg, 7, AnnealConfig::default());
        assert_eq!(
            group_excess(&placed, &cfg),
            0,
            "both 6 KB groups should place without self-conflicts"
        );
        // Results are disjoint and cover every input.
        for (i, a) in placed.iter().enumerate() {
            assert_eq!(a.index, i);
            for b in &placed[i + 1..] {
                assert!(!a.region.overlaps(&b.region));
            }
        }
    }

    #[test]
    fn annealing_beats_random_on_average() {
        let sizes: Vec<(u64, u32)> = (0..12)
            .map(|i| (1024 + (i % 4) * 512, (i % 3) as u32))
            .collect();
        let cfg = dm8k();
        let annealed = anneal_place(&sizes, 0, &cfg, 3, AnnealConfig::default());
        let a_cost = group_excess(&annealed, &cfg);
        let mut r_cost = 0;
        for seed in 0..8 {
            let r = random_place(&sizes, Region::new(0, 1 << 21), &cfg, seed);
            r_cost += group_excess(&r, &cfg);
        }
        assert!(
            a_cost as f64 <= r_cost as f64 / 8.0,
            "annealed {a_cost} should beat random average {}",
            r_cost as f64 / 8.0
        );
    }

    #[test]
    fn deterministic_per_seed() {
        let sizes: Vec<(u64, u32)> = (0..6).map(|i| (800 + i * 100, 0u32)).collect();
        let cfg = dm8k();
        let a = anneal_place(&sizes, 0, &cfg, 5, AnnealConfig::default());
        let b = anneal_place(&sizes, 0, &cfg, 5, AnnealConfig::default());
        assert_eq!(a, b);
    }

    #[test]
    fn empty_input() {
        assert!(anneal_place(&[], 0, &dm8k(), 1, AnnealConfig::default()).is_empty());
    }
}
