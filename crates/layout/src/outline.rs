//! The basic-block outlining model (Section 5.4).
//!
//! Mosberger et al. move rarely-executed basic blocks to the end of
//! functions so the hot path packs densely into cache lines. The paper
//! estimates ~25% of fetched instruction bytes in the TCP/IP trace never
//! execute, so "a perfectly dense cache layout would reduce the number of
//! cache lines in the working set by about 25%". This module turns a set
//! of (size, touched-bytes) functions into their outlined equivalents and
//! quantifies the saving.

/// A function before outlining: total size and hot (executed) bytes.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct HotColdFunction {
    /// Full size in bytes.
    pub size: u64,
    /// Bytes executed on the path of interest.
    pub hot_bytes: u64,
}

/// The outcome of outlining a set of functions.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct OutlineReport {
    /// Working-set lines before outlining (hot bytes diluted across the
    /// original layout, at `dilution` density).
    pub lines_before: u64,
    /// Working-set lines after outlining (hot bytes packed densely).
    pub lines_after: u64,
    /// Cold bytes moved out of the hot region.
    pub cold_bytes_moved: u64,
}

impl OutlineReport {
    /// Fractional reduction in working-set lines.
    pub fn reduction(&self) -> f64 {
        if self.lines_before == 0 {
            0.0
        } else {
            1.0 - self.lines_after as f64 / self.lines_before as f64
        }
    }
}

/// Computes the outlining effect at `line_size` for functions whose hot
/// bytes are spread over lines at density `hot_density` (the paper
/// measured ~0.75 executed bytes per fetched byte; pass the measured
/// dilution from `memtrace::dilution` for trace-accurate numbers).
pub fn outline(funcs: &[HotColdFunction], line_size: u64, hot_density: f64) -> OutlineReport {
    assert!(hot_density > 0.0 && hot_density <= 1.0);
    let mut before = 0u64;
    let mut after = 0u64;
    let mut moved = 0u64;
    for f in funcs {
        let hot = f.hot_bytes.min(f.size);
        // Diluted layout: hot bytes occupy hot/density bytes of lines.
        let spread = (hot as f64 / hot_density).min(f.size as f64);
        before += (spread as u64).div_ceil(line_size);
        // Outlined: hot bytes pack densely at the function head.
        after += hot.div_ceil(line_size);
        moved += f.size - hot;
    }
    OutlineReport {
        lines_before: before,
        lines_after: after,
        cold_bytes_moved: moved,
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn quarter_dilution_gives_quarter_reduction() {
        // One big function, 75% density: outlining saves ~25% of lines.
        let funcs = [HotColdFunction {
            size: 40_960,
            hot_bytes: 24_576,
        }];
        let rep = outline(&funcs, 32, 0.75);
        assert!(
            (rep.reduction() - 0.25).abs() < 0.01,
            "reduction {}",
            rep.reduction()
        );
        assert_eq!(rep.cold_bytes_moved, 40_960 - 24_576);
    }

    #[test]
    fn fully_hot_function_gains_nothing() {
        let funcs = [HotColdFunction {
            size: 1024,
            hot_bytes: 1024,
        }];
        let rep = outline(&funcs, 32, 1.0);
        assert_eq!(rep.lines_before, rep.lines_after);
        assert_eq!(rep.reduction(), 0.0);
    }

    #[test]
    fn spread_is_capped_by_function_size() {
        // Tiny density cannot spread hot bytes beyond the function.
        let funcs = [HotColdFunction {
            size: 320,
            hot_bytes: 300,
        }];
        let rep = outline(&funcs, 32, 0.1);
        assert_eq!(rep.lines_before, 10, "capped at the 320-byte function");
    }

    #[test]
    fn empty_input() {
        let rep = outline(&[], 32, 0.75);
        assert_eq!(rep.reduction(), 0.0);
    }
}
