//! # layout — code placement and cache-conflict analysis
//!
//! The paper's synthetic results assume "a good cache layout for each
//! individual layer ... no self-conflicts. Such a good layout is probably
//! feasible with commonly available tools such as Cord" (Section 4), and
//! Section 5.4 quantifies how much working set a dense, outlined layout
//! saves. This crate provides the placement substrate:
//!
//! * [`conflict`] — conflict metrics: how many cache sets a group of code
//!   regions over-subscribes, and the expected extra misses that causes.
//! * [`place`] — placement strategies: sequential (link order), seeded
//!   random (the paper's averaging methodology), and a greedy
//!   Cord-style placer that chooses each function's cache colour to
//!   minimize conflicts with the functions it runs with.
//! * [`outline`] — the Mosberger-style basic-block outlining model: given
//!   function sizes and touched-byte counts, computes the dense layout's
//!   working set (used by the dilution ablation).

pub mod anneal;
pub mod conflict;
pub mod outline;
pub mod place;

pub use anneal::{anneal_place, AnnealConfig};
pub use conflict::{conflict_score, set_occupancy, ConflictReport};
pub use place::{greedy_place, random_place, sequential_place, PlacedFunction};
