#!/usr/bin/env python3
"""Plot the regenerated figures from the CSVs in this directory.

Usage:
    cargo run --release -p bench --bin all_experiments
    python3 results/plot.py [outdir]

Produces one PNG per paper figure, visually comparable to the originals
(log-scale latency axes, the same series). Requires matplotlib; the CSVs
are the ground truth and render fine in any other tool if it is absent.
"""

import csv
import sys
from pathlib import Path

try:
    import matplotlib

    matplotlib.use("Agg")
    import matplotlib.pyplot as plt
except ImportError:
    sys.exit("matplotlib not available; the CSVs remain usable as-is")

HERE = Path(__file__).parent
OUT = Path(sys.argv[1]) if len(sys.argv) > 1 else HERE


def read(name):
    with open(HERE / name) as fh:
        rows = list(csv.DictReader(fh))
    return {k: [float(r[k]) for r in rows] for k in rows[0]}


def save(fig, name):
    fig.tight_layout()
    fig.savefig(OUT / name, dpi=150)
    print(f"wrote {OUT / name}")


def figure5():
    d = read("figure5.csv")
    fig, ax = plt.subplots(figsize=(6, 4))
    ax.plot(d["rate"], d["conv_imiss"], "k-", label="Conventional I")
    ax.plot(d["rate"], d["conv_dmiss"], "k--", label="Conventional D")
    ax.plot(d["rate"], d["ldlp_imiss"], "b-", label="LDLP I")
    ax.plot(d["rate"], d["ldlp_dmiss"], "b--", label="LDLP D")
    ax.set_xlabel("Arrival rate (msgs/sec)")
    ax.set_ylabel("Cache misses per message")
    ax.set_title("Figure 5: cache misses vs. arrival rate (Poisson)")
    ax.legend()
    save(fig, "figure5.png")


def figure6():
    d = read("figure6.csv")
    fig, ax = plt.subplots(figsize=(6, 4))
    ax.semilogy(d["rate"], d["conv_latency_us"], "k-", label="Conventional")
    ax.semilogy(d["rate"], d["ldlp_latency_us"], "b-", label="LDLP")
    ax.set_xlabel("Arrival rate (msgs/sec)")
    ax.set_ylabel("Latency (us)")
    ax.set_title("Figure 6: latency vs. arrival rate (Poisson)")
    ax.legend()
    save(fig, "figure6.png")


def figure7():
    d = read("figure7.csv")
    fig, ax = plt.subplots(figsize=(6, 4))
    ax.semilogy(d["clock_mhz"], d["conv_latency_us"], "k-", label="Conventional")
    ax.semilogy(d["clock_mhz"], d["ldlp_latency_us"], "b-", label="LDLP")
    ax.set_xlabel("CPU clock (MHz)")
    ax.set_ylabel("Latency (us)")
    ax.set_title("Figure 7: latency vs. CPU speed (self-similar traffic)")
    ax.legend()
    save(fig, "figure7.png")


def figure8():
    d = read("figure8.csv")
    fig, ax = plt.subplots(figsize=(6, 4))
    ax.plot(d["size"], d["elaborate_cold"], "k-", label="4.4BSD, cold")
    ax.plot(d["size"], d["simple_cold"], "b-", label="Simple, cold")
    ax.plot(d["size"], d["elaborate_warm"], "k--", label="4.4BSD, warm")
    ax.plot(d["size"], d["simple_warm"], "b--", label="Simple, warm")
    ax.set_xlabel("Message size (bytes)")
    ax.set_ylabel("Time (CPU cycles)")
    ax.set_title("Figure 8: cache effects in checksum routines")
    ax.legend()
    save(fig, "figure8.png")


def signaling():
    d = read("signaling_goal.csv")
    fig, ax = plt.subplots(figsize=(6, 4))
    ax.semilogy(d["pairs_per_s"], d["conv_latency_us"], "k-o", label="Conventional")
    ax.semilogy(d["pairs_per_s"], d["ldlp_latency_us"], "b-o", label="LDLP")
    ax.axhline(100, color="gray", linestyle=":", label="100 us goal")
    ax.set_xlabel("Setup/teardown pairs per second")
    ax.set_ylabel("Mean latency (us)")
    ax.set_title("Signalling goal: 10k pairs/sec (Section 1)")
    ax.legend()
    save(fig, "signaling_goal.png")


def main():
    for fn in (figure5, figure6, figure7, figure8, signaling):
        try:
            fn()
        except FileNotFoundError as e:
            print(f"skipping {fn.__name__}: {e}")


if __name__ == "__main__":
    main()
