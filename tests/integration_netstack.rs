//! End-to-end tests of the functional stack at the interface level: real
//! frames over in-process links, including adverse conditions (smoltcp's
//! fault-injection style).

use netstack::iface::{Channel, Device, FaultConfig, Interface};
use netstack::ipfrag::REASSEMBLY_TIMEOUT_MS;
use netstack::tcp::machine::{TcpConfig, TcpEvent, TcpStack};
use netstack::tcp::pcb::TcpState;
use netstack::wire::ethernet::EthernetAddr;
use netstack::wire::ipv4::Ipv4Addr;

fn host(n: u8) -> Interface {
    Interface::new(
        EthernetAddr([2, 0, 0, 0, 0, n]),
        Ipv4Addr::new(192, 168, 69, n),
        TcpStack::new(TcpConfig::default()),
    )
}

/// Pumps both interfaces until two consecutive quiet rounds.
fn settle(a: &mut Interface, ad: &mut Channel, b: &mut Interface, bd: &mut Channel, now: u64) {
    let mut quiet = 0;
    let mut rounds = 0;
    while quiet < 2 {
        let n = a.poll(ad, now) + b.poll(bd, now);
        a.flush_tcp(ad);
        b.flush_tcp(bd);
        quiet = if n == 0 { quiet + 1 } else { 0 };
        rounds += 1;
        assert!(rounds < 10_000, "link did not quiesce");
    }
}

fn accepted_socket(s: &mut Interface) -> usize {
    s.tcp
        .take_events()
        .iter()
        .find_map(|(id, e)| matches!(e, TcpEvent::Accepted { .. }).then_some(*id))
        .expect("a connection was accepted")
}

#[test]
fn tcp_through_interfaces_with_arp() {
    let (mut ad, mut bd) = Channel::pair();
    let mut a = host(1);
    let mut b = host(2);
    b.tcp.listen(b.ip(), 7).unwrap();
    let b_ip = b.ip();
    let a_ip = a.ip();
    let conn = a.tcp.connect(a_ip, b_ip, 7, 0).unwrap();
    // No ARP entries: the SYN triggers resolution first.
    settle(&mut a, &mut ad, &mut b, &mut bd, 0);
    assert_eq!(a.tcp.state(conn), TcpState::Established);
    let srv = accepted_socket(&mut b);

    a.tcp.send(conn, b"echo me", 1).unwrap();
    settle(&mut a, &mut ad, &mut b, &mut bd, 1);
    let mut buf = [0u8; 16];
    let n = b.tcp.recv(srv, &mut buf).unwrap();
    assert_eq!(&buf[..n], b"echo me");
}

#[test]
fn tcp_transfer_survives_frame_loss() {
    // Drop every 7th frame; TCP retransmission must recover everything.
    let (mut ad, mut bd) = Channel::pair_with_faults(Some(FaultConfig {
        drop_every: 7,
        corrupt_every: 0,
    }));
    let mut a = host(1);
    let mut b = host(2);
    // Pre-seed ARP so the loss schedule hits TCP, not resolution.
    let (b_ip, b_mac, a_ip, a_mac) = (b.ip(), b.mac(), a.ip(), a.mac());
    a.add_arp_entry(b_ip, b_mac);
    b.add_arp_entry(a_ip, a_mac);
    b.tcp.listen(b_ip, 9).unwrap();
    let conn = a.tcp.connect(a_ip, b_ip, 9, 0).unwrap();

    let mut now = 0u64;
    // Establish, retrying through losses via the retransmit timer.
    while a.tcp.state(conn) != TcpState::Established {
        settle(&mut a, &mut ad, &mut b, &mut bd, now);
        now += 1100; // beyond the initial RTO
        a.tcp.poll(now);
        b.tcp.poll(now);
        a.flush_tcp(&mut ad);
        b.flush_tcp(&mut bd);
        assert!(now < 600_000, "handshake never completed");
    }
    let srv = accepted_socket(&mut b);

    let payload: Vec<u8> = (0..8000u32).map(|i| (i % 241) as u8).collect();
    let mut sent = 0;
    let mut received = Vec::new();
    let mut buf = [0u8; 2048];
    while received.len() < payload.len() {
        if sent < payload.len() {
            sent += a
                .tcp
                .send(conn, &payload[sent..(sent + 1000).min(payload.len())], now)
                .unwrap();
        }
        settle(&mut a, &mut ad, &mut b, &mut bd, now);
        loop {
            let n = b.tcp.recv(srv, &mut buf).unwrap();
            if n == 0 {
                break;
            }
            received.extend_from_slice(&buf[..n]);
        }
        // Advance past RTO so lost segments get retransmitted.
        now += 1100;
        a.tcp.poll(now);
        b.tcp.poll(now);
        a.flush_tcp(&mut ad);
        b.flush_tcp(&mut bd);
        assert!(now < 2_000_000, "transfer stalled at {} bytes", received.len());
    }
    assert_eq!(received, payload, "all data recovered despite 1/7 loss");
    assert!(a.tcp.stats().retransmits > 0, "losses actually happened");
}

#[test]
fn corrupted_tcp_segments_are_rejected_and_recovered() {
    let (mut ad, mut bd) = Channel::pair_with_faults(Some(FaultConfig {
        drop_every: 0,
        corrupt_every: 9,
    }));
    let mut a = host(1);
    let mut b = host(2);
    let (b_ip, b_mac, a_ip, a_mac) = (b.ip(), b.mac(), a.ip(), a.mac());
    a.add_arp_entry(b_ip, b_mac);
    b.add_arp_entry(a_ip, a_mac);
    b.tcp.listen(b_ip, 9).unwrap();
    let conn = a.tcp.connect(a_ip, b_ip, 9, 0).unwrap();

    let mut now = 0u64;
    while a.tcp.state(conn) != TcpState::Established && now < 300_000 {
        settle(&mut a, &mut ad, &mut b, &mut bd, now);
        now += 1100;
        a.tcp.poll(now);
        b.tcp.poll(now);
        a.flush_tcp(&mut ad);
        b.flush_tcp(&mut bd);
    }
    assert_eq!(a.tcp.state(conn), TcpState::Established);
    let srv = accepted_socket(&mut b);

    let mut received = Vec::new();
    let mut buf = [0u8; 512];
    a.tcp.send(conn, &[0x5a; 3000], now).unwrap();
    while received.len() < 3000 {
        settle(&mut a, &mut ad, &mut b, &mut bd, now);
        loop {
            let n = b.tcp.recv(srv, &mut buf).unwrap();
            if n == 0 {
                break;
            }
            received.extend_from_slice(&buf[..n]);
        }
        now += 1100;
        a.tcp.poll(now);
        b.tcp.poll(now);
        a.flush_tcp(&mut ad);
        b.flush_tcp(&mut bd);
        assert!(now < 2_000_000, "stalled at {} bytes", received.len());
    }
    // Checksums caught the corruption somewhere along the way.
    let errors = a.stats().parse_errors + b.stats().parse_errors;
    assert!(errors > 0, "corruption should have been detected");
    assert!(received.iter().all(|&b| b == 0x5a), "no corrupt data delivered");
}

#[test]
fn udp_echo_application() {
    let (mut ad, mut bd) = Channel::pair();
    let mut client = host(1);
    let mut server = host(2);
    server.udp_bind(6969).unwrap();
    client.udp_bind(5000).unwrap();

    for i in 0..10u8 {
        let server_ip = server.ip();
        client.udp_send(&mut ad, 5000, server_ip, 6969, &[i; 32]);
    }
    settle(&mut client, &mut ad, &mut server, &mut bd, 0);
    // The server application reverses each datagram back.
    let mut echoed = 0;
    while let Some(dg) = server.udp_recv(6969) {
        let reply: Vec<u8> = dg.payload.iter().rev().copied().collect();
        server.udp_send(&mut bd, 6969, dg.src_addr, dg.src_port, &reply);
        echoed += 1;
    }
    assert_eq!(echoed, 10);
    settle(&mut client, &mut ad, &mut server, &mut bd, 0);
    let mut got = 0;
    while let Some(dg) = client.udp_recv(5000) {
        assert_eq!(dg.payload.len(), 32);
        got += 1;
    }
    assert_eq!(got, 10);
}

#[test]
fn ping_storm_all_answered() {
    let (mut ad, mut bd) = Channel::pair();
    let mut a = host(1);
    let mut b = host(2);
    for seq in 0..50u16 {
        let b_ip = b.ip();
        a.ping(&mut ad, b_ip, 0x77, seq, &seq.to_be_bytes());
    }
    settle(&mut a, &mut ad, &mut b, &mut bd, 0);
    let mut seen = std::collections::BTreeSet::new();
    while let Some(reply) = a.take_echo_reply() {
        assert_eq!(reply.ident, 0x77);
        assert_eq!(reply.payload, reply.seq.to_be_bytes());
        seen.insert(reply.seq);
    }
    assert_eq!(seen.len(), 50, "every echo answered exactly once");
    assert_eq!(b.stats().icmp_echo_replies, 50);
}

#[test]
fn loopback_device_carries_self_traffic() {
    use netstack::iface::Loopback;
    let mut lo = Loopback::new();
    let mut a = host(1);
    // Ping ourselves through the loopback device.
    let self_ip = a.ip();
    a.ping(&mut lo, self_ip, 1, 1, b"self");
    // First poll processes the request and emits the reply; the second
    // delivers the reply back to us.
    a.poll(&mut lo, 0);
    a.poll(&mut lo, 0);
    let reply = a.take_echo_reply().expect("self-ping answered");
    assert_eq!(reply.payload, b"self");
}

#[test]
fn ip_reassembly_times_out_and_reclaims_the_buffer() {
    let (mut ad, mut bd) = Channel::pair();
    let mut a = host(1);
    let mut b = host(2);
    let (b_ip, b_mac, a_ip, a_mac) = (b.ip(), b.mac(), a.ip(), a.mac());
    a.add_arp_entry(b_ip, b_mac);
    b.add_arp_entry(a_ip, a_mac);
    b.udp_bind(4000).unwrap();

    // A 3000-byte datagram fragments into three pieces on a 1500 MTU.
    a.udp_send(&mut ad, 4001, b_ip, 4000, &[0xab; 3000]);
    assert!(a.stats().fragments_out >= 3, "datagram was fragmented");
    // The first fragment falls on the floor; the rest arrive.
    bd.receive().expect("fragment in flight");
    b.poll(&mut bd, 0);
    assert_eq!(b.reassembly_pending(), 1, "half a datagram is buffered");
    assert!(b.udp_recv(4000).is_none(), "incomplete datagram not delivered");

    // Nothing further arrives; the reassembly timer fires on a later
    // idle poll and reclaims the buffer.
    b.poll(&mut bd, REASSEMBLY_TIMEOUT_MS + 1);
    assert_eq!(b.reassembly_pending(), 0, "stalled reassembly reclaimed");
    assert_eq!(b.reassembly_stats().timeouts, 1);
    assert_eq!(b.reassembly_stats().datagrams_completed, 0);
    assert!(b.udp_recv(4000).is_none(), "expired fragments yield nothing");

    // A fresh, complete datagram still reassembles afterwards.
    a.udp_send(&mut ad, 4001, b_ip, 4000, &[0xcd; 3000]);
    b.poll(&mut bd, REASSEMBLY_TIMEOUT_MS + 2);
    let dg = b.udp_recv(4000).expect("post-timeout datagram reassembled");
    assert_eq!(dg.payload.len(), 3000);
    assert!(dg.payload.iter().all(|&x| x == 0xcd));
    assert_eq!(b.reassembly_stats().datagrams_completed, 1);
}

#[test]
fn tcp_buffers_out_of_order_segments_and_delivers_in_order() {
    let (mut ad, mut bd) = Channel::pair();
    let mut a = host(1);
    let mut b = host(2);
    let (b_ip, b_mac, a_ip, a_mac) = (b.ip(), b.mac(), a.ip(), a.mac());
    a.add_arp_entry(b_ip, b_mac);
    b.add_arp_entry(a_ip, a_mac);
    b.tcp.listen(b_ip, 9).unwrap();
    let conn = a.tcp.connect(a_ip, b_ip, 9, 0).unwrap();
    settle(&mut a, &mut ad, &mut b, &mut bd, 0);
    assert_eq!(a.tcp.state(conn), TcpState::Established);
    let srv = accepted_socket(&mut b);

    // Two segments, flushed separately so each rides its own frame...
    a.tcp.send(conn, b"first.", 1).unwrap();
    a.tcp.send(conn, b"second", 1).unwrap();
    a.flush_tcp(&mut ad);
    let f1 = bd.receive().expect("segment 1");
    let f2 = bd.receive().expect("segment 2");
    assert!(bd.receive().is_none(), "exactly two segments in flight");

    // ...delivered to the receiver in the wrong order. The second
    // segment lands beyond rcv_nxt and must be buffered, not dropped.
    b.input_frame(&mut bd, &f2, 1).unwrap();
    assert_eq!(b.tcp.stats().ooo_buffered, 1, "gap segment buffered");
    assert_eq!(b.tcp.recv_available(srv), 0, "nothing readable past the gap");
    b.input_frame(&mut bd, &f1, 1).unwrap();
    settle(&mut a, &mut ad, &mut b, &mut bd, 1);

    let mut buf = [0u8; 32];
    let n = b.tcp.recv(srv, &mut buf).unwrap();
    assert_eq!(&buf[..n], b"first.second", "stream healed in order");

    // A verbatim duplicate of an already-consumed segment is discarded.
    b.input_frame(&mut bd, &f1, 1).unwrap();
    settle(&mut a, &mut ad, &mut b, &mut bd, 1);
    assert_eq!(b.tcp.recv_available(srv), 0, "duplicate delivered no bytes");
}

#[test]
fn corrupted_frames_are_rejected_by_checksum_not_delivered() {
    // Corrupt every frame: the payload byte flip must be caught by the
    // UDP checksum and counted, and no damaged datagram may surface.
    let (mut ad, mut bd) = Channel::pair_with_faults(Some(FaultConfig {
        drop_every: 0,
        corrupt_every: 1,
    }));
    let mut a = host(1);
    let mut b = host(2);
    let (b_ip, b_mac, a_ip, a_mac) = (b.ip(), b.mac(), a.ip(), a.mac());
    a.add_arp_entry(b_ip, b_mac);
    b.add_arp_entry(a_ip, a_mac);
    b.udp_bind(4000).unwrap();

    for i in 0..5u8 {
        a.udp_send(&mut ad, 4001, b_ip, 4000, &[i; 64]);
    }
    b.poll(&mut bd, 0);
    assert!(b.udp_recv(4000).is_none(), "no corrupted datagram delivered");
    assert_eq!(b.stats().parse_errors, 5, "every flipped frame was rejected");

    // The same traffic over a clean link goes straight through.
    let (mut ad2, mut bd2) = Channel::pair();
    for i in 0..5u8 {
        a.udp_send(&mut ad2, 4001, b_ip, 4000, &[i; 64]);
    }
    b.poll(&mut bd2, 0);
    let mut got = 0;
    while let Some(dg) = b.udp_recv(4000) {
        assert_eq!(dg.payload.len(), 64);
        got += 1;
    }
    assert_eq!(got, 5);
}

#[test]
fn device_trait_is_object_safe_and_composable() {
    // The Device trait must support dynamic dispatch (drivers get swapped
    // under a stack at runtime).
    let (ad, _bd) = Channel::pair();
    let mut boxed: Box<dyn Device> = Box::new(ad);
    boxed.transmit(vec![1, 2, 3]);
    assert_eq!(boxed.receive(), None, "a->b queue is not a's receive side");
}
