//! Property-based tests on the core data structures and invariants,
//! spanning crates: checksum equivalence, wire-format round trips, mbuf
//! chains against a reference model, reference sets against a brute-force
//! model, cache accounting invariants, and sequence-number algebra.

use proptest::prelude::*;

// ---------------------------------------------------------------------
// Checksums
// ---------------------------------------------------------------------

proptest! {
    /// The simple and elaborate routines are the same function.
    #[test]
    fn checksum_routines_equivalent(data in proptest::collection::vec(any::<u8>(), 0..2048)) {
        prop_assert_eq!(netstack::checksum::simple(&data), netstack::checksum::elaborate(&data));
    }

    /// A buffer containing its own checksum verifies to zero.
    #[test]
    fn checksum_self_verifies(mut data in proptest::collection::vec(any::<u8>(), 2..512)) {
        // Force even length so the checksum slot is a whole word.
        if data.len() % 2 == 1 { data.pop(); }
        let ck = netstack::checksum::simple(&data);
        data.extend_from_slice(&ck.to_be_bytes());
        prop_assert_eq!(netstack::checksum::simple(&data), 0);
    }

    /// RFC 1624 incremental update equals full recomputation.
    #[test]
    fn checksum_incremental_update(
        mut data in proptest::collection::vec(any::<u8>(), 4..256),
        idx in 0usize..100,
        new_word in any::<u16>(),
    ) {
        if data.len() % 2 == 1 { data.pop(); }
        // A word-aligned index strictly inside the buffer.
        let idx = (idx % (data.len() / 2)) * 2;
        let old = netstack::checksum::simple(&data);
        let old_word = u16::from_be_bytes([data[idx], data[idx + 1]]);
        data[idx..idx + 2].copy_from_slice(&new_word.to_be_bytes());
        prop_assert_eq!(
            netstack::checksum::update_word(old, old_word, new_word),
            netstack::checksum::simple(&data)
        );
    }
}

// ---------------------------------------------------------------------
// Wire formats round-trip
// ---------------------------------------------------------------------

proptest! {
    #[test]
    fn ethernet_round_trip(dst in any::<[u8; 6]>(), src in any::<[u8; 6]>(),
                           ethertype in any::<u16>(),
                           payload in proptest::collection::vec(any::<u8>(), 0..256)) {
        use netstack::wire::ethernet::*;
        let r = EthernetRepr {
            dst: EthernetAddr(dst),
            src: EthernetAddr(src),
            ethertype: ethertype.into(),
        };
        let frame = r.frame(&payload);
        let (parsed, off) = EthernetRepr::parse(&frame).unwrap();
        prop_assert_eq!(parsed, r);
        prop_assert_eq!(&frame[off..], &payload[..]);
    }

    #[test]
    fn ipv4_round_trip(src in any::<[u8; 4]>(), dst in any::<[u8; 4]>(),
                       proto in any::<u8>(), ttl in any::<u8>(), ident in any::<u16>(),
                       df in any::<bool>(),
                       payload in proptest::collection::vec(any::<u8>(), 0..512)) {
        use netstack::wire::ipv4::*;
        let r = Ipv4Repr {
            src: Ipv4Addr(src),
            dst: Ipv4Addr(dst),
            protocol: proto.into(),
            ttl,
            ident,
            dont_frag: df,
            payload_len: payload.len(),
        };
        let pkt = r.packet(&payload);
        let (parsed, off) = Ipv4Repr::parse(&pkt).unwrap();
        prop_assert_eq!(parsed, r);
        prop_assert_eq!(&pkt[off..], &payload[..]);
    }

    #[test]
    fn tcp_round_trip(sp in any::<u16>(), dp in any::<u16>(), seq in any::<u32>(),
                      ack in any::<u32>(), window in any::<u16>(), flags in 0u8..64,
                      mss in proptest::option::of(any::<u16>()),
                      payload in proptest::collection::vec(any::<u8>(), 0..256)) {
        use netstack::wire::ipv4::Ipv4Addr;
        use netstack::wire::tcp::*;
        let a = Ipv4Addr([1, 2, 3, 4]);
        let b = Ipv4Addr([5, 6, 7, 8]);
        // Build flags from the raw bits via a segment round trip.
        let probe = TcpRepr {
            src_port: sp, dst_port: dp,
            seq: SeqNumber(seq), ack: SeqNumber(ack),
            flags: TcpFlags::default(), window, mss: None,
        };
        let mut seg = probe.segment(a, b, &[]);
        seg[13] = flags;
        // Fix checksum after mutating flags.
        seg[16] = 0; seg[17] = 0;
        let ck = netstack::checksum::pseudo_header_v4(a.0, b.0, 6, &seg);
        seg[16..18].copy_from_slice(&ck.to_be_bytes());
        let (parsed, _) = TcpRepr::parse(&seg, a, b).unwrap();
        let r = TcpRepr { flags: parsed.flags, mss, ..probe };
        let seg = r.segment(a, b, &payload);
        let (parsed, off) = TcpRepr::parse(&seg, a, b).unwrap();
        prop_assert_eq!(parsed, r);
        prop_assert_eq!(&seg[off..], &payload[..]);
    }

    /// Arbitrary bytes never panic the parsers (robustness, smoltcp-style).
    #[test]
    fn parsers_never_panic(junk in proptest::collection::vec(any::<u8>(), 0..128)) {
        use netstack::wire::ipv4::Ipv4Addr;
        let a = Ipv4Addr([1, 1, 1, 1]);
        let b = Ipv4Addr([2, 2, 2, 2]);
        let _ = netstack::wire::ethernet::EthernetRepr::parse(&junk);
        let _ = netstack::wire::ipv4::Ipv4Repr::parse(&junk);
        let _ = netstack::wire::arp::ArpRepr::parse(&junk);
        let _ = netstack::wire::icmp::IcmpRepr::parse(&junk);
        let _ = netstack::wire::udp::UdpRepr::parse(&junk, a, b);
        let _ = netstack::wire::tcp::TcpRepr::parse(&junk, a, b);
        let _ = signaling::wire::Message::decode(&junk);
    }
}

// ---------------------------------------------------------------------
// Signalling codec
// ---------------------------------------------------------------------

fn arb_ie() -> impl Strategy<Value = signaling::wire::InfoElement> {
    use signaling::wire::{Cause, InfoElement};
    prop_oneof![
        proptest::collection::vec(any::<u8>(), 0..40).prop_map(InfoElement::CalledParty),
        proptest::collection::vec(any::<u8>(), 0..40).prop_map(InfoElement::CallingParty),
        any::<u32>().prop_map(|pcr| InfoElement::TrafficDescriptor { pcr }),
        (any::<u16>(), any::<u16>()).prop_map(|(vpi, vci)| InfoElement::ConnectionId { vpi, vci }),
        any::<u8>().prop_map(|c| InfoElement::Cause(Cause::Other(c))),
    ]
}

proptest! {
    #[test]
    fn signaling_message_round_trip(
        call_ref in 0u32..0x0100_0000,
        ies in proptest::collection::vec(arb_ie(), 0..6),
    ) {
        use signaling::wire::{Message, MessageType};
        let mut m = Message::new(call_ref, MessageType::Setup);
        for ie in ies { m = m.with(ie); }
        let decoded = Message::decode(&m.encode()).unwrap();
        // Cause values normalize through their named variants, so compare
        // re-encodings rather than structures.
        prop_assert_eq!(decoded.encode(), m.encode());
        prop_assert_eq!(decoded.call_ref, call_ref);
    }
}

// ---------------------------------------------------------------------
// Mbuf chains vs. a Vec<u8> reference model
// ---------------------------------------------------------------------

#[derive(Debug, Clone)]
enum ChainOp {
    Strip(usize),
    Trim(usize),
    Prepend(Vec<u8>),
    Concat(Vec<u8>),
    Pullup(usize),
}

fn arb_op() -> impl Strategy<Value = ChainOp> {
    prop_oneof![
        (0usize..64).prop_map(ChainOp::Strip),
        (0usize..64).prop_map(ChainOp::Trim),
        proptest::collection::vec(any::<u8>(), 1..32).prop_map(ChainOp::Prepend),
        proptest::collection::vec(any::<u8>(), 0..64).prop_map(ChainOp::Concat),
        (0usize..64).prop_map(ChainOp::Pullup),
    ]
}

proptest! {
    /// Any sequence of chain operations leaves the chain's contents equal
    /// to a plain byte-vector model.
    #[test]
    fn mbuf_chain_matches_reference_model(
        initial in proptest::collection::vec(any::<u8>(), 0..128),
        ops in proptest::collection::vec(arb_op(), 0..24),
    ) {
        use netstack::mbuf::MbufChain;
        let mut chain = MbufChain::from_slice(&initial);
        let mut model = initial.clone();
        for op in ops {
            match op {
                ChainOp::Strip(n) => {
                    let ok = chain.strip(n).is_ok();
                    prop_assert_eq!(ok, n <= model.len());
                    if ok { model.drain(..n); }
                }
                ChainOp::Trim(n) => {
                    let ok = chain.trim(n).is_ok();
                    prop_assert_eq!(ok, n <= model.len());
                    if ok { model.truncate(model.len() - n); }
                }
                ChainOp::Prepend(bytes) => {
                    chain.prepend(bytes.len()).copy_from_slice(&bytes);
                    let mut new_model = bytes;
                    new_model.extend_from_slice(&model);
                    model = new_model;
                }
                ChainOp::Concat(bytes) => {
                    chain.concat(MbufChain::from_slice(&bytes));
                    model.extend_from_slice(&bytes);
                }
                ChainOp::Pullup(n) => {
                    match chain.pullup(n) {
                        Ok(head) => {
                            prop_assert!(n <= model.len());
                            prop_assert_eq!(head, &model[..n]);
                        }
                        Err(_) => prop_assert!(n > model.len()),
                    }
                }
            }
            prop_assert_eq!(chain.len(), model.len());
        }
        prop_assert_eq!(chain.to_vec(), model);
    }
}

// ---------------------------------------------------------------------
// ByteRefSet vs. a BTreeSet reference model
// ---------------------------------------------------------------------

proptest! {
    #[test]
    fn byterefset_matches_set_model(
        inserts in proptest::collection::vec((0u64..512, 0u64..48), 0..40),
        line_size_pow in 2u32..7,
    ) {
        use memtrace::ByteRefSet;
        use std::collections::BTreeSet;
        let line_size = 1u64 << line_size_pow;
        let mut set = ByteRefSet::new();
        let mut model: BTreeSet<u64> = BTreeSet::new();
        for (addr, len) in inserts {
            set.insert(addr, len);
            model.extend(addr..addr + len);
        }
        prop_assert_eq!(set.bytes(), model.len() as u64);
        let model_lines: BTreeSet<u64> = model.iter().map(|b| b / line_size).collect();
        prop_assert_eq!(set.lines(line_size), model_lines.len() as u64);
        for probe in [0u64, 7, 100, 300, 511, 600] {
            prop_assert_eq!(set.contains(probe), model.contains(&probe));
        }
    }
}

// ---------------------------------------------------------------------
// Cache accounting invariants
// ---------------------------------------------------------------------

proptest! {
    /// Hits + misses equals accesses; a second identical pass over any
    /// footprint that fits the cache is all hits.
    #[test]
    fn cache_accounting_invariants(
        addrs in proptest::collection::vec(0u64..(1 << 20), 1..200),
        assoc_pow in 0u32..3,
    ) {
        use cachesim::{AccessKind, Cache, CacheConfig};
        let mut c = Cache::new(CacheConfig {
            size_bytes: 8192,
            line_size: 32,
            associativity: 1 << assoc_pow,
        });
        for &a in &addrs {
            c.access(a, AccessKind::Read);
        }
        let s = *c.stats();
        prop_assert_eq!(s.accesses(), addrs.len() as u64);
        prop_assert_eq!(s.misses, s.read_misses);
        // Distinct lines bound the compulsory misses from below.
        let distinct: std::collections::BTreeSet<u64> = addrs.iter().map(|a| a / 32).collect();
        prop_assert!(s.misses >= distinct.len() as u64 || distinct.len() > 256);
        prop_assert!(s.misses <= s.accesses());
    }

    /// LRU never evicts the line touched most recently.
    #[test]
    fn mru_line_always_resident(addrs in proptest::collection::vec(0u64..(1 << 16), 1..100)) {
        use cachesim::{AccessKind, Cache, CacheConfig};
        let mut c = Cache::new(CacheConfig {
            size_bytes: 1024,
            line_size: 32,
            associativity: 2,
        });
        for &a in &addrs {
            c.access(a, AccessKind::Read);
            prop_assert!(c.probe(a), "just-touched address must be resident");
        }
    }
}

// ---------------------------------------------------------------------
// Sequence numbers and regions
// ---------------------------------------------------------------------

proptest! {
    /// Wrapping comparisons agree with signed distance for nearby values.
    #[test]
    fn seq_number_algebra(base in any::<u32>(), d1 in 0u32..(1 << 30), d2 in 0u32..(1 << 30)) {
        use netstack::wire::tcp::SeqNumber;
        let a = SeqNumber(base).add(d1);
        let b = SeqNumber(base).add(d2);
        prop_assert_eq!(a.lt(b), d1 < d2);
        prop_assert_eq!(a.le(b), d1 <= d2);
        prop_assert_eq!(a.diff(b), d1.wrapping_sub(d2) as i32);
        prop_assert!(a.le(a) && a.ge(a));
    }

    /// Region line counts are exact against brute force.
    #[test]
    fn region_lines_brute_force(base in 0u64..1000, len in 0u64..1000, pow in 2u32..8) {
        use cachesim::Region;
        let line = 1u64 << pow;
        let r = Region::new(base, len);
        let brute: std::collections::BTreeSet<u64> = (base..base + len).map(|b| b / line).collect();
        prop_assert_eq!(r.lines(line), brute.len() as u64);
    }

    /// Working-set totals are invariant under trace-order permutations of
    /// code references (classification is first-touch, but code class
    /// totals can't change).
    #[test]
    fn working_set_total_stable_under_code_shuffle(
        spans in proptest::collection::vec((0u64..2048, 1u32..64), 1..30),
        seed in any::<u64>(),
    ) {
        use memtrace::trace::{RefKind, Trace};
        use memtrace::workingset::working_set;
        use cachesim::Region;
        let build = |order: &[usize]| {
            let mut t = Trace::new(vec!["L".into()], vec!["p".into()]);
            let f = t.add_function("f", Region::new(0, 4096), 0);
            for &i in order {
                let (addr, len) = spans[i];
                t.record(addr.min(4096 - len as u64), len, RefKind::Code, 0, f);
            }
            working_set(&t, 32).total.code.lines
        };
        let forward: Vec<usize> = (0..spans.len()).collect();
        let mut shuffled = forward.clone();
        // Deterministic Fisher-Yates from the seed.
        let mut s = seed;
        for i in (1..shuffled.len()).rev() {
            s = s.wrapping_mul(6364136223846793005).wrapping_add(1442695040888963407);
            shuffled.swap(i, ((s >> 33) as usize) % (i + 1));
        }
        prop_assert_eq!(build(&forward), build(&shuffled));
    }
}

// ---------------------------------------------------------------------
// TCP reassembly vs. a byte-map reference model
// ---------------------------------------------------------------------

proptest! {
    /// Out-of-order inserts followed by gap fills always deliver the
    /// stream a first-write-wins byte map predicts, regardless of
    /// arrival order.
    #[test]
    fn assembler_matches_byte_map(
        segments in proptest::collection::vec((0usize..600, 1usize..80), 1..20),
    ) {
        use netstack::tcp::assembler::Assembler;
        use std::collections::BTreeMap;

        let mut asm = Assembler::new(1 << 16);
        let mut model: BTreeMap<usize, u8> = BTreeMap::new();
        for (i, &(offset, len)) in segments.iter().enumerate() {
            let data: Vec<u8> = (0..len).map(|j| (i * 37 + j) as u8).collect();
            if asm.insert(offset, &data).is_ok() {
                for (j, &b) in data.iter().enumerate() {
                    model.entry(offset + j).or_insert(b);
                }
            }
        }
        // Drain: advance through the stream one gap at a time.
        let max_off = segments.iter().map(|&(o, l)| o + l).max().unwrap_or(0);
        let mut delivered: BTreeMap<usize, u8> = BTreeMap::new();
        let mut pos = 0usize;
        while pos <= max_off {
            // Simulate 1 byte of in-order data filling position `pos`.
            let released = asm.advance(1);
            let base = pos + 1;
            for (j, &b) in released.iter().enumerate() {
                delivered.insert(base + j, b);
            }
            pos = base + released.len();
        }
        // Every modelled byte whose entire prefix-gap got filled must have
        // been released exactly as stored; released bytes must match.
        for (off, b) in &delivered {
            prop_assert_eq!(Some(b), model.get(off), "byte at {}", off);
        }
        prop_assert!(asm.is_empty(), "fully drained");
        prop_assert_eq!(asm.buffered(), 0);
    }
}

// ---------------------------------------------------------------------
// TLB invariants
// ---------------------------------------------------------------------

proptest! {
    /// The TLB is fully associative LRU: the most recent `entries`
    /// distinct pages are always resident, and hit/miss counts add up.
    #[test]
    fn tlb_lru_invariants(
        addrs in proptest::collection::vec(0u64..(1u64 << 30), 1..200),
        entries in 1u32..16,
    ) {
        use cachesim::{Tlb, TlbConfig};
        let cfg = TlbConfig { entries, page_size: 8192, refill_penalty: 40 };
        let mut tlb = Tlb::new(cfg);
        let mut recent: Vec<u64> = Vec::new(); // distinct pages, MRU first
        for &a in &addrs {
            let page = a >> 13;
            let expected_hit = recent.iter().take(entries as usize).any(|&p| p == page);
            let hit = tlb.access(a);
            prop_assert_eq!(hit, expected_hit, "page {}", page);
            recent.retain(|&p| p != page);
            recent.insert(0, page);
        }
        let s = *tlb.stats();
        prop_assert_eq!(s.accesses(), addrs.len() as u64);
        // Residency check against the model.
        for (i, &p) in recent.iter().enumerate() {
            prop_assert_eq!(tlb.probe(p << 13), i < entries as usize);
        }
    }
}
