//! Integration tests for the extension subsystems: the functional layer
//! graph driving real netstack parsers, the instrumented graph, IP
//! fragmentation across hosts, duplex (receive + ACK) simulation, the
//! DNS and NFS-RPC workloads over the full stack, MMPP-driven load, and
//! trace serialization of the real receive-and-ack trace.

use ldlp::graph::{activation_runs, Emitter, GraphLayer, LayerGraph, Schedule};
use netstack::iface::{Channel, Interface};
use netstack::tcp::machine::{TcpConfig, TcpStack};
use netstack::wire::ethernet::EthernetAddr;
use netstack::wire::ipv4::Ipv4Addr;

fn host(n: u8) -> Interface {
    Interface::new(
        EthernetAddr([2, 0, 0, 0, 0, n]),
        Ipv4Addr::new(192, 168, 69, n),
        TcpStack::new(TcpConfig::default()),
    )
}

fn settle(a: &mut Interface, ad: &mut Channel, b: &mut Interface, bd: &mut Channel) {
    let mut quiet = 0;
    while quiet < 2 {
        let n = a.poll(ad, 0) + b.poll(bd, 0);
        a.flush_tcp(ad);
        b.flush_tcp(bd);
        quiet = if n == 0 { quiet + 1 } else { 0 };
    }
}

/// The layer-graph runtime drives real netstack parsing under both
/// schedules with identical results and blocked activation orders.
#[test]
fn layer_graph_with_real_parsers() {
    use netstack::wire::ethernet::{EtherType, EthernetRepr};
    use netstack::wire::ipv4::{Ipv4Repr, Protocol};
    use netstack::wire::udp::UdpRepr;

    struct Eth;
    impl GraphLayer<Vec<u8>> for Eth {
        fn name(&self) -> &str {
            "eth"
        }
        fn process(&mut self, mut f: Vec<u8>, out: &mut Emitter<Vec<u8>>) {
            if let Ok((eth, off)) = EthernetRepr::parse(&f) {
                if eth.ethertype == EtherType::Ipv4 {
                    f.drain(..off);
                    out.up(0, f);
                }
            }
        }
    }
    struct Ip;
    impl GraphLayer<Vec<u8>> for Ip {
        fn name(&self) -> &str {
            "ip"
        }
        fn process(&mut self, mut p: Vec<u8>, out: &mut Emitter<Vec<u8>>) {
            if let Ok((ip, off)) = Ipv4Repr::parse(&p) {
                if ip.protocol == Protocol::Udp {
                    p.drain(..off);
                    out.up(0, p);
                }
            }
        }
    }
    struct Udp;
    impl GraphLayer<Vec<u8>> for Udp {
        fn name(&self) -> &str {
            "udp"
        }
        fn process(&mut self, mut d: Vec<u8>, out: &mut Emitter<Vec<u8>>) {
            let a = Ipv4Addr::new(10, 0, 0, 1);
            let b = Ipv4Addr::new(10, 0, 0, 2);
            if let Ok((_, off)) = UdpRepr::parse(&d, a, b) {
                d.drain(..off);
                out.deliver(d);
            }
        }
    }

    let frame = |i: u16| {
        let a = Ipv4Addr::new(10, 0, 0, 1);
        let b = Ipv4Addr::new(10, 0, 0, 2);
        let udp = UdpRepr {
            src_port: i,
            dst_port: 53,
        }
        .packet(a, b, format!("payload {i}").as_bytes());
        let ip = Ipv4Repr {
            src: a,
            dst: b,
            protocol: Protocol::Udp,
            ttl: 64,
            ident: i,
            dont_frag: true,
            payload_len: udp.len(),
        }
        .packet(&udp);
        EthernetRepr {
            dst: EthernetAddr([2, 0, 0, 0, 0, 2]),
            src: EthernetAddr([2, 0, 0, 0, 0, 1]),
            ethertype: EtherType::Ipv4,
        }
        .frame(&ip)
    };

    let run = |schedule| {
        let mut g = LayerGraph::new(schedule);
        let udp = g.add_layer(Box::new(Udp), vec![]);
        let ip = g.add_layer(Box::new(Ip), vec![udp]);
        let eth = g.add_layer(Box::new(Eth), vec![ip]);
        g.set_entry(eth);
        for i in 0..10 {
            g.inject(frame(i));
        }
        let mut delivered: Vec<Vec<u8>> = g.run().into_iter().map(|(_, m)| m).collect();
        delivered.sort();
        (delivered, activation_runs(g.log()))
    };

    let (conv, conv_runs) = run(Schedule::Conventional);
    let (ldlp, ldlp_runs) = run(Schedule::Ldlp { entry_batch: 16 });
    assert_eq!(conv.len(), 10);
    assert_eq!(conv, ldlp, "identical deliveries under both schedules");
    assert_eq!(conv_runs, 30, "per-message interleaving");
    assert_eq!(ldlp_runs, 3, "one run per layer");
}

/// Fragmented UDP over a lossy link: drops of individual fragments kill
/// only their datagram; intact trains reassemble.
#[test]
fn fragmentation_under_loss_is_all_or_nothing() {
    use netstack::iface::FaultConfig;
    // Drop every 5th frame.
    let (mut ad, mut bd) = Channel::pair_with_faults(Some(FaultConfig {
        drop_every: 5,
        corrupt_every: 0,
    }));
    let mut a = host(1);
    let mut b = host(2);
    let (a_ip, a_mac, b_ip, b_mac) = (a.ip(), a.mac(), b.ip(), b.mac());
    a.add_arp_entry(b_ip, b_mac);
    b.add_arp_entry(a_ip, a_mac);
    b.udp_bind(7000).unwrap();

    let payload: Vec<u8> = (0..4000u32).map(|i| (i % 250) as u8).collect();
    let sent = 10;
    for _ in 0..sent {
        a.udp_send(&mut ad, 6000, b_ip, 7000, &payload);
        settle(&mut a, &mut ad, &mut b, &mut bd);
    }
    let mut received = 0;
    while let Some(dg) = b.udp_recv(7000) {
        assert_eq!(dg.payload, payload, "no partial datagrams delivered");
        received += 1;
    }
    // 3 fragments per datagram, 1-in-5 frame loss: some datagrams die.
    assert!(received < sent, "losses must kill whole datagrams");
    assert!(received > 0, "some datagrams survive");
}

/// Duplex (receive + ACK descent) through the event-loop simulator.
#[test]
fn duplex_simulation_end_to_end() {
    use cachesim::MachineConfig;
    use ldlp::synth::{paper_stack, stack_with};
    use ldlp::{BatchPolicy, Discipline, StackEngine};
    use simnet::traffic::{PoissonSource, TrafficSource};
    use simnet::{run_sim, SimConfig};

    let arrivals = PoissonSource::new(5000.0, 552, 3).take_until(0.3);
    let cfg = SimConfig {
        duration_s: 0.3,
        ..SimConfig::default()
    };
    let build = |d| {
        let (m, rx) = paper_stack(MachineConfig::synthetic_benchmark(), 5);
        let (_, tx) = stack_with(MachineConfig::synthetic_benchmark(), 55, 3, 4096, 256);
        StackEngine::new(m, rx, d).with_tx(tx, 58)
    };
    let mut conv = build(Discipline::Conventional);
    let rc = run_sim(&mut conv, &arrivals, &cfg);
    let mut ldlp = build(Discipline::Ldlp(BatchPolicy::DCacheFit));
    let rl = run_sim(&mut ldlp, &arrivals, &cfg);
    // The duplex working set (30 + 12 KB) sinks conventional at 5000/s.
    assert!(rc.drops > 0 || rc.mean_latency_us > 10_000.0);
    assert_eq!(rl.drops, 0);
    assert!(rl.mean_latency_us < 3_000.0, "LDLP {}", rl.mean_latency_us);
}

/// NFS-shaped RPC over UDP over the full stack: LOOKUP then GETATTR.
#[test]
fn rpc_attr_server_over_the_stack() {
    use signaling::rpc::{AttrServer, Procedure, RpcMessage, Status, ROOT_HANDLE};

    let (mut ad, mut bd) = Channel::pair();
    let mut client = host(1);
    let mut server_host = host(2);
    let mut server = AttrServer::new();
    let fh = server.add_file(ROOT_HANDLE, b"blackwell96.ps", 183_000);
    server_host.udp_bind(2049).unwrap();
    client.udp_bind(800).unwrap();

    let server_ip = server_host.ip();
    let call = RpcMessage::Call {
        xid: 77,
        proc: Procedure::Lookup,
        handle: ROOT_HANDLE,
        name: b"blackwell96.ps".to_vec(),
    };
    client.udp_send(&mut ad, 800, server_ip, 2049, &call.encode());
    settle(&mut client, &mut ad, &mut server_host, &mut bd);
    let dg = server_host.udp_recv(2049).expect("call arrived");
    let reply = server.handle(&dg.payload);
    server_host.udp_send(&mut bd, 2049, dg.src_addr, dg.src_port, &reply);
    settle(&mut client, &mut ad, &mut server_host, &mut bd);
    let dg = client.udp_recv(800).expect("reply arrived");
    match RpcMessage::decode(&dg.payload).unwrap() {
        RpcMessage::Reply {
            xid,
            status,
            handle,
            attrs,
        } => {
            assert_eq!(xid, 77);
            assert_eq!(status, Status::Success);
            assert_eq!(handle, Some(fh));
            assert_eq!(attrs.unwrap().size, 183_000);
        }
        other => panic!("unexpected {other:?}"),
    }
    // The whole exchange fits the paper's small-message regime.
    assert!(dg.payload.len() < 100);
}

/// MMPP regime-switching load through the simulator: LDLP absorbs the
/// burst regime that sinks the conventional schedule.
#[test]
fn mmpp_bursts_favour_ldlp() {
    use cachesim::MachineConfig;
    use ldlp::synth::paper_stack;
    use ldlp::{BatchPolicy, Discipline, StackEngine};
    use simnet::traffic::{MmppSource, TrafficSource};
    use simnet::{run_sim, SimConfig};

    // Quiet 1000/s, bursts of 9000/s, 100 ms regimes: mean 5000/s.
    let arrivals = MmppSource::two_state(1000.0, 9000.0, 0.1, 552, 8).take_until(1.0);
    let cfg = SimConfig::default();
    let run = |d| {
        let (m, layers) = paper_stack(MachineConfig::synthetic_benchmark(), 9);
        let mut e = StackEngine::new(m, layers, d);
        run_sim(&mut e, &arrivals, &cfg)
    };
    let conv = run(Discipline::Conventional);
    let ldlp = run(Discipline::Ldlp(BatchPolicy::DCacheFit));
    assert!(conv.drops > 0, "bursts should overrun conventional");
    assert_eq!(ldlp.drops, 0, "LDLP batches through the bursts");
    assert!(ldlp.mean_batch > 1.5);
}

/// The real receive-and-ack trace survives serialization and analyzes
/// identically after a round trip.
#[test]
fn receive_ack_trace_serialization_round_trip() {
    use memtrace::workingset::working_set;
    let trace = netstack::footprint::build_receive_ack_trace();
    let text = memtrace::io::to_text(&trace);
    assert!(text.len() > 100_000, "full trace serialized");
    let back = memtrace::io::from_text(&text).expect("parse back");
    back.validate().unwrap();
    assert_eq!(working_set(&back, 32), working_set(&trace, 32));
    assert_eq!(
        memtrace::dilution::code_dilution(&back, 32),
        memtrace::dilution::code_dilution(&trace, 32)
    );
}

/// The instrumented functional graph and the synthetic engine agree on
/// the direction and rough magnitude of the LDLP effect.
#[test]
fn instrumented_graph_agrees_with_engine() {
    use cachesim::{Machine, MachineConfig};
    use ldlp::instrument::{CostedLayer, SharedMachine};
    use std::cell::RefCell;
    use std::rc::Rc;

    struct Pass {
        sink: bool,
    }
    impl GraphLayer<Vec<u8>> for Pass {
        fn name(&self) -> &str {
            "pass"
        }
        fn process(&mut self, m: Vec<u8>, out: &mut Emitter<Vec<u8>>) {
            if self.sink {
                out.deliver(m);
            } else {
                out.up(0, m);
            }
        }
    }

    let run = |schedule| -> u64 {
        let machine: SharedMachine = Rc::new(RefCell::new(Machine::new(
            MachineConfig::synthetic_benchmark(),
        )));
        let mut code = cachesim::AddressAllocator::new(0x10_0000, 32);
        let mut data = cachesim::AddressAllocator::new(0x800_0000, 32);
        let mut g = LayerGraph::new(schedule);
        let mut above = None;
        for i in (0..5).rev() {
            let layer = CostedLayer::new(
                Pass { sink: i == 4 },
                machine.clone(),
                code.alloc(6144),
                data.alloc(256),
            );
            let ports = above.map(|n| vec![n]).unwrap_or_default();
            above = Some(g.add_layer(Box::new(layer), ports));
        }
        g.set_entry(above.unwrap());
        for _ in 0..14 {
            g.inject(vec![0u8; 552]);
        }
        g.run();
        let misses = machine.borrow().stats().icache.misses;
        misses
    };
    let conv = run(Schedule::Conventional);
    let ldlp = run(Schedule::Ldlp { entry_batch: 14 });
    // 14 messages, 960-line stack: conventional ~= 14 reloads, LDLP ~= 1.
    assert!(conv > 10 * ldlp, "conv {conv} vs ldlp {ldlp}");
    assert!(ldlp >= 960, "at least one full cold load");
}
