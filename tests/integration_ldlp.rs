//! Cross-crate integration tests of the scheduling results: the shapes of
//! Figures 5–7 must hold when the full pipeline (traffic source → event
//! loop → engine → cache model) runs end to end.

use cachesim::MachineConfig;
use ldlp::blocking::BlockingModel;
use ldlp::synth::paper_stack;
use ldlp::{BatchPolicy, Discipline, StackEngine};
use simnet::stats::SimReport;
use simnet::traffic::{PoissonSource, SelfSimilarSource, TrafficSource};
use simnet::{run_sim, SimConfig};

fn run(discipline: Discipline, rate: f64, seed: u64, duration: f64) -> SimReport {
    let arrivals = PoissonSource::new(rate, 552, seed).take_until(duration);
    let (m, layers) = paper_stack(MachineConfig::synthetic_benchmark(), seed);
    let mut engine = StackEngine::new(m, layers, discipline);
    run_sim(
        &mut engine,
        &arrivals,
        &SimConfig {
            duration_s: duration,
            ..SimConfig::default()
        },
    )
}

/// Figure 5's shape: conventional instruction misses are flat in load;
/// LDLP's fall monotonically (within noise) and flatten at the batch cap.
#[test]
fn figure5_shape_holds() {
    let conv_low = run(Discipline::Conventional, 1000.0, 1, 0.3);
    let conv_high = run(Discipline::Conventional, 9000.0, 1, 0.3);
    assert!(
        (conv_low.mean_imiss - conv_high.mean_imiss).abs() < 60.0,
        "conventional misses should be load-independent: {} vs {}",
        conv_low.mean_imiss,
        conv_high.mean_imiss
    );
    assert!(conv_low.mean_imiss > 900.0, "~960 line reloads per message");

    let ldlp = Discipline::Ldlp(BatchPolicy::DCacheFit);
    let l3 = run(ldlp, 3000.0, 1, 0.3);
    let l6 = run(ldlp, 6000.0, 1, 0.3);
    let l95 = run(ldlp, 9500.0, 1, 0.3);
    assert!(
        l3.mean_imiss > l6.mean_imiss && l6.mean_imiss > l95.mean_imiss,
        "LDLP instruction misses fall with load: {} {} {}",
        l3.mean_imiss,
        l6.mean_imiss,
        l95.mean_imiss
    );
    // Data misses rise with batching but stay second-order.
    assert!(l95.mean_dmiss > l3.mean_dmiss);
    assert!(l95.mean_dmiss < l95.mean_imiss + 200.0);
    // The batch cap binds at the top of the range.
    assert!(l95.mean_batch > 8.0, "batching engaged: {}", l95.mean_batch);
    assert!(l95.mean_batch <= 14.0 + 1e-9, "D-cache-fit cap respected");
}

/// Figure 6's shape: equal latency at light load; conventional saturates
/// in the middle of the range while LDLP still sustains ~9500/s.
#[test]
fn figure6_shape_holds() {
    let light_conv = run(Discipline::Conventional, 500.0, 2, 0.3);
    let light_ldlp = run(Discipline::Ldlp(BatchPolicy::DCacheFit), 500.0, 2, 0.3);
    let ratio = light_ldlp.mean_latency_us / light_conv.mean_latency_us;
    assert!(
        (0.9..1.15).contains(&ratio),
        "light-load latencies should be close, ratio {ratio}"
    );

    let heavy_conv = run(Discipline::Conventional, 8000.0, 2, 0.3);
    let heavy_ldlp = run(Discipline::Ldlp(BatchPolicy::DCacheFit), 8000.0, 2, 0.3);
    assert!(heavy_conv.drops > 0, "conventional saturates at 8000/s");
    assert_eq!(heavy_ldlp.drops, 0, "LDLP sustains 8000/s");
    assert!(heavy_ldlp.mean_latency_us * 20.0 < heavy_conv.mean_latency_us);
    // The 500-packet buffer bounds conventional latency near 100 ms.
    assert!(heavy_conv.mean_latency_us < 200_000.0);
}

/// Figure 7's shape: with self-similar trace-like traffic, conventional
/// collapses at low clock rates while LDLP batches and survives.
#[test]
fn figure7_shape_holds() {
    let duration = 2.0;
    let mut results = Vec::new();
    for mhz in [20.0, 80.0] {
        let cfg = MachineConfig::synthetic_benchmark().with_clock_mhz(mhz);
        let arrivals = SelfSimilarSource::bellcore_like(3).take_until(duration);
        let run_one = |d: Discipline| {
            let (m, layers) = paper_stack(cfg, 3);
            let mut e = StackEngine::new(m, layers, d);
            run_sim(
                &mut e,
                &arrivals,
                &SimConfig {
                    duration_s: duration,
                    ..SimConfig::default()
                },
            )
        };
        results.push((
            run_one(Discipline::Conventional),
            run_one(Discipline::Ldlp(BatchPolicy::DCacheFit)),
        ));
    }
    let (conv20, ldlp20) = &results[0];
    let (conv80, ldlp80) = &results[1];
    // Fast CPU: both fine and similar.
    assert!(conv80.mean_latency_us < 5_000.0);
    assert!(ldlp80.mean_latency_us <= conv80.mean_latency_us * 1.1);
    // Slow CPU: conventional collapses; LDLP degrades gracefully.
    assert!(
        conv20.mean_latency_us > 20.0 * ldlp20.mean_latency_us,
        "at 20 MHz conventional {} should dwarf LDLP {}",
        conv20.mean_latency_us,
        ldlp20.mean_latency_us
    );
    assert!(ldlp20.mean_batch > 1.2, "LDLP batches at 20 MHz");
}

/// The analytical blocking model and the simulation agree about the
/// benefit: predicted misses at the optimum are close to the simulated
/// LDLP misses at saturation.
#[test]
fn blocking_model_matches_simulation() {
    let model = BlockingModel::paper_synthetic();
    let predicted = model.misses_per_message(model.optimal_blocking_factor(64));
    let simulated = run(Discipline::Ldlp(BatchPolicy::DCacheFit), 9500.0, 4, 0.3);
    let total = simulated.mean_imiss + simulated.mean_dmiss;
    assert!(
        (total - predicted).abs() / predicted < 0.6,
        "model {predicted} vs simulated {total}"
    );
}

/// ILP helps data-heavy large messages but not small-message stacks —
/// the paper's motivating contrast (Figure 4).
#[test]
fn ilp_does_not_rescue_small_messages() {
    let ilp = run(Discipline::Ilp, 5000.0, 5, 0.3);
    let conv = run(Discipline::Conventional, 5000.0, 5, 0.3);
    let ldlp = run(Discipline::Ldlp(BatchPolicy::DCacheFit), 5000.0, 5, 0.3);
    // ILP's instruction misses equal conventional's: the code still
    // cycles through the cache once per message.
    assert!((ilp.mean_imiss - conv.mean_imiss).abs() < 50.0);
    // LDLP is the one that actually cuts them.
    assert!(ldlp.mean_imiss < conv.mean_imiss / 1.5);
}

/// Determinism across the whole pipeline: same seeds, same report.
#[test]
fn end_to_end_determinism() {
    let a = run(Discipline::Ldlp(BatchPolicy::DCacheFit), 7000.0, 9, 0.2);
    let b = run(Discipline::Ldlp(BatchPolicy::DCacheFit), 7000.0, 9, 0.2);
    assert_eq!(a.completed, b.completed);
    assert_eq!(a.mean_latency_us, b.mean_latency_us);
    assert_eq!(a.mean_imiss, b.mean_imiss);
    assert_eq!(a.drops, b.drops);
}
