//! Integration tests of the measurement pipeline: the instrumented stack
//! trace must regenerate the paper's Tables 1–3 and Figure 1, and the
//! checksum/dilution analyses must reproduce Section 5's claims.

use memtrace::dilution::code_dilution;
use memtrace::phases::phase_summaries;
use memtrace::workingset::{line_size_sweep, working_set};
use netstack::checksum::{ELABORATE_FOOTPRINT_BYTES, SIMPLE_FOOTPRINT_BYTES};
use netstack::footprint::{
    build_receive_ack_trace, PAPER_CODE_BYTES, PAPER_MUT_BYTES, PAPER_RO_BYTES,
};

#[test]
fn table1_reproduces_exactly() {
    let ws = working_set(&build_receive_ack_trace(), 32);
    for (li, row) in ws.rows.iter().enumerate() {
        assert_eq!(row.code.bytes, PAPER_CODE_BYTES[li], "code, row {li}");
        assert_eq!(row.ro_data.bytes, PAPER_RO_BYTES[li], "ro, row {li}");
        assert_eq!(row.mut_data.bytes, PAPER_MUT_BYTES[li], "mut, row {li}");
    }
    // The headline numbers of Section 2.4: ~30 KB code + 5 KB RO data
    // touched per received packet.
    assert_eq!(ws.total.code.bytes, 30304);
    assert_eq!(ws.total.ro_data.bytes, 5088);
    assert_eq!(ws.total.mut_data.bytes, 3648);
}

#[test]
fn table3_matches_paper_within_tolerance() {
    // Every cell of Table 3 (except the N/A data cells at 4 bytes) must
    // land within 10 percentage points of the published value.
    let paper: [(u64, [f64; 6]); 3] = [
        (64.0 as u64, [17.0, -41.0, 44.0, -28.0, 55.0, -22.0]),
        (16, [-13.0, 73.0, -31.0, 38.0, -38.0, 23.0]),
        (8, [-20.0, 216.0, -55.0, 81.0, -56.0, 75.0]),
    ];
    let trace = build_receive_ack_trace();
    let rows = line_size_sweep(&trace, &[8, 16, 32, 64], 32);
    for (ls, expect) in paper {
        let r = rows.iter().find(|r| r.line_size == ls).expect("swept");
        let measured = [
            r.code.d_bytes_pct,
            r.code.d_lines_pct,
            r.ro_data.d_bytes_pct,
            r.ro_data.d_lines_pct,
            r.mut_data.d_bytes_pct,
            r.mut_data.d_lines_pct,
        ];
        for (i, (m, e)) in measured.iter().zip(expect.iter()).enumerate() {
            let tol = if *e > 100.0 { 25.0 } else { 10.0 };
            assert!(
                (m - e).abs() <= tol,
                "line {ls}, cell {i}: measured {m:.0}% vs paper {e:.0}%"
            );
        }
    }
}

#[test]
fn figure1_phase_structure() {
    let trace = build_receive_ack_trace();
    let phases = phase_summaries(&trace);
    assert_eq!(phases.len(), 3);
    let (entry, intr, exit) = (&phases[0], &phases[1], &phases[2]);
    // Entry is by far the smallest phase; interrupt and exit carry the
    // protocol work (paper footers: 3008 / 13664 / 18240 code bytes).
    assert!(entry.code.bytes < 5000, "entry {}", entry.code.bytes);
    assert!((10_000..18_000).contains(&intr.code.bytes), "intr {}", intr.code.bytes);
    assert!((14_000..23_000).contains(&exit.code.bytes), "exit {}", exit.code.bytes);
    // Message contents appear in phase reads/writes: the 552-byte packet
    // is copied device->mbuf (intr) and mbuf->user (exit).
    assert!(intr.write.bytes >= 552);
    assert!(exit.write.bytes >= 552);
    // Loops re-execute instructions: far more code refs than unique
    // bytes/4 in the interrupt phase.
    assert!(intr.code.refs > intr.code.bytes / 8);
}

#[test]
fn memory_bandwidth_claim_of_section2() {
    // "The processor spends ten times longer fetching protocol code from
    // memory than moving message contents": code+RO working set vs the
    // ~2.2 KB of message movement per packet.
    let ws = working_set(&build_receive_ack_trace(), 32);
    let code_and_ro = ws.total.code.bytes + ws.total.ro_data.bytes;
    let message_io = 2200u64;
    assert!(
        code_and_ro > 10 * message_io,
        "{code_and_ro} bytes of code+RO vs {message_io} of message IO"
    );
}

#[test]
fn dilution_near_paper_estimate() {
    let d = code_dilution(&build_receive_ack_trace(), 32);
    assert!(
        (0.20..0.30).contains(&d.dilution()),
        "dilution {:.3} should be near the paper's ~25%",
        d.dilution()
    );
    // Dense layout saves about the same fraction of lines.
    assert!((0.15..0.35).contains(&d.dense_reduction()));
}

#[test]
fn checksum_crossover_model() {
    // Figure 8's arithmetic: with a ~30-cycle fill penalty the cold-cache
    // crossover sits near 900 bytes. (elaborate: 176 + 0.70n cycles,
    // simple: 80 + 1.54n — fitted warm curves; fill = lines x penalty.)
    let penalty = 30u64;
    let e_fill = ELABORATE_FOOTPRINT_BYTES.div_ceil(32) * penalty;
    let s_fill = SIMPLE_FOOTPRINT_BYTES.div_ceil(32) * penalty;
    let e_cold = |n: u64| 176 + (0.70 * n as f64) as u64 + e_fill;
    let s_cold = |n: u64| 80 + (1.54 * n as f64) as u64 + s_fill;
    let crossover = (0..2000)
        .find(|&n| e_cold(n) <= s_cold(n))
        .expect("curves cross");
    assert!(
        (800..1000).contains(&crossover),
        "crossover at {crossover}, paper ~900"
    );
    // Warm, the elaborate routine wins from small sizes on.
    assert!(176 + (0.70f64 * 200.0) as u64 <= 80 + (1.54f64 * 200.0) as u64);
}

#[test]
fn real_checksums_agree_with_each_other_at_figure8_sizes() {
    // The cost curves are modelled, but the routines are real: verify
    // agreement at every Figure 8 sample size.
    let data: Vec<u8> = (0..1024u32).map(|i| (i * 37 + 11) as u8).collect();
    for n in (0..=1000).step_by(16) {
        assert_eq!(
            netstack::checksum::simple(&data[..n]),
            netstack::checksum::elaborate(&data[..n]),
            "size {n}"
        );
    }
}

#[test]
fn signaling_goal_scaled_smoke() {
    // A short, single-seed version of experiment G1.
    use ldlp::{BatchPolicy, Discipline, StackEngine};
    use signaling::workload::{call_arrivals, goal_machine, signaling_stack};
    use simnet::{run_sim, SimConfig};
    let arrivals = call_arrivals(10_000.0, 0.02, 0.2, 11);
    let cfg = SimConfig {
        duration_s: 0.2,
        ..SimConfig::default()
    };
    let (m, layers) = signaling_stack(goal_machine(), 11);
    let mut ldlp = StackEngine::new(m, layers, Discipline::Ldlp(BatchPolicy::DCacheFit));
    let r = run_sim(&mut ldlp, &arrivals, &cfg);
    assert_eq!(r.drops, 0);
    assert!(r.mean_latency_us < 500.0, "mean {}", r.mean_latency_us);
}
