//! Quickstart: the paper's headline result in ~60 lines.
//!
//! Builds the SIGCOMM '96 synthetic benchmark — a five-layer protocol
//! stack whose 30 KB of code dwarfs the 8 KB instruction cache — and
//! processes the same Poisson message stream under conventional and
//! locality-driven (LDLP) scheduling.
//!
//! Run with: `cargo run --release --example quickstart`

use cachesim::MachineConfig;
use ldlp::synth::paper_stack;
use ldlp::{BatchPolicy, Discipline, StackEngine};
use simnet::traffic::{PoissonSource, TrafficSource};
use simnet::{run_sim, SimConfig};

fn main() {
    // The paper's machine: 100 MHz, 8 KB direct-mapped I/D caches,
    // 20-cycle miss penalty.
    let machine = MachineConfig::synthetic_benchmark();
    println!(
        "Machine: {} MHz, {} KB I-cache, {}-cycle miss penalty",
        machine.clock_mhz,
        machine.icache.size_bytes / 1024,
        machine.read_miss_penalty
    );
    println!("Stack: 5 layers x 6 KB code — 30 KB working set vs 8 KB cache\n");

    println!(
        "{:>10}  {:>12} {:>9} {:>7}   {:>12} {:>9} {:>7} {:>6}",
        "load", "conv lat", "I-miss", "drops", "LDLP lat", "I-miss", "drops", "batch"
    );
    for rate in [1000.0, 3000.0, 5000.0, 7000.0, 9000.0] {
        // The identical arrival stream for both schedules.
        let arrivals = PoissonSource::new(rate, 552, 42).take_until(1.0);
        let cfg = SimConfig::default();

        let (m, layers) = paper_stack(machine, 7);
        let mut conv = StackEngine::new(m, layers, Discipline::Conventional);
        let rc = run_sim(&mut conv, &arrivals, &cfg);

        let (m, layers) = paper_stack(machine, 7);
        let mut ldlp = StackEngine::new(m, layers, Discipline::Ldlp(BatchPolicy::DCacheFit));
        let rl = run_sim(&mut ldlp, &arrivals, &cfg);

        println!(
            "{:>7}/s  {:>10.0}us {:>9.0} {:>7}   {:>10.0}us {:>9.0} {:>7} {:>6.1}",
            rate,
            rc.mean_latency_us,
            rc.mean_imiss,
            rc.drops,
            rl.mean_latency_us,
            rl.mean_imiss,
            rl.drops,
            rl.mean_batch,
        );
    }

    println!(
        "\nUnder light load both schedules behave identically (batches of 1).\n\
         As load rises, LDLP amortizes each layer's instruction-cache refill\n\
         over the batch: misses per message fall, throughput rises, and\n\
         latency *drops* because queueing shrinks — while the conventional\n\
         schedule saturates and fills its 500-packet buffer."
    );
}
