//! The functional LDLP runtime on real packets.
//!
//! Builds the Section 3.2 layer graph out of *real* protocol code — the
//! `netstack` wire parsers — and runs the same frames through it under
//! both schedules. The delivered results are identical; the execution
//! order (and therefore the instruction locality) is what changes: the
//! activation log shows per-message interleaving under the conventional
//! schedule and long per-layer runs under LDLP.
//!
//! Run with: `cargo run --release --example layer_graph`

use ldlp::graph::{activation_runs, Emitter, GraphLayer, LayerGraph, NodeId, Schedule};
use netstack::wire::ethernet::{EtherType, EthernetAddr, EthernetRepr};
use netstack::wire::ipv4::{Ipv4Addr, Ipv4Repr, Protocol};
use netstack::wire::udp::UdpRepr;

/// A raw frame moving up the stack; headers are stripped as it climbs.
#[derive(Debug, Clone)]
struct Packet {
    bytes: Vec<u8>,
    src: Ipv4Addr,
    dst: Ipv4Addr,
}

/// Ethernet layer: parses the frame, drops non-IPv4, strips the header.
struct EthLayer;
impl GraphLayer<Packet> for EthLayer {
    fn name(&self) -> &str {
        "ethernet"
    }
    fn process(&mut self, mut pkt: Packet, out: &mut Emitter<Packet>) {
        match EthernetRepr::parse(&pkt.bytes) {
            Ok((eth, off)) if eth.ethertype == EtherType::Ipv4 => {
                pkt.bytes.drain(..off);
                out.up(0, pkt);
            }
            _ => {} // non-IP or malformed: dropped
        }
    }
}

/// IP layer: validates the header checksum, demultiplexes UDP (port 0)
/// from ICMP (port 1).
struct IpLayer;
impl GraphLayer<Packet> for IpLayer {
    fn name(&self) -> &str {
        "ipv4"
    }
    fn process(&mut self, mut pkt: Packet, out: &mut Emitter<Packet>) {
        if let Ok((ip, off)) = Ipv4Repr::parse(&pkt.bytes) {
            pkt.src = ip.src;
            pkt.dst = ip.dst;
            pkt.bytes.drain(..off);
            pkt.bytes.truncate(ip.payload_len);
            match ip.protocol {
                Protocol::Udp => out.up(0, pkt),
                Protocol::Icmp => out.up(1, pkt),
                _ => {}
            }
        }
    }
}

/// UDP layer: verifies the checksum and delivers the payload.
struct UdpLayer;
impl GraphLayer<Packet> for UdpLayer {
    fn name(&self) -> &str {
        "udp"
    }
    fn process(&mut self, mut pkt: Packet, out: &mut Emitter<Packet>) {
        if let Ok((_udp, off)) = UdpRepr::parse(&pkt.bytes, pkt.src, pkt.dst) {
            pkt.bytes.drain(..off);
            out.deliver(pkt);
        }
    }
}

/// ICMP sink: just counts.
struct IcmpLayer;
impl GraphLayer<Packet> for IcmpLayer {
    fn name(&self) -> &str {
        "icmp"
    }
    fn process(&mut self, pkt: Packet, out: &mut Emitter<Packet>) {
        out.deliver(pkt);
    }
}

fn build(schedule: Schedule) -> (LayerGraph<Packet>, [NodeId; 4]) {
    let mut g = LayerGraph::new(schedule);
    let udp = g.add_layer(Box::new(UdpLayer), vec![]);
    let icmp = g.add_layer(Box::new(IcmpLayer), vec![]);
    let ip = g.add_layer(Box::new(IpLayer), vec![udp, icmp]);
    let eth = g.add_layer(Box::new(EthLayer), vec![ip]);
    g.set_entry(eth);
    (g, [eth, ip, udp, icmp])
}

/// A well-formed UDP-in-IP-in-Ethernet frame carrying `payload`.
fn udp_frame(n: u16, payload: &[u8]) -> Packet {
    let src = Ipv4Addr::new(10, 0, 0, 1);
    let dst = Ipv4Addr::new(10, 0, 0, 2);
    let udp = UdpRepr {
        src_port: 1000 + n,
        dst_port: 53,
    }
    .packet(src, dst, payload);
    let ip = Ipv4Repr {
        src,
        dst,
        protocol: Protocol::Udp,
        ttl: 64,
        ident: n,
        dont_frag: true,
        payload_len: udp.len(),
    }
    .packet(&udp);
    let eth = EthernetRepr {
        dst: EthernetAddr([2, 0, 0, 0, 0, 2]),
        src: EthernetAddr([2, 0, 0, 0, 0, 1]),
        ethertype: EtherType::Ipv4,
    }
    .frame(&ip);
    Packet {
        bytes: eth,
        src: Ipv4Addr::UNSPECIFIED,
        dst: Ipv4Addr::UNSPECIFIED,
    }
}

fn main() {
    let n = 16;
    for (label, schedule) in [
        ("conventional", Schedule::Conventional),
        ("LDLP", Schedule::Ldlp { entry_batch: 14 }),
    ] {
        let (mut g, [eth, ip, udp, _icmp]) = build(schedule);
        for i in 0..n {
            g.inject(udp_frame(i, format!("query #{i}").as_bytes()));
        }
        let delivered = g.run();
        let runs = activation_runs(g.log());
        println!(
            "{label:>12}: {} delivered, activations eth/ip/udp = {}/{}/{}, \
             {} activation runs ({})",
            delivered.len(),
            g.stats().processed[eth],
            g.stats().processed[ip],
            g.stats().processed[udp],
            runs,
            if runs <= 6 {
                "blocked: each layer's code loaded once per batch"
            } else {
                "interleaved: every message reloads every layer"
            },
        );
        // Same payloads arrive either way.
        assert_eq!(delivered.len(), n as usize);
        for (_, pkt) in &delivered {
            assert!(pkt.bytes.starts_with(b"query #"));
        }
    }
    println!(
        "\nSame layer code, same frames, same deliveries — only the schedule\n\
         differs. Under LDLP the activation log collapses from {} short runs\n\
         to one long run per layer: that is the whole trick.",
        3 * n
    );
}
