//! An ATM-style signalling switch under call-storm load.
//!
//! Functionally: drives the Q.93B-shaped call machinery through thousands
//! of complete setup/teardown handshakes over the wire codec.
//! Performance: runs the same message load through the four-layer
//! signalling stack on the paper's goal machine, conventional vs. LDLP,
//! and checks the Section 1 goal (10k pairs/s, 100 us processing).
//!
//! Run with: `cargo run --release --example signaling_switch`

use ldlp::{BatchPolicy, Discipline, StackEngine};
use signaling::call::{Caller, SignalingSwitch};
use signaling::wire::Message;
use signaling::workload::{call_arrivals, goal_machine, signaling_stack};
use simnet::{run_sim, SimConfig};

fn main() {
    // --- Functional half: a call storm through the real state machines.
    let mut switch = SignalingSwitch::new(4096);
    let mut caller = Caller::new();
    let calls = 2000;
    for _ in 0..calls {
        // SETUP -> (CALL PROCEEDING, CONNECT) -> CONNECT ACK, all through
        // the wire codec, as a remote peer would see it.
        let setup = caller.setup();
        let replies = switch.handle(&Message::decode(&setup.encode()).expect("valid setup"));
        let connect = replies
            .iter()
            .find(|m| m.connection_id().is_some())
            .expect("CONNECT with VPI/VCI");
        let ack = caller
            .handle(&Message::decode(&connect.encode()).expect("valid connect"))
            .expect("connect ack");
        switch.handle(&ack);
    }
    println!(
        "established {} calls ({} active VCs on the switch)",
        calls,
        switch.active_calls()
    );
    // Tear half of them down.
    for _ in 0..calls / 2 {
        let release = caller.release(None).expect("active call to release");
        let replies = switch.handle(&release);
        assert_eq!(replies.len(), 1, "RELEASE COMPLETE expected");
    }
    println!(
        "released {} calls; switch stats: {:?}\n",
        calls / 2,
        switch.stats()
    );

    // --- Performance half: the paper's goal experiment at 10k pairs/s.
    let pairs = 10_000.0;
    let duration = 0.5;
    let arrivals = call_arrivals(pairs, 0.02, duration, 1);
    println!(
        "offering {} setup/teardown pairs/s ({} messages over {duration}s)",
        pairs,
        arrivals.len()
    );
    for (name, discipline) in [
        ("conventional", Discipline::Conventional),
        ("LDLP", Discipline::Ldlp(BatchPolicy::DCacheFit)),
    ] {
        let (m, layers) = signaling_stack(goal_machine(), 1);
        let mut engine = StackEngine::new(m, layers, discipline);
        let r = run_sim(
            &mut engine,
            &arrivals,
            &SimConfig {
                duration_s: duration,
                ..SimConfig::default()
            },
        );
        println!(
            "  {name:>12}: mean latency {:>8.0} us, p99 {:>8.0} us, \
             {:>5} drops, {:>6.0} msg/s sustained",
            r.mean_latency_us, r.p99_latency_us, r.drops, r.throughput
        );
    }
    println!(
        "\nLDLP holds the paper's goal — 10,000 setup/teardown pairs per second\n\
         with two-digit-microsecond amortized processing — where the\n\
         conventional schedule spends its time refetching 30 KB of protocol\n\
         code through an 8 KB cache for every 100-byte message."
    );
}
