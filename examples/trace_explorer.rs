//! Touring the measurement apparatus: build the receive-and-acknowledge
//! reference trace, print its Figure-1 map and Table-1 working set,
//! replay it through machines of different generations (DEC 3000/400
//! with and without its board cache), save it to disk in the text trace
//! format, and reload it.
//!
//! Run with: `cargo run --release --example trace_explorer`

use cachesim::MachineConfig;
use memtrace::replay::replay_steady;
use memtrace::workingset::{line_size_sweep, working_set};
use memtrace::{figmap, io, phases};
use netstack::footprint::build_receive_ack_trace;

fn main() {
    let trace = build_receive_ack_trace();
    trace.validate().expect("trace is well-formed");
    println!(
        "built the receive & acknowledge trace: {} functions, {} references\n",
        trace.functions.len(),
        trace.refs.len()
    );

    // Table 1.
    let ws = working_set(&trace, 32);
    println!("{}", ws.render());

    // Figure 1 phases (footers).
    print!("{}", phases::render(&phases::phase_summaries(&trace)));

    // A slice of the active-code map.
    let coverage = figmap::function_coverage(&trace);
    let map = figmap::render(&trace, &coverage);
    println!("\nactive-code map (first 12 rows):");
    for line in map.lines().take(13) {
        println!("  {line}");
    }

    // Line-size sensitivity (Table 3's code column).
    println!("\ncode working set vs line size (Table 3):");
    for row in line_size_sweep(&trace, &[8, 16, 32, 64], 32) {
        println!(
            "  {:>3} B lines: {:>5} lines ({:+.0}% vs 32 B)",
            row.line_size, row.code.lines, row.code.d_lines_pct
        );
    }

    // Replay through two machine generations.
    println!("\nreplay, 5 packets back to back:");
    for (name, cfg) in [
        ("DEC 3000/400 (L1 only)", MachineConfig::dec3000_400()),
        (
            "DEC 3000/400 + 512KB board cache",
            MachineConfig::dec3000_400().with_board_cache(),
        ),
        ("Rosenblum 1998 (64KB L1)", MachineConfig::rosenblum_1998()),
    ] {
        // Stall cycles separate the board cache's effect: the L1 miss
        // *count* is geometry-bound, but the first packet's misses go to
        // memory (10 + 30 cycles) while later packets' L1 misses hit the
        // warm L2 (10 cycles). The L1-only preset implicitly assumes an
        // always-warm L2 — the paper's configuration.
        let mut machine = cachesim::Machine::new(cfg);
        let mut cold_stalls = 0;
        let mut steady_stalls = 0;
        for i in 0..5 {
            let before = machine.stats().stall_cycles;
            memtrace::replay::replay(&trace, &mut machine);
            let stalls = machine.stats().stall_cycles - before;
            if i == 0 {
                cold_stalls = stalls;
            } else if i == 4 {
                steady_stalls = stalls;
            }
        }
        let (cold, steady) = replay_steady(&trace, cfg, 5);
        println!(
            "  {name:<34} cold {:>5} misses / {:>6} stalls, steady {:>5} misses / {:>6} stalls",
            cold.total_misses(),
            cold_stalls,
            steady.total_misses(),
            steady_stalls,
        );
    }

    // Serialize, reload, verify.
    let text = io::to_text(&trace);
    let path = std::env::temp_dir().join("receive_ack.trace");
    std::fs::write(&path, &text).expect("write trace");
    let reloaded = io::from_text(&std::fs::read_to_string(&path).expect("read back"))
        .expect("parse trace");
    assert_eq!(
        working_set(&reloaded, 32),
        working_set(&trace, 32),
        "round trip preserves the analysis"
    );
    println!(
        "\nsaved {} KB of trace to {} and reloaded it — analyses agree.",
        text.len() / 1024,
        path.display()
    );
}
