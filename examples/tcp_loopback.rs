//! TCP over the functional stack: two hosts on an in-process link run a
//! real three-way handshake, transfer data with MSS segmentation and
//! delayed ACKs, close gracefully — then print the protocol counters the
//! paper's measurements revolve around (header-prediction fast path,
//! single-entry PCB cache) and the regenerated Table 1 working set.
//!
//! Run with: `cargo run --release --example tcp_loopback`

use memtrace::workingset::working_set;
use netstack::footprint::build_receive_ack_trace;
use netstack::iface::{Channel, Interface};
use netstack::tcp::machine::{TcpConfig, TcpStack};
use netstack::tcp::pcb::TcpState;
use netstack::wire::ethernet::EthernetAddr;
use netstack::wire::ipv4::Ipv4Addr;

fn host(n: u8) -> Interface {
    Interface::new(
        EthernetAddr([2, 0, 0, 0, 0, n]),
        Ipv4Addr::new(192, 168, 69, n),
        TcpStack::new(TcpConfig::default()),
    )
}

fn main() {
    let (mut link_a, mut link_b) = Channel::pair();
    let mut client = host(1);
    let mut server = host(2);

    // Server listens; client connects. ARP resolution happens on demand.
    let listener = server.tcp.listen(server.ip(), 80).expect("bind :80");
    let server_ip = server.ip();
    let conn = client
        .tcp
        .connect(client.ip(), server_ip, 80, 0)
        .expect("connect");

    let mut now = 0u64;
    // Run until two consecutive quiet rounds: a queued segment flushed at
    // the end of a round must still get delivered in the next one.
    let mut pump = |client: &mut Interface, server: &mut Interface, now: u64| {
        let mut quiet = 0;
        while quiet < 2 {
            let n = client.poll(&mut link_a, now) + server.poll(&mut link_b, now);
            client.flush_tcp(&mut link_a);
            server.flush_tcp(&mut link_b);
            quiet = if n == 0 { quiet + 1 } else { 0 };
        }
    };
    pump(&mut client, &mut server, now);
    assert_eq!(client.tcp.state(conn), TcpState::Established);
    println!("handshake complete: client socket {conn} ESTABLISHED");

    let accepted = server
        .tcp
        .take_events()
        .iter()
        .find_map(|(id, e)| {
            matches!(e, netstack::tcp::machine::TcpEvent::Accepted { .. }).then_some(*id)
        })
        .expect("server accepted a connection");
    println!("server accepted socket {accepted} (listener {listener})");

    // Bulk transfer: 64 KB client -> server, draining as we go.
    let payload: Vec<u8> = (0..65536u32).map(|i| (i % 251) as u8).collect();
    let mut sent = 0;
    let mut received = Vec::with_capacity(payload.len());
    let mut buf = [0u8; 4096];
    while received.len() < payload.len() {
        now += 1;
        if sent < payload.len() {
            let chunk = &payload[sent..(sent + 4096).min(payload.len())];
            sent += client.tcp.send(conn, chunk, now).expect("send");
        }
        pump(&mut client, &mut server, now);
        loop {
            let n = server.tcp.recv(accepted, &mut buf).expect("recv");
            if n == 0 {
                break;
            }
            received.extend_from_slice(&buf[..n]);
        }
    }
    assert_eq!(received, payload, "payload arrived intact");
    println!("transferred {} bytes intact in {now} ticks", received.len());

    // Graceful close in both directions.
    client.tcp.close(conn, now).expect("close");
    pump(&mut client, &mut server, now);
    server.tcp.close(accepted, now).expect("close");
    pump(&mut client, &mut server, now);
    println!(
        "close complete: client {:?}, server {:?}",
        client.tcp.state(conn),
        server.tcp.state(accepted)
    );

    // The counters behind the paper's story.
    let st = server.tcp.stats();
    let cache = server.tcp.pcb_cache_stats();
    println!("\nreceiver counters:");
    println!("  segments in:           {}", st.segs_in);
    println!("  fast path (hdr pred):  {} ({:.0}%)", st.fast_path,
        100.0 * st.fast_path as f64 / (st.fast_path + st.slow_path).max(1) as f64);
    println!("  slow path:             {}", st.slow_path);
    println!("  delayed ACKs:          {}", st.delayed_acks);
    println!(
        "  PCB lookups:           {} cache hits / {} walk hits / {} no match ({:.0}% cached)",
        cache.cache_hits,
        cache.walk_hits,
        cache.no_match,
        100.0 * cache.cache_hit_rate()
    );

    // And the measurement the paper starts from: this receive path's
    // working set, regenerated from the instrumented trace.
    let ws = working_set(&build_receive_ack_trace(), 32);
    println!(
        "\nTable 1 working set of one receive & acknowledge: {} B code,\n\
         {} B read-only data, {} B mutable data — vs a 552-byte message.\n\
         The code is the traffic; that is why LDLP works.",
        ws.total.code.bytes, ws.total.ro_data.bytes, ws.total.mut_data.bytes
    );
}
