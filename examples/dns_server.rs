//! A DNS server behind the full network stack — the paper's first-listed
//! small-message protocol, end to end.
//!
//! Functionally: queries travel client -> Ethernet -> IPv4 -> UDP ->
//! DNS server and back, with ARP resolution and checksums, over an
//! in-process link. Performance: the same query load through the
//! simulated resolver stack, conventional vs. LDLP.
//!
//! Run with: `cargo run --release --example dns_server`

use cachesim::MachineConfig;
use ldlp::synth::stack_with;
use ldlp::{BatchPolicy, Discipline, StackEngine};
use netstack::iface::{Channel, Interface};
use netstack::tcp::machine::{TcpConfig, TcpStack};
use netstack::wire::ethernet::EthernetAddr;
use netstack::wire::ipv4::Ipv4Addr;
use signaling::dns::{DnsMessage, DnsServer, Rcode};
use simnet::traffic::{PoissonSource, TrafficSource};
use simnet::{run_sim, SimConfig};

fn host(n: u8) -> Interface {
    Interface::new(
        EthernetAddr([2, 0, 0, 0, 0, n]),
        Ipv4Addr::new(192, 168, 69, n),
        TcpStack::new(TcpConfig::default()),
    )
}

fn main() {
    // --- Functional half: DNS over UDP over IPv4 over Ethernet. -------
    let (mut cd, mut sd) = Channel::pair();
    let mut client = host(1);
    let mut server_host = host(2);
    let mut dns = DnsServer::new();
    dns.add_record("switch.example.net", Ipv4Addr::new(192, 168, 69, 7));
    dns.add_record("switch.example.net", Ipv4Addr::new(192, 168, 69, 8));

    server_host.udp_bind(53).expect("bind :53");
    client.udp_bind(4000).expect("client port");

    let names = ["switch.example.net", "missing.example.net", "switch.example.net"];
    for (i, name) in names.iter().enumerate() {
        let server_ip = server_host.ip();
        let q = DnsMessage::query(i as u16, name).encode();
        client.udp_send(&mut cd, 4000, server_ip, 53, &q);
    }
    // Pump the link; the server application answers each datagram.
    for _ in 0..8 {
        client.poll(&mut cd, 0);
        server_host.poll(&mut sd, 0);
        while let Some(dg) = server_host.udp_recv(53) {
            let reply = dns.handle(&dg.payload);
            server_host.udp_send(&mut sd, 53, dg.src_addr, dg.src_port, &reply);
        }
    }
    let mut answered = 0;
    let mut nx = 0;
    while let Some(dg) = client.udp_recv(4000) {
        let m = DnsMessage::decode(&dg.payload).expect("valid response");
        match m.rcode {
            Rcode::NoError => {
                answered += 1;
                assert_eq!(m.answers.len(), 2);
            }
            Rcode::NxDomain => nx += 1,
            other => panic!("unexpected rcode {other:?}"),
        }
    }
    println!(
        "functional: {answered} answered, {nx} NXDOMAIN over the full stack \
         (server stats: {:?})\n",
        dns.stats()
    );
    assert_eq!((answered, nx), (2, 1));

    // --- Performance half: a resolver under load. ---------------------
    // A 90s resolver stack: driver, IP, UDP, and a name-lookup layer
    // with its hash/trie code — ~26 KB against an 8 KB I-cache. Queries
    // are ~50 bytes, answers ~80: textbook small messages.
    println!("resolver under Poisson query load (52-byte queries):");
    println!(
        "{:>9}  {:>12} {:>7}   {:>12} {:>7} {:>6}",
        "queries/s", "conv lat", "drops", "LDLP lat", "drops", "batch"
    );
    for rate in [2000.0, 4000.0, 6000.0, 8000.0] {
        let arrivals = PoissonSource::new(rate, 52, 5).take_until(0.5);
        let cfg = SimConfig {
            duration_s: 0.5,
            ..SimConfig::default()
        };
        let machine = MachineConfig::synthetic_benchmark();
        let (m, layers) = stack_with(machine, 9, 4, 6656, 512);
        let mut conv = StackEngine::new(m, layers, Discipline::Conventional);
        let rc = run_sim(&mut conv, &arrivals, &cfg);
        let (m, layers) = stack_with(machine, 9, 4, 6656, 512);
        let mut ldlp = StackEngine::new(m, layers, Discipline::Ldlp(BatchPolicy::DCacheFit));
        let rl = run_sim(&mut ldlp, &arrivals, &cfg);
        println!(
            "{:>9}  {:>10.0}us {:>7}   {:>10.0}us {:>7} {:>6.1}",
            rate, rc.mean_latency_us, rc.drops, rl.mean_latency_us, rl.drops, rl.mean_batch
        );
    }
    println!(
        "\nA 50-byte query against 26 KB of resolver code: the purest\n\
         small-message regime in the paper's opening list."
    );
}
