//! The conclusion's WWW-server scenario: "LDLP may improve performance
//! for Internet WWW servers, where the data transfer unit is 512 bytes or
//! less in most circumstances" (Section 6).
//!
//! Models a 1996 web server: many concurrent connections, each exchanging
//! small HTTP requests (~200 B) and small responses (~512 B), through the
//! full TCP/IP receive path whose working set Section 2 measured at
//! ~35 KB. Compares request latency and capacity under conventional and
//! LDLP scheduling, sweeping request rate.
//!
//! Run with: `cargo run --release --example www_server`

use cachesim::MachineConfig;
use ldlp::synth::stack_with;
use ldlp::{BatchPolicy, Discipline, StackEngine};
use simnet::traffic::{Arrival, PoissonSource, TrafficSource};
use simnet::{run_sim, SimConfig};

/// Builds a web-server-bound packet mix: alternating ~200-byte requests
/// and 512-byte response segments (ACK-clocked), Poisson request process.
fn http_arrivals(requests_per_s: f64, duration_s: f64, seed: u64) -> Vec<Arrival> {
    let mut reqs = PoissonSource::new(requests_per_s, 200, seed);
    let mut out = Vec::new();
    for r in reqs.take_until(duration_s) {
        out.push(r);
        // The client's ACK of our 512-byte response arrives ~one RTT
        // later and must also climb the receive path.
        let ack_t = r.time_s + 0.002;
        if ack_t < duration_s {
            out.push(Arrival {
                time_s: ack_t,
                bytes: 64,
            });
        }
    }
    out.sort_by(|a, b| a.time_s.total_cmp(&b.time_s));
    out
}

fn main() {
    // The measured TCP/IP stack: ~35 KB of code+RO data across the whole
    // receive path. Modelled as 6 layers of 6 KB (device, ethernet, ip,
    // tcp, socket, kernel glue — the six candidate layers of Figure 1).
    let machine = MachineConfig::synthetic_benchmark();
    println!(
        "WWW server on a {} MHz CPU with {} KB I-cache; TCP/IP receive path\n\
         modelled as 6 layers x 6 KB (Figure 1's candidate layers).\n",
        machine.clock_mhz,
        machine.icache.size_bytes / 1024
    );
    println!(
        "{:>9}  {:>14} {:>8}   {:>14} {:>8} {:>7}",
        "req/s", "conv lat", "drops", "LDLP lat", "drops", "batch"
    );
    for rps in [500.0, 1000.0, 2000.0, 3000.0, 4000.0] {
        let arrivals = http_arrivals(rps, 1.0, 11);
        let cfg = SimConfig::default();

        let (m, layers) = stack_with(machine, 3, 6, 6 * 1024, 256);
        let mut conv = StackEngine::new(m, layers, Discipline::Conventional);
        let rc = run_sim(&mut conv, &arrivals, &cfg);

        let (m, layers) = stack_with(machine, 3, 6, 6 * 1024, 256);
        let mut ldlp = StackEngine::new(m, layers, Discipline::Ldlp(BatchPolicy::DCacheFit));
        let rl = run_sim(&mut ldlp, &arrivals, &cfg);

        println!(
            "{:>9}  {:>12.0}us {:>8}   {:>12.0}us {:>8} {:>7.1}",
            rps, rc.mean_latency_us, rc.drops, rl.mean_latency_us, rl.drops, rl.mean_batch
        );
    }
    println!(
        "\nEach HTTP request is two small packets up the stack (request +\n\
         ACK); with six layers of code the working set is ~36 KB and the\n\
         conventional server saturates at a fraction of the load LDLP\n\
         sustains — small messages make web servers signalling-bound."
    );
}
