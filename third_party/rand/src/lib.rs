//! Offline stand-in for the `rand` crate.
//!
//! The build environment has no network access, so the handful of `rand`
//! APIs this workspace depends on are reimplemented here behind the same
//! names: `rngs::StdRng`, [`SeedableRng::seed_from_u64`], and the
//! [`RngExt`] extension methods `random` and `random_range`.
//!
//! The generator is xoshiro256++ seeded through SplitMix64 — deterministic
//! for a given seed on every platform, which is all the simulators require
//! (the paper's methodology is "N seeded random placements", not any
//! particular bit stream). Streams differ from upstream `rand`'s `StdRng`
//! (ChaCha12), so regenerated results differ numerically from ones
//! produced with the real crate while remaining statistically equivalent.

use std::ops::Range;

/// A source of random 64-bit words.
pub trait RngCore {
    /// The next 64 random bits.
    fn next_u64(&mut self) -> u64;

    /// The next 32 random bits.
    fn next_u32(&mut self) -> u32 {
        (self.next_u64() >> 32) as u32
    }

    /// Fills `dest` with random bytes.
    fn fill_bytes(&mut self, dest: &mut [u8]) {
        for chunk in dest.chunks_mut(8) {
            let word = self.next_u64().to_le_bytes();
            chunk.copy_from_slice(&word[..chunk.len()]);
        }
    }
}

/// Construction of a generator from a seed.
pub trait SeedableRng: Sized {
    /// Builds a generator whose stream is a pure function of `seed`.
    fn seed_from_u64(seed: u64) -> Self;
}

/// Types that can be drawn uniformly from an [`RngCore`].
pub trait Random: Sized {
    /// Draws one value.
    fn random<R: RngCore + ?Sized>(rng: &mut R) -> Self;
}

impl Random for bool {
    fn random<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        rng.next_u64() >> 63 != 0
    }
}

impl Random for f64 {
    fn random<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        // 53 uniform mantissa bits in [0, 1).
        (rng.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
    }
}

impl Random for f32 {
    fn random<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        (rng.next_u64() >> 40) as f32 * (1.0 / (1u32 << 24) as f32)
    }
}

macro_rules! impl_random_int {
    ($($t:ty),*) => {$(
        impl Random for $t {
            fn random<R: RngCore + ?Sized>(rng: &mut R) -> Self {
                rng.next_u64() as $t
            }
        }
    )*};
}
impl_random_int!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

impl<const N: usize> Random for [u8; N] {
    fn random<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        let mut out = [0u8; N];
        rng.fill_bytes(&mut out);
        out
    }
}

/// Ranges a uniform value can be drawn from.
pub trait SampleRange<T> {
    /// Draws one value from the range. Panics on an empty range.
    fn sample_from<R: RngCore + ?Sized>(self, rng: &mut R) -> T;
}

macro_rules! impl_sample_range {
    ($($t:ty),*) => {$(
        impl SampleRange<$t> for Range<$t> {
            fn sample_from<R: RngCore + ?Sized>(self, rng: &mut R) -> $t {
                assert!(self.start < self.end, "cannot sample empty range");
                let span = (self.end - self.start) as u64;
                // Widening-multiply range reduction (near-uniform; the
                // bias for spans far below 2^64 is unobservable here).
                let v = ((rng.next_u64() as u128 * span as u128) >> 64) as u64;
                self.start + v as $t
            }
        }
    )*};
}
impl_sample_range!(u8, u16, u32, u64, usize);

/// Extension methods on every generator (the `rand` 0.10 `Rng`/`RngExt`
/// surface this workspace uses).
pub trait RngExt: RngCore {
    /// Draws a uniform value of type `T`.
    fn random<T: Random>(&mut self) -> T {
        T::random(self)
    }

    /// Draws a uniform value from `range`.
    fn random_range<T, S: SampleRange<T>>(&mut self, range: S) -> T {
        range.sample_from(self)
    }

    /// Returns `true` with probability `p`.
    fn random_bool(&mut self, p: f64) -> bool {
        self.random::<f64>() < p
    }
}

impl<R: RngCore + ?Sized> RngExt for R {}

/// Named generators.
pub mod rngs {
    use super::{RngCore, SeedableRng};

    /// The workspace's standard generator: xoshiro256++ behind SplitMix64
    /// seeding. Fast, high quality, and deterministic per seed.
    #[derive(Debug, Clone, PartialEq, Eq)]
    pub struct StdRng {
        s: [u64; 4],
    }

    /// A small, fast generator — same engine as [`StdRng`] here.
    pub type SmallRng = StdRng;

    fn splitmix64(state: &mut u64) -> u64 {
        *state = state.wrapping_add(0x9e37_79b9_7f4a_7c15);
        let mut z = *state;
        z = (z ^ (z >> 30)).wrapping_mul(0xbf58_476d_1ce4_e5b9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94d0_49bb_1331_11eb);
        z ^ (z >> 31)
    }

    impl SeedableRng for StdRng {
        fn seed_from_u64(seed: u64) -> Self {
            let mut sm = seed;
            StdRng {
                s: [
                    splitmix64(&mut sm),
                    splitmix64(&mut sm),
                    splitmix64(&mut sm),
                    splitmix64(&mut sm),
                ],
            }
        }
    }

    impl RngCore for StdRng {
        fn next_u64(&mut self) -> u64 {
            let s = &mut self.s;
            let result = s[0]
                .wrapping_add(s[3])
                .rotate_left(23)
                .wrapping_add(s[0]);
            let t = s[1] << 17;
            s[2] ^= s[0];
            s[3] ^= s[1];
            s[1] ^= s[2];
            s[0] ^= s[3];
            s[2] ^= t;
            s[3] = s[3].rotate_left(45);
            result
        }
    }
}

#[cfg(test)]
mod tests {
    use super::rngs::StdRng;
    use super::{RngExt, SeedableRng};

    #[test]
    fn deterministic_per_seed() {
        let mut a = StdRng::seed_from_u64(7);
        let mut b = StdRng::seed_from_u64(7);
        let mut c = StdRng::seed_from_u64(8);
        let va: Vec<u64> = (0..8).map(|_| a.random::<u64>()).collect();
        let vb: Vec<u64> = (0..8).map(|_| b.random::<u64>()).collect();
        let vc: Vec<u64> = (0..8).map(|_| c.random::<u64>()).collect();
        assert_eq!(va, vb);
        assert_ne!(va, vc);
    }

    #[test]
    fn f64_in_unit_interval() {
        let mut rng = StdRng::seed_from_u64(1);
        let mut sum = 0.0;
        for _ in 0..10_000 {
            let v: f64 = rng.random();
            assert!((0.0..1.0).contains(&v));
            sum += v;
        }
        let mean = sum / 10_000.0;
        assert!((0.45..0.55).contains(&mean), "mean {mean}");
    }

    #[test]
    fn range_sampling_stays_in_bounds() {
        let mut rng = StdRng::seed_from_u64(2);
        let mut seen = [false; 10];
        for _ in 0..1_000 {
            let v: usize = rng.random_range(3..13);
            assert!((3..13).contains(&v));
            seen[v - 3] = true;
        }
        assert!(seen.iter().all(|&s| s), "all values of a small range hit");
    }

    #[test]
    fn bool_is_roughly_fair() {
        let mut rng = StdRng::seed_from_u64(3);
        let heads = (0..10_000).filter(|_| rng.random::<bool>()).count();
        assert!((4_500..5_500).contains(&heads), "{heads} heads");
    }

    #[test]
    fn byte_arrays_fill_completely() {
        let mut rng = StdRng::seed_from_u64(4);
        let a: [u8; 6] = rng.random();
        let b: [u8; 6] = rng.random();
        assert_ne!(a, b, "consecutive draws should differ");
    }
}
