//! Offline stand-in for the `criterion` crate.
//!
//! A minimal benchmark harness exposing the API subset this workspace's
//! benches use: `Criterion::bench_function` / `benchmark_group`,
//! `Bencher::iter` / `iter_batched`, `Throughput`, `BenchmarkId`,
//! `BatchSize`, and the `criterion_group!` / `criterion_main!` macros.
//!
//! Measurement is adaptive mean-of-N timing: each routine is calibrated
//! to roughly `CRITERION_TARGET_MS` milliseconds (default 200) and the
//! mean time per iteration is printed with any configured throughput.
//! There is no statistical machinery — this exists so `cargo bench`
//! compiles and produces useful numbers without network access.

// A benchmark harness exists to read the wall clock; the workspace-wide
// `disallowed-methods` ban on `Instant::now` targets simulation code.
#![allow(clippy::disallowed_methods)]

use std::fmt::Display;
use std::time::{Duration, Instant};

pub use std::hint::black_box;

/// How batched inputs are grouped (accepted for API parity; the stand-in
/// regenerates the input for every iteration regardless).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum BatchSize {
    SmallInput,
    LargeInput,
    PerIteration,
}

/// Work-per-iteration annotation used to derive rates.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Throughput {
    /// Bytes processed per iteration.
    Bytes(u64),
    /// Logical elements processed per iteration.
    Elements(u64),
}

/// A benchmark identifier: function name plus parameter.
#[derive(Debug, Clone)]
pub struct BenchmarkId {
    id: String,
}

impl BenchmarkId {
    /// `name/parameter`.
    pub fn new<N: Display, P: Display>(name: N, parameter: P) -> Self {
        BenchmarkId {
            id: format!("{name}/{parameter}"),
        }
    }

    /// Parameter-only id (takes the group's name as the function part).
    pub fn from_parameter<P: Display>(parameter: P) -> Self {
        BenchmarkId {
            id: parameter.to_string(),
        }
    }
}

impl From<&str> for BenchmarkId {
    fn from(s: &str) -> Self {
        BenchmarkId { id: s.to_string() }
    }
}

impl From<String> for BenchmarkId {
    fn from(s: String) -> Self {
        BenchmarkId { id: s }
    }
}

/// Drives one benchmark routine.
pub struct Bencher {
    /// Mean nanoseconds per iteration, filled in by `iter*`.
    mean_ns: f64,
    iters: u64,
    target: Duration,
}

impl Bencher {
    fn new(target: Duration) -> Self {
        Bencher {
            mean_ns: 0.0,
            iters: 0,
            target,
        }
    }

    /// Times `f` adaptively and records the mean per-iteration cost.
    pub fn iter<O, F: FnMut() -> O>(&mut self, mut f: F) {
        // Calibrate: double until the routine consumes ~1/10 the target.
        let mut n: u64 = 1;
        let per_iter_ns = loop {
            let start = Instant::now();
            for _ in 0..n {
                black_box(f());
            }
            let elapsed = start.elapsed();
            if elapsed >= self.target / 10 || n >= 1 << 30 {
                break elapsed.as_nanos() as f64 / n as f64;
            }
            n *= 2;
        };
        // Measure: as many iterations as fit the remaining budget.
        let measured = ((self.target.as_nanos() as f64 / per_iter_ns.max(1.0)) as u64).max(1);
        let start = Instant::now();
        for _ in 0..measured {
            black_box(f());
        }
        let elapsed = start.elapsed();
        self.mean_ns = elapsed.as_nanos() as f64 / measured as f64;
        self.iters = measured;
    }

    /// Times `routine` over fresh inputs from `setup` (setup excluded
    /// from timing).
    pub fn iter_batched<I, O, S, F>(&mut self, mut setup: S, mut routine: F, _size: BatchSize)
    where
        S: FnMut() -> I,
        F: FnMut(I) -> O,
    {
        let mut n: u64 = 1;
        let per_iter_ns = loop {
            let inputs: Vec<I> = (0..n).map(|_| setup()).collect();
            let start = Instant::now();
            for input in inputs {
                black_box(routine(input));
            }
            let elapsed = start.elapsed();
            if elapsed >= self.target / 10 || n >= 1 << 24 {
                break elapsed.as_nanos() as f64 / n as f64;
            }
            n *= 2;
        };
        let measured = ((self.target.as_nanos() as f64 / per_iter_ns.max(1.0)) as u64)
            .clamp(1, 1 << 24);
        let inputs: Vec<I> = (0..measured).map(|_| setup()).collect();
        let start = Instant::now();
        for input in inputs {
            black_box(routine(input));
        }
        let elapsed = start.elapsed();
        self.mean_ns = elapsed.as_nanos() as f64 / measured as f64;
        self.iters = measured;
    }
}

fn human_time(ns: f64) -> String {
    if ns < 1_000.0 {
        format!("{ns:.1} ns")
    } else if ns < 1_000_000.0 {
        format!("{:.2} us", ns / 1_000.0)
    } else if ns < 1_000_000_000.0 {
        format!("{:.2} ms", ns / 1_000_000.0)
    } else {
        format!("{:.3} s", ns / 1_000_000_000.0)
    }
}

fn human_rate(per_s: f64, unit: &str) -> String {
    if per_s >= 1e9 {
        format!("{:.2} G{unit}/s", per_s / 1e9)
    } else if per_s >= 1e6 {
        format!("{:.2} M{unit}/s", per_s / 1e6)
    } else if per_s >= 1e3 {
        format!("{:.2} K{unit}/s", per_s / 1e3)
    } else {
        format!("{per_s:.1} {unit}/s")
    }
}

fn report(name: &str, b: &Bencher, throughput: Option<Throughput>) {
    let mut line = format!("{name:<48} {:>12}/iter  ({} iters)", human_time(b.mean_ns), b.iters);
    if let Some(t) = throughput {
        let per_s = match t {
            Throughput::Bytes(n) => n as f64 / (b.mean_ns / 1e9),
            Throughput::Elements(n) => n as f64 / (b.mean_ns / 1e9),
        };
        let unit = match t {
            Throughput::Bytes(_) => "B",
            Throughput::Elements(_) => "elem",
        };
        line.push_str(&format!("  {}", human_rate(per_s, unit)));
    }
    println!("{line}");
}

/// The top-level benchmark driver.
pub struct Criterion {
    target: Duration,
}

impl Default for Criterion {
    fn default() -> Self {
        let ms = std::env::var("CRITERION_TARGET_MS")
            .ok()
            .and_then(|v| v.parse().ok())
            .unwrap_or(200u64);
        Criterion {
            target: Duration::from_millis(ms),
        }
    }
}

impl Criterion {
    /// Runs one named benchmark.
    pub fn bench_function<F>(&mut self, name: &str, f: F) -> &mut Self
    where
        F: FnOnce(&mut Bencher),
    {
        let mut b = Bencher::new(self.target);
        f(&mut b);
        report(name, &b, None);
        self
    }

    /// Opens a named group of related benchmarks.
    pub fn benchmark_group(&mut self, name: &str) -> BenchmarkGroup<'_> {
        BenchmarkGroup {
            name: name.to_string(),
            target: self.target,
            throughput: None,
            _parent: std::marker::PhantomData,
        }
    }
}

/// A group of related benchmarks sharing a throughput annotation.
pub struct BenchmarkGroup<'a> {
    name: String,
    target: Duration,
    throughput: Option<Throughput>,
    _parent: std::marker::PhantomData<&'a mut Criterion>,
}

impl BenchmarkGroup<'_> {
    /// Sets the work-per-iteration annotation for subsequent benches.
    pub fn throughput(&mut self, t: Throughput) -> &mut Self {
        self.throughput = Some(t);
        self
    }

    /// Overrides the per-bench measurement budget (API parity; accepted).
    pub fn measurement_time(&mut self, d: Duration) -> &mut Self {
        self.target = d;
        self
    }

    /// Overrides the sample count (API parity; ignored by the stand-in).
    pub fn sample_size(&mut self, _n: usize) -> &mut Self {
        self
    }

    /// Runs one benchmark in the group.
    pub fn bench_function<I, F>(&mut self, id: I, f: F) -> &mut Self
    where
        I: Into<BenchmarkId>,
        F: FnOnce(&mut Bencher),
    {
        let id = id.into();
        let mut b = Bencher::new(self.target);
        f(&mut b);
        report(&format!("{}/{}", self.name, id.id), &b, self.throughput);
        self
    }

    /// Runs one benchmark with an explicit input value.
    pub fn bench_with_input<I, F, In>(&mut self, id: I, input: &In, f: F) -> &mut Self
    where
        I: Into<BenchmarkId>,
        F: FnOnce(&mut Bencher, &In),
    {
        let id = id.into();
        let mut b = Bencher::new(self.target);
        f(&mut b, input);
        report(&format!("{}/{}", self.name, id.id), &b, self.throughput);
        self
    }

    /// Ends the group.
    pub fn finish(self) {}
}

/// Bundles benchmark functions into a runnable group.
#[macro_export]
macro_rules! criterion_group {
    ($name:ident, $($target:path),+ $(,)?) => {
        pub fn $name() {
            let mut criterion = $crate::Criterion::default();
            $( $target(&mut criterion); )+
        }
    };
}

/// Emits `main` running the listed groups.
#[macro_export]
macro_rules! criterion_main {
    ($($group:path),+ $(,)?) => {
        fn main() {
            $( $group(); )+
        }
    };
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn bench_function_runs_and_reports() {
        std::env::set_var("CRITERION_TARGET_MS", "5");
        let mut c = Criterion::default();
        c.bench_function("smoke/add", |b| b.iter(|| black_box(1u64) + black_box(2)));
        let mut group = c.benchmark_group("g");
        group.throughput(Throughput::Elements(3));
        group.bench_with_input(BenchmarkId::new("with_input", 3), &3u64, |b, &n| {
            b.iter(|| (0..n).sum::<u64>())
        });
        group.bench_function("batched", |b| {
            b.iter_batched(|| vec![1u8; 16], |v| v.len(), BatchSize::SmallInput)
        });
        group.finish();
    }
}
