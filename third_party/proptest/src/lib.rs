//! Offline stand-in for the `proptest` crate.
//!
//! Implements the subset of the proptest API this workspace's property
//! tests use: the [`Strategy`] trait with `prop_map`, `any::<T>()`,
//! integer-range strategies, tuple strategies, `collection::vec`,
//! `option::of`, `prop_oneof!`, and the `proptest!`/`prop_assert!` macro
//! family. Cases are generated from a deterministic per-test seed stream
//! (no shrinking — a failing case reports its seed instead).
//!
//! The number of cases per test defaults to 256 and can be overridden
//! with the `PROPTEST_CASES` environment variable.

use rand::rngs::StdRng;
use rand::{RngExt, SeedableRng};

pub mod strategy {
    use super::*;

    /// A generator of test-case values.
    pub trait Strategy {
        /// The type of generated values.
        type Value;

        /// Draws one value.
        fn sample(&self, rng: &mut StdRng) -> Self::Value;

        /// Maps generated values through `f`.
        fn prop_map<O, F>(self, f: F) -> Map<Self, F>
        where
            Self: Sized,
            F: Fn(Self::Value) -> O,
        {
            Map { inner: self, f }
        }

        /// Erases the concrete strategy type.
        fn boxed(self) -> BoxedStrategy<Self::Value>
        where
            Self: Sized + 'static,
        {
            BoxedStrategy(Box::new(self))
        }
    }

    impl<S: Strategy + ?Sized> Strategy for &S {
        type Value = S::Value;
        fn sample(&self, rng: &mut StdRng) -> Self::Value {
            (**self).sample(rng)
        }
    }

    /// The result of [`Strategy::prop_map`].
    pub struct Map<S, F> {
        pub(crate) inner: S,
        pub(crate) f: F,
    }

    impl<S: Strategy, O, F: Fn(S::Value) -> O> Strategy for Map<S, F> {
        type Value = O;
        fn sample(&self, rng: &mut StdRng) -> O {
            (self.f)(self.inner.sample(rng))
        }
    }

    /// A type-erased strategy (the arms of `prop_oneof!`).
    pub struct BoxedStrategy<T>(Box<dyn Strategy<Value = T>>);

    impl<T> Strategy for BoxedStrategy<T> {
        type Value = T;
        fn sample(&self, rng: &mut StdRng) -> T {
            self.0.sample(rng)
        }
    }

    /// Uniform choice between several strategies of one value type.
    pub struct Union<T> {
        arms: Vec<BoxedStrategy<T>>,
    }

    impl<T> Union<T> {
        /// Builds a union over `arms` (must be non-empty).
        pub fn new(arms: Vec<BoxedStrategy<T>>) -> Self {
            assert!(!arms.is_empty(), "prop_oneof! needs at least one arm");
            Union { arms }
        }
    }

    impl<T> Strategy for Union<T> {
        type Value = T;
        fn sample(&self, rng: &mut StdRng) -> T {
            let i = rng.random_range(0..self.arms.len());
            self.arms[i].sample(rng)
        }
    }

    /// `any::<T>()` — the canonical strategy for `T`.
    pub struct Any<T>(std::marker::PhantomData<fn() -> T>);

    /// Types with a canonical strategy.
    pub trait Arbitrary: Sized {
        /// Draws one arbitrary value.
        fn arbitrary(rng: &mut StdRng) -> Self;
    }

    /// Returns the canonical strategy for `T`.
    pub fn any<T: Arbitrary>() -> Any<T> {
        Any(std::marker::PhantomData)
    }

    impl<T: Arbitrary> Strategy for Any<T> {
        type Value = T;
        fn sample(&self, rng: &mut StdRng) -> T {
            T::arbitrary(rng)
        }
    }

    macro_rules! impl_arbitrary_int {
        ($($t:ty),*) => {$(
            impl Arbitrary for $t {
                fn arbitrary(rng: &mut StdRng) -> Self {
                    rng.random::<u64>() as $t
                }
            }
        )*};
    }
    impl_arbitrary_int!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

    impl Arbitrary for bool {
        fn arbitrary(rng: &mut StdRng) -> Self {
            rng.random::<bool>()
        }
    }

    impl<const N: usize> Arbitrary for [u8; N] {
        fn arbitrary(rng: &mut StdRng) -> Self {
            rng.random::<[u8; N]>()
        }
    }

    macro_rules! impl_range_strategy {
        ($($t:ty),*) => {$(
            impl Strategy for std::ops::Range<$t> {
                type Value = $t;
                fn sample(&self, rng: &mut StdRng) -> $t {
                    rng.random_range(self.clone())
                }
            }
        )*};
    }
    impl_range_strategy!(u8, u16, u32, u64, usize);

    // f64 ranges: scale one uniform u64 draw into the interval. Half-open
    // ranges never yield `end`; inclusive ranges may yield either bound.
    impl Strategy for std::ops::Range<f64> {
        type Value = f64;
        fn sample(&self, rng: &mut StdRng) -> f64 {
            let unit = (rng.random::<u64>() >> 11) as f64 / (1u64 << 53) as f64;
            self.start + (self.end - self.start) * unit
        }
    }

    impl Strategy for std::ops::RangeInclusive<f64> {
        type Value = f64;
        fn sample(&self, rng: &mut StdRng) -> f64 {
            let unit = (rng.random::<u64>() >> 11) as f64 / ((1u64 << 53) - 1) as f64;
            self.start() + (self.end() - self.start()) * unit
        }
    }

    macro_rules! impl_tuple_strategy {
        ($($s:ident . $idx:tt),+) => {
            impl<$($s: Strategy),+> Strategy for ($($s,)+) {
                type Value = ($($s::Value,)+);
                fn sample(&self, rng: &mut StdRng) -> Self::Value {
                    ($(self.$idx.sample(rng),)+)
                }
            }
        };
    }
    impl_tuple_strategy!(S0.0);
    impl_tuple_strategy!(S0.0, S1.1);
    impl_tuple_strategy!(S0.0, S1.1, S2.2);
    impl_tuple_strategy!(S0.0, S1.1, S2.2, S3.3);
    impl_tuple_strategy!(S0.0, S1.1, S2.2, S3.3, S4.4);
    impl_tuple_strategy!(S0.0, S1.1, S2.2, S3.3, S4.4, S5.5);
    impl_tuple_strategy!(S0.0, S1.1, S2.2, S3.3, S4.4, S5.5, S6.6);
    impl_tuple_strategy!(S0.0, S1.1, S2.2, S3.3, S4.4, S5.5, S6.6, S7.7);
    impl_tuple_strategy!(S0.0, S1.1, S2.2, S3.3, S4.4, S5.5, S6.6, S7.7, S8.8);
    impl_tuple_strategy!(S0.0, S1.1, S2.2, S3.3, S4.4, S5.5, S6.6, S7.7, S8.8, S9.9);
}

pub mod collection {
    use super::strategy::Strategy;
    use super::*;

    /// A strategy for `Vec<S::Value>` with a length drawn from `size`.
    pub struct VecStrategy<S> {
        elem: S,
        size: std::ops::Range<usize>,
    }

    /// `vec(element, len_range)` — vectors of `element` draws.
    pub fn vec<S: Strategy>(elem: S, size: std::ops::Range<usize>) -> VecStrategy<S> {
        assert!(size.start < size.end, "vec size range must be non-empty");
        VecStrategy { elem, size }
    }

    impl<S: Strategy> Strategy for VecStrategy<S> {
        type Value = Vec<S::Value>;
        fn sample(&self, rng: &mut StdRng) -> Vec<S::Value> {
            let len = rng.random_range(self.size.clone());
            (0..len).map(|_| self.elem.sample(rng)).collect()
        }
    }
}

pub mod option {
    use super::strategy::Strategy;
    use super::*;

    /// A strategy for `Option<S::Value>`, `Some` half the time.
    pub struct OptionStrategy<S>(S);

    /// `of(inner)` — optional values.
    pub fn of<S: Strategy>(inner: S) -> OptionStrategy<S> {
        OptionStrategy(inner)
    }

    impl<S: Strategy> Strategy for OptionStrategy<S> {
        type Value = Option<S::Value>;
        fn sample(&self, rng: &mut StdRng) -> Option<S::Value> {
            if rng.random::<bool>() {
                Some(self.0.sample(rng))
            } else {
                None
            }
        }
    }
}

pub mod test_runner {
    use super::*;

    /// A failed test case (carried out of the body by `prop_assert!`).
    #[derive(Debug)]
    pub struct TestCaseError(pub String);

    impl TestCaseError {
        /// Builds a failure with the given message.
        pub fn fail(msg: String) -> Self {
            TestCaseError(msg)
        }
    }

    impl std::fmt::Display for TestCaseError {
        fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
            f.write_str(&self.0)
        }
    }

    /// Number of cases to run per property (env `PROPTEST_CASES`).
    pub fn cases() -> u64 {
        std::env::var("PROPTEST_CASES")
            .ok()
            .and_then(|v| v.parse().ok())
            .unwrap_or(256)
    }

    /// The RNG for one case of one property, derived from the property
    /// name so every test gets an independent deterministic stream.
    pub fn case_rng(test_name: &str, case: u64) -> StdRng {
        let mut h: u64 = 0xcbf2_9ce4_8422_2325;
        for b in test_name.bytes() {
            h ^= b as u64;
            h = h.wrapping_mul(0x100_0000_01b3);
        }
        StdRng::seed_from_u64(h ^ case.wrapping_mul(0x9e37_79b9_7f4a_7c15))
    }
}

/// Everything a property-test module needs.
pub mod prelude {
    pub use crate::strategy::{any, Arbitrary, BoxedStrategy, Strategy};
    pub use crate::{prop_assert, prop_assert_eq, prop_assert_ne, prop_oneof, proptest};
}

/// Declares property tests: each `fn name(pat in strategy, ...) { body }`
/// becomes a `#[test]` running [`test_runner::cases`] deterministic cases.
#[macro_export]
macro_rules! proptest {
    ($( $(#[$meta:meta])* fn $name:ident( $($argpat:pat in $strat:expr),+ $(,)? ) $body:block )*) => {
        $(
            $(#[$meta])*
            fn $name() {
                let strategies = ( $( $strat, )+ );
                for case in 0..$crate::test_runner::cases() {
                    let mut rng = $crate::test_runner::case_rng(stringify!($name), case);
                    let ( $( $argpat, )+ ) =
                        $crate::strategy::Strategy::sample(&strategies, &mut rng);
                    let result: ::std::result::Result<(), $crate::test_runner::TestCaseError> =
                        (|| { $body ::std::result::Result::Ok(()) })();
                    if let ::std::result::Result::Err(e) = result {
                        panic!(
                            "proptest {} failed at case {}: {}",
                            stringify!($name), case, e
                        );
                    }
                }
            }
        )*
    };
}

/// `prop_assert!(cond)` / `prop_assert!(cond, fmt, args...)`.
#[macro_export]
macro_rules! prop_assert {
    ($cond:expr $(,)?) => {
        $crate::prop_assert!($cond, "assertion failed: {}", stringify!($cond))
    };
    ($cond:expr, $($fmt:tt)+) => {
        if !$cond {
            return ::std::result::Result::Err(
                $crate::test_runner::TestCaseError::fail(format!($($fmt)+)),
            );
        }
    };
}

/// `prop_assert_eq!(a, b)` with optional context message.
#[macro_export]
macro_rules! prop_assert_eq {
    ($a:expr, $b:expr $(,)?) => {{
        let (a, b) = (&$a, &$b);
        $crate::prop_assert!(
            *a == *b,
            "assertion failed: {} == {}\n  left: {:?}\n right: {:?}",
            stringify!($a), stringify!($b), a, b
        );
    }};
    ($a:expr, $b:expr, $($fmt:tt)+) => {{
        let (a, b) = (&$a, &$b);
        $crate::prop_assert!(
            *a == *b,
            "assertion failed: {} == {} ({})\n  left: {:?}\n right: {:?}",
            stringify!($a), stringify!($b), format!($($fmt)+), a, b
        );
    }};
}

/// `prop_assert_ne!(a, b)` with optional context message.
#[macro_export]
macro_rules! prop_assert_ne {
    ($a:expr, $b:expr $(,)?) => {{
        let (a, b) = (&$a, &$b);
        $crate::prop_assert!(
            *a != *b,
            "assertion failed: {} != {}\n  both: {:?}",
            stringify!($a), stringify!($b), a
        );
    }};
    ($a:expr, $b:expr, $($fmt:tt)+) => {{
        let (a, b) = (&$a, &$b);
        $crate::prop_assert!(
            *a != *b,
            "assertion failed: {} != {} ({})\n  both: {:?}",
            stringify!($a), stringify!($b), format!($($fmt)+), a
        );
    }};
}

/// `prop_oneof![s1, s2, ...]` — uniform choice between strategies.
#[macro_export]
macro_rules! prop_oneof {
    ($($arm:expr),+ $(,)?) => {
        $crate::strategy::Union::new(vec![
            $( $crate::strategy::Strategy::boxed($arm) ),+
        ])
    };
}

#[cfg(test)]
mod tests {
    use crate::prelude::*;

    proptest! {
        #[test]
        fn tuple_and_range_strategies(x in 0u32..10, y in any::<bool>()) {
            prop_assert!(x < 10);
            let _ = y;
        }

        #[test]
        fn vec_lengths_respect_range(v in crate::collection::vec(any::<u8>(), 2..5)) {
            prop_assert!(v.len() >= 2 && v.len() < 5, "len {}", v.len());
        }

        #[test]
        fn mapped_values(v in (0u8..10).prop_map(|x| x * 2)) {
            prop_assert!(v % 2 == 0 && v < 20);
        }

        #[test]
        fn float_ranges_respect_bounds(x in 0.25f64..0.75, q in 0.0f64..=1.0) {
            prop_assert!((0.25..0.75).contains(&x), "x = {x}");
            prop_assert!((0.0..=1.0).contains(&q), "q = {q}");
        }

        #[test]
        fn oneof_and_option(v in prop_oneof![(0u16..5).prop_map(u32::from), 100u32..105],
                            o in crate::option::of(any::<u8>())) {
            prop_assert!(v < 5 || (100..105).contains(&v));
            if let Some(x) = o {
                prop_assert!(u16::from(x) <= 255);
            }
        }
    }

    #[test]
    fn cases_are_deterministic() {
        let a: Vec<u64> = (0..4)
            .map(|c| {
                use rand::RngExt;
                crate::test_runner::case_rng("t", c).random::<u64>()
            })
            .collect();
        let b: Vec<u64> = (0..4)
            .map(|c| {
                use rand::RngExt;
                crate::test_runner::case_rng("t", c).random::<u64>()
            })
            .collect();
        assert_eq!(a, b);
    }
}
